//! Quickstart: generate a Cora-like attributed graph, train R-DGAE (the
//! paper's Appendix-B model wrapped with the Ξ/Υ operators), and print the
//! clustering metrics.
//!
//! ```text
//! cargo run --release -p rgae-xp --example quickstart
//! ```

use rgae_core::{RConfig, RTrainer};
use rgae_datasets::presets::cora_like;
use rgae_linalg::Rng64;
use rgae_models::{Dgae, TrainData};

fn main() {
    // 1. A synthetic stand-in for Cora (see DESIGN.md for the calibration).
    let graph = cora_like(0.25, 7).expect("valid preset");
    println!(
        "dataset: {} — N={} |E|={} J={} K={}",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_features(),
        graph.num_classes()
    );

    // 2. The model: DGAE (two GCN layers + DEC clustering head).
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(0);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);

    // 3. The R-trainer: Appendix-C hyper-parameters for this dataset,
    //    shrunk to a demo budget.
    let cfg = RConfig::for_dataset("cora-like").quick();
    let trainer = RTrainer::new(cfg);
    let report = trainer
        .train(&mut model, &graph, &mut rng)
        .expect("training succeeds");

    // 4. Results.
    println!("after pretraining : {}", report.pretrain_metrics);
    println!("after R-training  : {}", report.final_metrics);
    if let Some(epoch) = report.converged_at {
        println!("converged (|Omega| >= 0.9 N) at clustering epoch {epoch}");
    }
    let last = report.epochs.last().expect("at least one epoch");
    // The final epoch is always fully evaluated, so its graph stats exist.
    let gs = last
        .graph_stats
        .as_ref()
        .expect("final epoch carries stats");
    println!(
        "final self-supervision graph: {} edges ({} true / {} false)",
        gs.num_edges, gs.true_links, gs.false_links
    );
}

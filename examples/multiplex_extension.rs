//! The paper's §6 future-work direction, implemented: extending Υ to
//! multiplex graphs (several relation types over one node set).
//!
//! The scenario: a two-layer academic network — a high-homophily "citation"
//! layer and a noisier "co-authorship" layer. We train DGAE on the mean
//! multiplex filter and compare three self-supervision targets:
//!
//!   1. the raw union graph (no operators);
//!   2. the union of per-layer Υ-rewritten graphs, refreshed during
//!      training (the multiplex R recipe).
//!
//! ```text
//! cargo run --release -p rgae-xp --example multiplex_extension
//! ```

use std::rc::Rc;

use rgae_core::{
    evaluate, multiplex_self_supervision, upsilon_multiplex, xi, xi_assignments_or_kmeans,
    UpsilonConfig, XiConfig,
};
use rgae_datasets::{multiplex_like, LayerSpec, MultiplexSpec};
use rgae_graph::edge_homophily;
use rgae_linalg::Rng64;
use rgae_models::{ClusterStep, Dgae, GaeModel, StepSpec, TrainData};

fn main() {
    let mx = multiplex_like(
        &MultiplexSpec {
            name: "academic".into(),
            num_nodes: 260,
            num_classes: 4,
            num_features: 120,
            words_per_node: 10,
            topic_purity: 0.5,
            layers: vec![
                LayerSpec {
                    avg_degree: 4.0,
                    homophily: 0.85,
                }, // citations
                LayerSpec {
                    avg_degree: 3.0,
                    homophily: 0.50,
                }, // co-authorship
            ],
        },
        7,
    )
    .expect("valid spec");
    println!(
        "multiplex: {} nodes, {} layers (homophily {:.2} / {:.2})",
        mx.num_nodes(),
        mx.num_layers(),
        edge_homophily(&mx.layers()[0], mx.labels()),
        edge_homophily(&mx.layers()[1], mx.labels()),
    );

    // Flatten to the union for the base TrainData, but propagate through the
    // mean multiplex filter (shared-edge relations weigh more).
    let flat = mx.flatten_union();
    let mut data = TrainData::from_graph(&flat);
    data.filter = Rc::new(mx.mean_filter());

    let mut rng = Rng64::seed_from_u64(1);
    let mut model = Dgae::new(data.num_features(), mx.num_classes(), &mut rng);
    // Pretrain on the raw union graph.
    let pre = StepSpec::pretrain(Rc::clone(&data.adjacency));
    for _ in 0..80 {
        model.train_step(&data, &pre, &mut rng).unwrap();
    }
    model.init_clustering(&data, &mut rng).unwrap();
    let baseline = evaluate(&model, &data, mx.labels(), &mut rng).unwrap();
    println!("after pretraining on the union graph : {baseline}");

    // Plain joint phase (static union target).
    let mut plain = model.clone();
    for _ in 0..80 {
        let target = plain.cluster_target(&data).unwrap().unwrap();
        let spec = StepSpec {
            recon_target: Some(Rc::clone(&data.adjacency)),
            gamma: 0.001,
            cluster: Some(ClusterStep {
                target,
                omega: None,
            }),
        };
        plain.train_step(&data, &spec, &mut rng).unwrap();
    }
    let plain_metrics = evaluate(&plain, &data, mx.labels(), &mut rng).unwrap();

    // Multiplex-R joint phase: Ξ picks Ω, Υ rewrites each layer, the target
    // is the union of the rewritten layers.
    let mut r_model = model;
    let xi_cfg = XiConfig::new(0.3);
    let mut target_graph = Rc::clone(&data.adjacency);
    for epoch in 0..80 {
        if epoch % 10 == 0 {
            let p = xi_assignments_or_kmeans(&r_model, &data, &mut rng).unwrap();
            let omega = xi(&p, &xi_cfg).unwrap();
            if !omega.is_empty() {
                let z = r_model.embed(&data);
                let out =
                    upsilon_multiplex(&mx, &p, &z, &omega.indices, &UpsilonConfig::default(), 0)
                        .unwrap();
                target_graph = Rc::new(multiplex_self_supervision(&out));
            }
        }
        let target = r_model.cluster_target(&data).unwrap().unwrap();
        let spec = StepSpec {
            recon_target: Some(Rc::clone(&target_graph)),
            gamma: 0.001,
            cluster: Some(ClusterStep {
                target,
                omega: None,
            }),
        };
        r_model.train_step(&data, &spec, &mut rng).unwrap();
    }
    let r_metrics = evaluate(&r_model, &data, mx.labels(), &mut rng).unwrap();

    println!("DGAE   (static union target)          : {plain_metrics}");
    println!("R-DGAE (per-layer Upsilon, multiplex) : {r_metrics}");
    println!(
        "final self-supervision homophily       : {:.2} (union was {:.2})",
        edge_homophily(&target_graph, mx.labels()),
        edge_homophily(&data.adjacency, mx.labels()),
    );
}

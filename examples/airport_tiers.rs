//! Air-traffic tier discovery: the paper's second benchmark family. These
//! graphs have *no node attributes* — features are one-hot degree encodings
//! — so clustering must exploit pure structure. Runs GMM-VGAE vs
//! R-GMM-VGAE on a Brazil-air-like network (a compressed Table 3 row).
//!
//! ```text
//! cargo run --release -p rgae-xp --example airport_tiers
//! ```

use rgae_xp::{rconfig_for, run_pair, DatasetKind, ModelKind};

fn main() {
    let dataset = DatasetKind::BrazilAir;
    let graph = dataset.build(1.0, 5);
    println!(
        "dataset: {} — N={} |E|={} tiers={}",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );
    // Degree profile per tier (the signal the model must recover).
    let mut deg_sum = vec![0usize; graph.num_classes()];
    let mut counts = vec![0usize; graph.num_classes()];
    for i in 0..graph.num_nodes() {
        deg_sum[graph.labels()[i]] += graph.adjacency().row_indices(i).len();
        counts[graph.labels()[i]] += 1;
    }
    for t in 0..graph.num_classes() {
        println!(
            "tier {t}: {} airports, mean degree {:.1}",
            counts[t],
            deg_sum[t] as f64 / counts[t].max(1) as f64
        );
    }

    let model = ModelKind::GmmVgae;
    let cfg = rconfig_for(model, dataset, true);
    let out = run_pair(
        model,
        dataset,
        &graph,
        &cfg,
        3,
        &rgae_obs::NOOP,
        &rgae_xp::HarnessOpts::default(),
    );
    println!("\nGMM-VGAE   : {}", out.plain.final_metrics);
    println!("R-GMM-VGAE : {}", out.r.final_metrics);
    println!("\nThe R-variant's edge edits matter here: hub-to-hub links between");
    println!("different tiers are exactly the clustering-irrelevant edges Upsilon drops.");
}

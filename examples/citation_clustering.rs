//! Citation-network clustering: the paper's motivating scenario. Runs every
//! GAE-family model (plain and R-variant) on one citation-like benchmark
//! and prints a mini leaderboard — a compressed version of Table 1.
//!
//! ```text
//! cargo run --release -p rgae-xp --example citation_clustering
//! ```

use rgae_xp::{pct, print_table, rconfig_for, run_pair, DatasetKind, ModelKind};

fn main() {
    let dataset = DatasetKind::CiteseerLike;
    let graph = dataset.build(0.25, 11);
    println!(
        "dataset: {} — N={} |E|={} K={}",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );

    let mut rows = Vec::new();
    for model in ModelKind::all() {
        let cfg = rconfig_for(model, dataset, true);
        let out = run_pair(
            model,
            dataset,
            &graph,
            &cfg,
            1,
            &rgae_obs::NOOP,
            &rgae_xp::HarnessOpts::default(),
        );
        println!(
            "{:<9} plain {} | R {}",
            model.name(),
            out.plain.final_metrics,
            out.r.final_metrics
        );
        rows.push(vec![
            model.name().into(),
            pct(out.plain.final_metrics.acc),
            pct(out.r.final_metrics.acc),
            pct(out.r.final_metrics.acc - out.plain.final_metrics.acc),
        ]);
    }
    print_table(
        "plain vs R (ACC, single quick trial)",
        &["model", "plain", "R", "delta"],
        &rows,
    );
    println!("\nSecond-group models (DGAE, GMM-VGAE) are where the operators");
    println!("matter most: they train clustering jointly, so Feature");
    println!("Randomness and Feature Drift both bite without Xi/Upsilon.");
}

//! Operator anatomy: Ξ and Υ applied standalone, step by step, on a graph
//! small enough to read. Shows exactly what the two operators do before
//! they are wired into a trainer.
//!
//! ```text
//! cargo run --release -p rgae-xp --example operator_anatomy
//! ```

use rgae_core::{upsilon, xi, UpsilonConfig, XiConfig};
use rgae_graph::GraphStats;
use rgae_linalg::{Csr, Mat};

fn main() {
    // Two "communities" of four nodes each, one noisy bridge (3–4), and a
    // node (7) sitting between the clusters in embedding space.
    let a = Csr::adjacency_from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 2), // community A
            (4, 5),
            (5, 6),
            (4, 6), // community B
            (3, 4), // clustering-irrelevant bridge
            (6, 7), // 7 loosely attached to B
        ],
    )
    .expect("valid edges");
    let z = Mat::from_rows(&[
        vec![0.0, 0.0],
        vec![0.3, 0.1],
        vec![0.1, 0.3],
        vec![0.4, 0.4],
        vec![5.0, 5.0],
        vec![5.3, 4.9],
        vec![4.8, 5.2],
        vec![2.6, 2.6], // borderline
    ])
    .expect("rows");
    // Soft assignments (e.g. from a clustering head).
    let p = Mat::from_rows(&[
        vec![0.95, 0.05],
        vec![0.92, 0.08],
        vec![0.90, 0.10],
        vec![0.80, 0.20],
        vec![0.08, 0.92],
        vec![0.05, 0.95],
        vec![0.10, 0.90],
        vec![0.48, 0.52], // almost undecidable
    ])
    .expect("rows");

    // --- Ξ: who is decidable? -------------------------------------------
    let cfg = XiConfig::new(0.6); // α₁ = 0.6, α₂ = 0.3
    let omega = xi(&p, &cfg).expect("valid thresholds");
    println!("Xi with alpha1 = {}, alpha2 = {}:", cfg.alpha1, cfg.alpha2);
    for i in 0..8 {
        let lam1 = omega.lambda1[i];
        let lam2 = omega.lambda2[i];
        let mark = if omega.indices.contains(&i) {
            "DECIDABLE"
        } else {
            "-"
        };
        println!(
            "  node {i}: lambda1 = {lam1:.2}, margin = {:.2}  {mark}",
            lam1 - lam2
        );
    }
    println!("Omega = {:?} ({} of 8 nodes)\n", omega.indices, omega.len());

    // --- Υ: rewrite the self-supervision graph ----------------------------
    let labels = [0, 0, 0, 0, 1, 1, 1, 1];
    let before = GraphStats::compute(&a, &labels);
    let out =
        upsilon(&a, &p, &z, &omega.indices, &UpsilonConfig::default()).expect("consistent inputs");
    let after = GraphStats::compute(&out.graph, &labels);
    println!("Upsilon:");
    println!("  centroid nodes per cluster: {:?}", out.centroids);
    println!("  added edges  : {:?}", out.added);
    println!("  dropped edges: {:?}", out.dropped);
    println!(
        "  edges {} -> {}, false links {} -> {}",
        before.num_edges, after.num_edges, before.false_links, after.false_links
    );
    println!();
    println!("Things to notice:");
    println!("  * node 7 (thin margin) is excluded from Omega, so its noisy");
    println!("    assignment cannot corrupt the rewritten graph;");
    println!("  * the bridge 3-4 connects two decidable nodes from different");
    println!("    clusters, so Upsilon drops it;");
    println!("  * every decidable node ends up linked to its cluster's");
    println!("    centroid node, forming the star sub-graphs of Fig. 4.");
}

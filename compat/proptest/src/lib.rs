//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of proptest it actually uses: range and tuple strategies,
//! `collection::vec`, `prop_map`, the `proptest!` test macro, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Generation is deterministic
//! (each test case `i` draws from a SplitMix64 stream seeded with `i`), and
//! there is no shrinking — a failing case panics with the ordinary assert
//! message, which is reproducible because the stream is fixed.

pub mod test_runner {
    /// Deterministic per-case random source (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A reproducible stream for test case number `case`.
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA076_1D64_78BD_642F,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let span = (self.end - self.start) as u64;
                        self.start + rng.below(span) as $t
                    }
                }
            )*
        };
    }
    int_range_strategy!(usize, u64, u32, i32, i64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements a generated `Vec` may have.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector with element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Number of cases each `proptest!` test runs.
pub const NUM_CASES: u64 = 64;

/// The test macro: each `fn name(arg in strategy, ...) { body }` becomes an
/// ordinary `#[test]` running [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                for case in 0..$crate::NUM_CASES {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        /// Ranges respect their bounds and vectors respect their sizes.
        #[test]
        fn ranges_and_vecs_in_bounds(
            x in -2.5f64..7.5,
            n in 3usize..10,
            v in crate::collection::vec(0usize..5, 4),
        ) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0.0f64..1.0, 8);
        let mut a = crate::test_runner::TestRng::deterministic(3);
        let mut b = crate::test_runner::TestRng::deterministic(3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}

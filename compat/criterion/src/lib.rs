//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is deliberately simple — per
//! sample, run the closure in a timed batch and report the median and min
//! sample time — which is enough to compare hot paths release-to-release.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier of a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/param` form, e.g. `BenchmarkId::from_parameter(512)`.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// `group/name/param` form.
    pub fn new<N: Display, P: Display>(name: N, p: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    /// Seconds for the whole batch of `iters` calls.
    elapsed: f64,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed().as_secs_f64();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// A stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut group = self.benchmark_group(id);
        group.bench_function("run", f);
        group.finish();
    }
}

/// A group of related benchmarks sharing a sample budget.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) {
        self.run(&id.to_string(), &mut |b| f(b));
    }

    /// Run and report one parameterised benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.to_string(), &mut |b| f(b, input));
    }

    /// Close the group (report-only in this stand-in).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate the batch size so one sample takes ≳ 10 ms, then take
        // `sample_size` samples and report median/min per-iteration time.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: 0.0,
            };
            f(&mut b);
            if b.elapsed >= 0.01 || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2)
                .max((0.01 / b.elapsed.max(1e-9)) as u64)
                .min(1 << 20);
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: 0.0,
                };
                f(&mut b);
                b.elapsed / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "{}/{id}: median {} min {} ({} iters x {} samples)",
            self.name,
            fmt_time(median),
            fmt_time(min),
            iters,
            samples.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(512).to_string(), "512");
        assert_eq!(BenchmarkId::new("gemm", 512).to_string(), "gemm/512");
    }
}

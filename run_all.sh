#!/bin/bash
cd /root/repo
mkdir -p results/logs results/ckpt
# The training loops allocate and free large matrices every epoch; glibc's
# default trim/mmap thresholds hand those pages back to the kernel on every
# free, costing millions of minor page faults (~30% wall time on a full
# sweep). Keeping the thresholds high keeps the pages in the process.
export GLIBC_TUNABLES=glibc.malloc.trim_threshold=67108864:glibc.malloc.mmap_threshold=67108864

# Every experiment writes periodic checkpoints under results/ckpt. If a run
# dies (timeout, OOM, crash) we retry it once with --resume, which picks up
# from the last checkpoint instead of restarting from epoch 0. A resumed run
# reproduces the uninterrupted run bit for bit (see
# crates/core/tests/checkpoint_resume.rs), so retried results are identical
# to first-try results.
#
# Every run also enables the rgae-guard health monitor (--guard): non-finite
# losses/grads/params and divergence trip a rollback to the last healthy
# checkpoint with a halved learning rate instead of wasting the whole run.
# On a fault-free run --guard is bit-identical to guards-off (see
# crates/core/tests/guard_recovery.rs), so it is always safe to keep on.
# RGAE_GUARD_RETRIES overrides the per-phase retry budget (default 2).
run_xp() {
  local secs=$1 log=$2 bin=$3
  shift 3
  local ckpt=(--checkpoint-dir results/ckpt --checkpoint-every 25
              --guard --max-retries "${RGAE_GUARD_RETRIES:-2}")
  if ! timeout "$secs" cargo run --release -p rgae-xp --bin "$bin" -- \
      "${ckpt[@]}" "$@" > "results/logs/$log.log" 2>&1; then
    echo "== $bin failed; retrying once from checkpoint =="
    timeout "$secs" cargo run --release -p rgae-xp --bin "$bin" -- \
      "${ckpt[@]}" --resume "$@" >> "results/logs/$log.log" 2>&1
  fi
}

set -x
run_xp 2400 table1_2_pubmed table1_2 --dataset pubmed-like --out results/pubmed_fix --trace-out results/logs/table1_2_pubmed.jsonl
for b in table3_4 table6 table7 table8 table9 fig4 fig9 fig13; do
  run_xp 2000 $b $b --trace-out results/logs/$b.jsonl
done
run_xp 1200 table5 table5 --trials 5 --trace-out results/logs/table5.jsonl
run_xp 2400 fig5_6 fig5_6 --scale 0.25 --trace-out results/logs/fig5_6.jsonl
run_xp 2400 fig7_8 fig7_8 --scale 0.25 --trace-out results/logs/fig7_8.jsonl
run_xp 2400 fig11_12 fig11_12 --scale 0.25 --trace-out results/logs/fig11_12.jsonl
run_xp 2400 table17 table17 --scale 0.3 --trials 2 --trace-out results/logs/table17.jsonl
run_xp 1200 fig10 fig10 --scale 0.2 --trace-out results/logs/fig10.jsonl
echo ALL DONE

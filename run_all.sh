#!/bin/bash
cd /root/repo
set -x
timeout 2400 cargo run --release -p rgae-xp --bin table1_2 -- --dataset pubmed-like --out results/pubmed_fix > results/logs/table1_2_pubmed.log 2>&1
for b in table3_4 table6 table7 table8 table9 fig4 fig9 fig13; do
  timeout 2000 cargo run --release -p rgae-xp --bin $b > results/logs/$b.log 2>&1
done
timeout 1200 cargo run --release -p rgae-xp --bin table5 -- --trials 5 > results/logs/table5.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin fig5_6 -- --scale 0.25 > results/logs/fig5_6.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin fig7_8 -- --scale 0.25 > results/logs/fig7_8.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin fig11_12 -- --scale 0.25 > results/logs/fig11_12.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin table17 -- --scale 0.3 --trials 2 > results/logs/table17.log 2>&1
timeout 1200 cargo run --release -p rgae-xp --bin fig10 -- --scale 0.2 > results/logs/fig10.log 2>&1
echo ALL DONE

#!/bin/bash
cd /root/repo
mkdir -p results/logs
# The training loops allocate and free large matrices every epoch; glibc's
# default trim/mmap thresholds hand those pages back to the kernel on every
# free, costing millions of minor page faults (~30% wall time on a full
# sweep). Keeping the thresholds high keeps the pages in the process.
export GLIBC_TUNABLES=glibc.malloc.trim_threshold=67108864:glibc.malloc.mmap_threshold=67108864
set -x
timeout 2400 cargo run --release -p rgae-xp --bin table1_2 -- --dataset pubmed-like --out results/pubmed_fix --trace-out results/logs/table1_2_pubmed.jsonl > results/logs/table1_2_pubmed.log 2>&1
for b in table3_4 table6 table7 table8 table9 fig4 fig9 fig13; do
  timeout 2000 cargo run --release -p rgae-xp --bin $b -- --trace-out results/logs/$b.jsonl > results/logs/$b.log 2>&1
done
timeout 1200 cargo run --release -p rgae-xp --bin table5 -- --trials 5 --trace-out results/logs/table5.jsonl > results/logs/table5.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin fig5_6 -- --scale 0.25 --trace-out results/logs/fig5_6.jsonl > results/logs/fig5_6.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin fig7_8 -- --scale 0.25 --trace-out results/logs/fig7_8.jsonl > results/logs/fig7_8.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin fig11_12 -- --scale 0.25 --trace-out results/logs/fig11_12.jsonl > results/logs/fig11_12.log 2>&1
timeout 2400 cargo run --release -p rgae-xp --bin table17 -- --scale 0.3 --trials 2 --trace-out results/logs/table17.jsonl > results/logs/table17.log 2>&1
timeout 1200 cargo run --release -p rgae-xp --bin fig10 -- --scale 0.2 --trace-out results/logs/fig10.jsonl > results/logs/fig10.log 2>&1
echo ALL DONE

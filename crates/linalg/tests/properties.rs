//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use rgae_linalg::{cosine, Csr, Mat, Rng64};

/// Strategy: a small matrix with bounded entries.
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v).unwrap())
}

/// Strategy: a random sparse square matrix given by triplets.
fn csr_strategy(n: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..3 * n)
        .prop_map(move |ts| Csr::from_triplets(n, n, &ts).unwrap())
}

proptest! {
    #[test]
    fn matmul_associative(a in mat_strategy(4, 3), b in mat_strategy(3, 5), c in mat_strategy(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn matmul_distributes_over_add(a in mat_strategy(4, 3), b in mat_strategy(3, 2), c in mat_strategy(3, 2)) {
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn transpose_of_product(a in mat_strategy(4, 3), b in mat_strategy(3, 2)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(a in mat_strategy(5, 3)) {
        let g = a.gram();
        for i in 0..5 {
            prop_assert!(g[(i, i)] >= -1e-12);
            for j in 0..5 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spmm_agrees_with_dense(c in csr_strategy(6), x in mat_strategy(6, 4)) {
        let sparse = c.spmm(&x).unwrap();
        let dense = c.to_dense().matmul(&x).unwrap();
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-9);
    }

    #[test]
    fn t_spmm_agrees_with_dense(c in csr_strategy(6), x in mat_strategy(6, 3)) {
        let sparse = c.t_spmm(&x).unwrap();
        let dense = c.to_dense().transpose().matmul(&x).unwrap();
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-9);
    }

    #[test]
    fn csr_invariants_hold(c in csr_strategy(8)) {
        prop_assert!(c.check_invariants());
        prop_assert!(c.transpose().check_invariants());
    }

    #[test]
    fn csr_get_matches_dense(c in csr_strategy(5)) {
        let d = c.to_dense();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert_eq!(c.get(i, j), d[(i, j)]);
            }
        }
    }

    #[test]
    fn cosine_bounded(a in proptest::collection::vec(-100.0f64..100.0, 8),
                      b in proptest::collection::vec(-100.0f64..100.0, 8)) {
        let c = cosine(&a, &b);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&c));
    }

    #[test]
    fn cosine_scale_invariant(a in proptest::collection::vec(-10.0f64..10.0, 6), s in 0.1f64..50.0) {
        let scaled: Vec<f64> = a.iter().map(|&x| x * s).collect();
        let c1 = cosine(&a, &a);
        let c2 = cosine(&a, &scaled);
        prop_assert!((c1 - c2).abs() < 1e-9);
    }

    #[test]
    fn row_softmax_is_distribution(a in mat_strategy(4, 6)) {
        let s = a.row_softmax();
        for i in 0..4 {
            let sum: f64 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn sym_normalized_spectral_radius_bounded(edges in proptest::collection::vec((0usize..10, 0usize..10), 1..30)) {
        // For a symmetrically normalised adjacency the row sums of |entries|
        // are ≤ sqrt(d_i)/sqrt(d_i) summed appropriately — in particular each
        // entry is ≤ 1 and the matrix stays symmetric.
        let a = Csr::adjacency_from_edges(10, &edges).unwrap();
        let n = a.sym_normalized();
        for (i, j, v) in n.iter() {
            prop_assert!(v <= 1.0 + 1e-12);
            prop_assert!((n.get(j, i) - v).abs() < 1e-12);
        }
    }
}

#[test]
fn sample_indices_full_permutation() {
    let mut rng = Rng64::seed_from_u64(23);
    let mut s = rng.sample_indices(10, 10);
    s.sort_unstable();
    assert_eq!(s, (0..10).collect::<Vec<_>>());
}

//! Deterministic random-number helpers and weight initialisers.
//!
//! The generator is an in-house xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, so the workspace carries no
//! external RNG dependency and every stream is reproducible from a single
//! 64-bit seed. Gaussian samples come from a Box–Muller transform. Every
//! experiment in the workspace threads an explicit seed through one of these.

use crate::Mat;

/// xoshiro256++ core state.
#[derive(Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Expand a 64-bit seed into a full state with SplitMix64 (the seeding
    /// recipe recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A seedable RNG with the handful of samplers the workspace needs.
pub struct Rng64 {
    inner: Xoshiro256,
    /// Spare Gaussian deviate produced by Box–Muller.
    spare: Option<f64>,
}

impl Rng64 {
    /// Deterministic RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 {
            inner: Xoshiro256::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Uniform sample in `[0, 1)` (53 random mantissa bits).
    pub fn uniform(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        // Lemire's widening-multiply range reduction (bias < 2⁻⁶⁴, far below
        // any statistical test in this workspace).
        ((self.inner.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Rejection-free polar-less form: u1 in (0,1], u2 in [0,1).
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k > n");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need settling.
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Categorical sample from (unnormalised, non-negative) weights.
    ///
    /// Falls back to a uniform draw when all weights are zero.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut t = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Derive an independent child RNG (for per-trial seeding).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.inner.next_u64())
    }

    /// Snapshot the full generator state: the four xoshiro256++ state words
    /// plus the cached Box–Muller spare. Restoring via [`Rng64::from_state`]
    /// reproduces the stream bit-for-bit from this exact point.
    pub fn state(&self) -> ([u64; 4], Option<f64>) {
        (self.inner.s, self.spare)
    }

    /// Rebuild a generator from a [`Rng64::state`] snapshot.
    pub fn from_state(words: [u64; 4], spare: Option<f64>) -> Self {
        Rng64 {
            inner: Xoshiro256 { s: words },
            spare,
        }
    }

    /// Deterministically re-derive the stream from the current state mixed
    /// with `salt`, discarding any cached spare.
    ///
    /// Used by the guard recovery policy after a rollback: the retry must
    /// not replay the exact stochastic trajectory that just diverged, but
    /// two runs reseeding from the same state with the same salt must still
    /// agree bit-for-bit. Routing through `seed_from_u64` guarantees a valid
    /// (non-zero) xoshiro256++ state whatever the mix produces.
    pub fn reseed_with(&mut self, salt: u64) {
        let mixed = self
            .inner
            .s
            .iter()
            .fold(salt, |acc, &w| acc.rotate_left(17) ^ w);
        *self = Rng64::seed_from_u64(mixed);
    }
}

/// Glorot/Xavier-uniform initialised matrix: `U(-s, s)` with
/// `s = sqrt(6 / (fan_in + fan_out))` — the initialiser the GAE reference
/// implementation uses.
pub fn glorot_uniform(rows: usize, cols: usize, rng: &mut Rng64) -> Mat {
    let s = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols).map(|_| rng.uniform_in(-s, s)).collect();
    Mat::from_vec(rows, cols, data).expect("sized buffer")
}

/// Matrix of iid standard-normal entries.
pub fn standard_normal(rows: usize, cols: usize, rng: &mut Rng64) -> Mat {
    let data = (0..rows * cols).map(|_| rng.normal()).collect();
    Mat::from_vec(rows, cols, data).expect("sized buffer")
}

/// Matrix of iid `U(lo, hi)` entries.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut Rng64) -> Mat {
    let data = (0..rows * cols).map(|_| rng.uniform_in(lo, hi)).collect();
    Mat::from_vec(rows, cols, data).expect("sized buffer")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let xs: Vec<f64> = (0..16).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng64::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng64::seed_from_u64(5);
        let s = rng.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.categorical(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p2 - 0.7).abs() < 0.02);
    }

    #[test]
    fn categorical_zero_weights_uniform_fallback() {
        let mut rng = Rng64::seed_from_u64(11);
        let i = rng.categorical(&[0.0, 0.0]);
        assert!(i < 2);
    }

    #[test]
    fn glorot_bounds() {
        let mut rng = Rng64::seed_from_u64(13);
        let w = glorot_uniform(30, 20, &mut rng);
        let s = (6.0 / 50.0_f64).sqrt();
        assert!(w.as_slice().iter().all(|&v| v > -s && v < s));
        // Should not be degenerate.
        assert!(w.frob_norm() > 0.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::seed_from_u64(17);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn reseed_with_is_deterministic_and_salt_sensitive() {
        let mut a = Rng64::seed_from_u64(5);
        let mut b = Rng64::seed_from_u64(5);
        // Drift both streams to the same interior state.
        for _ in 0..7 {
            a.normal();
            b.normal();
        }
        a.reseed_with(0xDEAD);
        b.reseed_with(0xDEAD);
        let xs: Vec<f64> = (0..8).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.uniform()).collect();
        assert_eq!(xs, ys, "same state + same salt must agree bitwise");

        let mut c = Rng64::seed_from_u64(5);
        for _ in 0..7 {
            c.normal();
        }
        c.reseed_with(0xBEEF);
        assert_ne!(
            xs[0].to_bits(),
            c.uniform().to_bits(),
            "salt changes the stream"
        );
    }

    #[test]
    fn reseed_with_clears_the_boxmuller_spare() {
        let mut rng = Rng64::seed_from_u64(9);
        rng.normal(); // leaves a cached spare behind
        assert!(rng.state().1.is_some());
        rng.reseed_with(1);
        assert!(rng.state().1.is_none());
    }
}

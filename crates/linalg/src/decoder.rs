//! Tiled, fused Gram + BCE decoder kernels.
//!
//! Every GAE variant in this workspace reconstructs the adjacency through
//! `σ(Z·Zᵀ)`, and the legacy pipeline materialises the full N×N logits
//! three times per step: once for the Gram forward, once for the BCE
//! forward scan, and once more for the backward coefficient matrix (plus a
//! transpose, an add, and an N×N·d matmul for the Gram backward). The
//! kernels here stream the same computation through row *tiles* of at most
//! B rows — one B×N panel is the only N-proportional scratch — so peak
//! decoder memory drops from O(N²) to O(B·N) while the arithmetic stays
//! bit-for-bit identical to the legacy chain.
//!
//! # Determinism contract
//!
//! The loss reduction reuses the [`rgae_par::REDUCE_CHUNK`]-row partial
//! structure of `par_sum_by`: each 256-row chunk accumulates serially (per
//! row: every column's softplus in ascending order, then the sparse-target
//! corrections in CSR order — exactly the legacy `bce_sparse_fwd` order)
//! and the partials are folded in chunk order. The tile width is forced to
//! a multiple of `REDUCE_CHUNK`, so the bits are invariant to the tile
//! size *and* the thread count.
//!
//! The gradient rows replicate the legacy `(C + Cᵀ)·Z` element order: for
//! each row `i` the columns are scanned ascending, the symmetric
//! coefficient is formed as `c_ij + c_ji` (the same operand order as
//! `Mat::add` in the legacy Gram backward), exact zeros are skipped like
//! `Mat::matmul`'s zero fast path, and the inner product over the latent
//! dimension accumulates ascending. `c_ji` needs the transposed target
//! row, which is read from a `target.transpose()` built once per call
//! (O(nnz), negligible next to the N²·d panel work).
//!
//! # Symmetry sharing
//!
//! `S = Z·Zᵀ` is symmetric, and `s_ij` bit-equals `s_ji` (each product
//! commutes individually and the ascending-`k` accumulation order is the
//! same), so `softplus(s)` and `σ(s)` are also bitwise shared across a
//! symmetric pair. Within each tile's diagonal block the fused kernel
//! therefore runs two phases: a *fill* phase that evaluates every
//! unordered pair once (dot + transcendental pair, cached in a `B×B`
//! side buffer) and a *sweep* phase that reads the panel and the cache
//! immutably while accumulating the loss and gradient in the legacy
//! element order. Reusing a bit-identical value cannot change the sums,
//! so the output is still bit-for-bit the legacy chain's.

use std::sync::atomic::{AtomicUsize, Ordering};

use rgae_par::REDUCE_CHUNK;

use crate::{softplus, Csr, Error, Mat, Result};

/// Baseline tile rows when neither the programmatic override nor the
/// `RGAE_DECODER_TILE` environment variable is set. The effective default
/// grows with the worker count (see [`decoder_tile`]) so every pool worker
/// owns at least one reduce chunk per tile.
pub const DEFAULT_DECODER_TILE: usize = 1024;

/// Programmatic override for the tile rows; 0 means "unset".
static TILE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the decoder tile rows (`None` restores the environment /
/// default resolution). Values are rounded up to a multiple of
/// [`rgae_par::REDUCE_CHUNK`]; the setting trades memory against
/// parallelism only — results are bit-identical at any tile size.
pub fn set_decoder_tile(rows: Option<usize>) {
    TILE_OVERRIDE.store(rows.unwrap_or(0), Ordering::Relaxed);
}

/// The configured decoder tile rows: the [`set_decoder_tile`] override if
/// set, else `RGAE_DECODER_TILE`, else `max(DEFAULT_DECODER_TILE,
/// REDUCE_CHUNK · threads)` — always rounded up to a `REDUCE_CHUNK`
/// multiple so tile boundaries coincide with reduction-chunk boundaries.
pub fn decoder_tile() -> usize {
    let configured = match TILE_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::env::var("RGAE_DECODER_TILE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or_else(|| DEFAULT_DECODER_TILE.max(REDUCE_CHUNK * rgae_par::threads())),
        v => v,
    };
    configured.div_ceil(REDUCE_CHUNK) * REDUCE_CHUNK
}

/// Tile rows actually used for an `n`-row decoder (the configured tile,
/// clamped to the row count rounded up to a chunk boundary).
fn effective_tile(n: usize) -> usize {
    decoder_tile().min(n.div_ceil(REDUCE_CHUNK).max(1) * REDUCE_CHUNK)
}

/// Peak scratch bytes the fused decoder allocates for an `n`-row graph:
/// one `B×N` `f64` panel plus the `2·B²` diagonal-block transcendental
/// cache (`B ≤ N`, so the total stays `O(B·N)`). The legacy path peaks at
/// several dense `N×N` matrices. Used by the benchmark reports.
pub fn fused_panel_bytes(n: usize) -> usize {
    let b = effective_tile(n);
    (b * n + 2 * b * b) * std::mem::size_of::<f64>()
}

/// Result of [`gram_bce_fused`].
pub struct FusedGramBce {
    /// The scalar loss `norm · Σ/(N²)` — bit-identical to the legacy
    /// `Mat::gram` + `bce_logits_sparse` forward.
    pub loss: f64,
    /// `Σ_j (c_ij + c_ji) z_j` per row, with the coefficient scale folded
    /// in — bit-identical to the legacy backward at unit upstream
    /// gradient. `None` when `grad_scale` was `None`.
    pub dz: Option<Mat>,
}

/// One dot product in the exact element order of `Mat::gram`'s inner loop.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Fill columns `j0..j1` of `stripe` (consecutive panel rows for z-rows
/// starting at `row0`) with `z_i · z_j`. Rows are processed in blocks of
/// four with independent accumulators: four parallel dependency chains
/// hide the FP-add latency of the strictly ordered dot, and each `z_j`
/// row load serves four dots. Every individual accumulator still adds in
/// `Mat::gram`'s exact element order, so the produced bits are identical
/// to the one-row [`dot`] loop.
fn fill_panel_cols(z: &Mat, row0: usize, stripe: &mut [f64], j0: usize, j1: usize) {
    if j0 >= j1 {
        return;
    }
    let n = z.rows();
    let nrows = stripe.len() / n;
    let mut r = 0;
    while r + 4 <= nrows {
        let (z0, z1, z2, z3) = (
            z.row(row0 + r),
            z.row(row0 + r + 1),
            z.row(row0 + r + 2),
            z.row(row0 + r + 3),
        );
        let block = &mut stripe[r * n..(r + 4) * n];
        let (s0, block) = block.split_at_mut(n);
        let (s1, block) = block.split_at_mut(n);
        let (s2, s3) = block.split_at_mut(n);
        for j in j0..j1 {
            let zj = z.row(j);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for (k, &y) in zj.iter().enumerate() {
                a0 += z0[k] * y;
                a1 += z1[k] * y;
                a2 += z2[k] * y;
                a3 += z3[k] * y;
            }
            s0[j] = a0;
            s1[j] = a1;
            s2[j] = a2;
            s3[j] = a3;
        }
        r += 4;
    }
    for r in r..nrows {
        let zi = z.row(row0 + r);
        let row = &mut stripe[r * n..(r + 1) * n];
        for j in j0..j1 {
            row[j] = dot(zi, z.row(j));
        }
    }
}

/// Full-width panel fill (every column), used by the row-streaming helpers.
fn fill_panel(z: &Mat, row0: usize, stripe: &mut [f64]) {
    fill_panel_cols(z, row0, stripe, 0, z.rows());
}

/// Fill the upper part of row `i`'s tile-diagonal block: dots `z_i · z_j`
/// for `j ∈ [i, t1)` into `s_row`, and the matching transcendental pair —
/// `(softplus(s), σ(s))` when `grad`, else `(softplus(s), unused)` — into
/// the row's slice of the diagonal cache (pair slots indexed by `j − t0`).
/// Because `s_ij` bit-equals `s_ji` (each product commutes, the ascending
/// `k` order is shared), these cached values serve *both* rows of every
/// symmetric pair: the lower half is read from the mirrored slot instead
/// of being recomputed, halving the diagonal block's dot + exp work.
///
/// Columns are processed four at a time with independent accumulators
/// (same ILP rationale as [`fill_panel_cols`]); each accumulator keeps the
/// exact `Mat::gram` element order, so the bits are unchanged.
fn fill_diag_row(
    z: &Mat,
    i: usize,
    t0: usize,
    t1: usize,
    s_row: &mut [f64],
    drow: &mut [f64],
    grad: bool,
) {
    let zi = z.row(i);
    let mut store = |j: usize, s: f64| {
        s_row[j] = s;
        let c2 = (j - t0) * 2;
        if grad {
            let (sp, sig) = softplus_sigmoid(s);
            drow[c2] = sp;
            drow[c2 + 1] = sig;
        } else {
            drow[c2] = softplus(s);
        }
    };
    let mut j = i;
    while j + 4 <= t1 {
        let (b0, b1, b2, b3) = (z.row(j), z.row(j + 1), z.row(j + 2), z.row(j + 3));
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (k, &x) in zi.iter().enumerate() {
            a0 += x * b0[k];
            a1 += x * b1[k];
            a2 += x * b2[k];
            a3 += x * b3[k];
        }
        store(j, a0);
        store(j + 1, a1);
        store(j + 2, a2);
        store(j + 3, a3);
        j += 4;
    }
    while j < t1 {
        store(j, dot(zi, z.row(j)));
        j += 1;
    }
}

/// `softplus(x)` and `σ(x)` together, sharing the `exp` where the two
/// reference implementations in `crate::lib` evaluate the same one
/// (`x < 0`: both use `e = eˣ`). Bit-identical to calling each separately.
#[inline]
fn softplus_sigmoid(x: f64) -> (f64, f64) {
    if x < 0.0 {
        let e = x.exp();
        let sp = if x < -30.0 { e } else { e.ln_1p() };
        (sp, e / (1.0 + e))
    } else {
        let sp = if x > 30.0 { x } else { x.exp().ln_1p() };
        (sp, 1.0 / (1.0 + (-x).exp()))
    }
}

/// Sparse row of a CSR as (columns, values) slices, ascending columns.
#[inline]
fn csr_row(t: &Csr, i: usize) -> Vec<(usize, f64)> {
    t.row_iter(i).collect()
}

/// Fused, tiled weighted-BCE-over-Gram forward (+ optional backward):
/// computes `norm · mean[pos_weight · t · softplus(−z_iᵀz_j) + (1 − t) ·
/// softplus(z_iᵀz_j)]` and, when `grad_scale = Some(gs)`, the latent
/// gradient rows `dZ_i = Σ_j (c_ij + c_ji) z_j` with
/// `c_ij = gs · (pos_weight · t_ij · (σ_ij − 1) + (1 − t_ij) · σ_ij)`,
/// without materialising the N×N logits. For the legacy-equivalent
/// gradient pass `gs = norm / N²` (the unit upstream gradient folded in).
///
/// Reported under the `fused_gram_bce_fwd_bwd` kernel stat.
pub fn gram_bce_fused(
    z: &Mat,
    target: &Csr,
    pos_weight: f64,
    norm: f64,
    grad_scale: Option<f64>,
) -> Result<FusedGramBce> {
    let n = z.rows();
    let d = z.cols();
    if target.rows() != n || target.cols() != n {
        return Err(Error::ShapeMismatch {
            op: "gram_bce_fused",
            lhs: (n, n),
            rhs: (target.rows(), target.cols()),
        });
    }
    let denom = (n * n) as f64;
    rgae_par::timed("fused_gram_bce_fwd_bwd", || {
        // Transposed target: row i holds the t_ji needed for c_ji.
        let tt = grad_scale.map(|_| target.transpose());
        let grad = grad_scale.is_some();
        let tile = effective_tile(n);
        let n_chunks = n.div_ceil(REDUCE_CHUNK);
        let mut partials = vec![0.0f64; n_chunks];
        let mut dz = grad_scale.map(|_| Mat::zeros(n, d));
        let mut panel = vec![0.0f64; tile * n];
        // (softplus, σ) pairs for the tile's diagonal block. `s_ij` bit-
        // equals `s_ji`, so each unordered pair {i, j} inside the block is
        // evaluated exactly once (by the row with the smaller index) and
        // both rows read the shared slot — the diagonal block costs half
        // its dots and half its exp calls.
        let mut diag = vec![0.0f64; tile * tile * 2];

        for tile_start in (0..n).step_by(tile) {
            let t0 = tile_start;
            let tw = tile.min(n - t0);
            let t1 = t0 + tw;
            let panel_slice = &mut panel[..tw * n];
            let diag_slice = &mut diag[..tw * tw * 2];

            // Phase 1 — fill. Each chunk owns its panel rows and the
            // matching diagonal-cache rows: off-block columns get plain
            // dots, in-block columns j ≥ i get the dot plus its cached
            // transcendental pair. Nothing is read across chunks.
            rgae_par::par_zip_chunks_mut(
                panel_slice,
                REDUCE_CHUNK * n,
                diag_slice,
                REDUCE_CHUNK * tw * 2,
                |ci, stripe, dstripe| {
                    let row0 = t0 + ci * REDUCE_CHUNK;
                    fill_panel_cols(z, row0, stripe, 0, t0);
                    fill_panel_cols(z, row0, stripe, t1, n);
                    for r in 0..stripe.len() / n {
                        let i = row0 + r;
                        let s_row = &mut stripe[r * n..(r + 1) * n];
                        let drow = &mut dstripe[r * tw * 2..(r + 1) * tw * 2];
                        fill_diag_row(z, i, t0, t1, s_row, drow, grad);
                    }
                },
            );

            // Phase 2 — sweep. The panel and the diagonal cache are now
            // read-only (shared borrows, no unsafe): each row reads its own
            // panel row for off-block logits, the mirrored slot
            // `(min, max)` of the cache for in-block transcendentals, and
            // the mirrored panel entry `panel[j − t0][i]` for in-block
            // logits below the diagonal (its own slots there were never
            // filled). Writes go only to the row's dz slice and the
            // chunk's loss partial.
            let panel_ref: &[f64] = panel_slice;
            let diag_ref: &[f64] = diag_slice;
            let pair = move |r2: usize, c2: usize| {
                let (a, b) = if c2 >= r2 { (r2, c2) } else { (c2, r2) };
                (a * tw + b) * 2
            };
            // `acc` threads through every row of the chunk (not a per-row
            // subtotal): the legacy chunk partial is one running sum, and
            // regrouping it per row would change the addition tree.
            let sweep_row = |i: usize, dz_row: Option<&mut [f64]>, acc: &mut f64| {
                let r2 = i - t0;
                let s_row = &panel_ref[r2 * n..(r2 + 1) * n];
                let t_row = csr_row(target, i);
                if let (Some(dz_row), Some(gs), Some(tt)) = (dz_row, grad_scale, tt.as_ref()) {
                    // Fused sweep + gradient walk: ascending j, softplus
                    // into the loss accumulator, then the legacy
                    // (C + Cᵀ)·Z element order — coefficient c_ij + c_ji,
                    // zero-skip, ascending latent dim. Interleaving the
                    // walk with the sweep leaves both addition orders
                    // untouched.
                    let tt_row = csr_row(tt, i);
                    let coeff_at = |t: Option<f64>, sig: f64| match t {
                        Some(t) => gs * (pos_weight * t * (sig - 1.0) + (1.0 - t) * sig),
                        None => gs * sig,
                    };
                    let (mut pa, mut pb) = (0usize, 0usize);
                    for j in 0..n {
                        let (sp, sig) = if j >= t0 && j < t1 {
                            let p = pair(r2, j - t0);
                            (diag_ref[p], diag_ref[p + 1])
                        } else {
                            softplus_sigmoid(s_row[j])
                        };
                        *acc += sp;
                        let t_ij = (pa < t_row.len() && t_row[pa].0 == j).then(|| {
                            pa += 1;
                            t_row[pa - 1].1
                        });
                        let t_ji = (pb < tt_row.len() && tt_row[pb].0 == j).then(|| {
                            pb += 1;
                            tt_row[pb - 1].1
                        });
                        let coeff = coeff_at(t_ij, sig) + coeff_at(t_ji, sig);
                        if coeff == 0.0 {
                            continue;
                        }
                        let zj = z.row(j);
                        for (o, &b) in dz_row.iter_mut().zip(zj.iter()) {
                            *o += coeff * b;
                        }
                    }
                } else {
                    for j in 0..t0 {
                        *acc += softplus(s_row[j]);
                    }
                    for c2 in 0..tw {
                        *acc += diag_ref[pair(r2, c2)];
                    }
                    for j in t1..n {
                        *acc += softplus(s_row[j]);
                    }
                }
                // Positive-entry corrections, in CSR order — the legacy
                // forward's second per-row loop. In-block logits below the
                // diagonal come from the mirrored panel entry.
                for &(j, t) in &t_row {
                    let v = if j >= t0 && j < i {
                        panel_ref[(j - t0) * n + i]
                    } else {
                        s_row[j]
                    };
                    *acc += pos_weight * t * softplus(-v) - t * softplus(v);
                }
            };

            let chunk_lo = t0 / REDUCE_CHUNK;
            let chunk_hi = chunk_lo + tw.div_ceil(REDUCE_CHUNK);
            let parts_tile = &mut partials[chunk_lo..chunk_hi];
            let dz_tile = dz.as_mut().map(|m| &mut m.as_mut_slice()[t0 * d..t1 * d]);
            match dz_tile {
                // d == 0 leaves nothing to accumulate (and would give the
                // zip a zero-width chunk); fall through to the loss sweep.
                Some(dz_tile) if d > 0 => rgae_par::par_zip_chunks_mut(
                    dz_tile,
                    REDUCE_CHUNK * d,
                    parts_tile,
                    1,
                    |ci, dz_stripe, part| {
                        let row0 = t0 + ci * REDUCE_CHUNK;
                        let mut acc = 0.0;
                        for r in 0..dz_stripe.len() / d {
                            sweep_row(row0 + r, Some(&mut dz_stripe[r * d..(r + 1) * d]), &mut acc);
                        }
                        part[0] = acc;
                    },
                ),
                _ => rgae_par::par_chunks_mut(parts_tile, 1, |ci, part| {
                    let row0 = t0 + ci * REDUCE_CHUNK;
                    let mut acc = 0.0;
                    for r in 0..REDUCE_CHUNK.min(t1 - row0) {
                        sweep_row(row0 + r, None, &mut acc);
                    }
                    part[0] = acc;
                }),
            }
        }

        // Fold the chunk partials in order — the par_sum_by tail.
        let total: f64 = partials.iter().sum();
        Ok(FusedGramBce {
            loss: norm * total / denom,
            dz,
        })
    })
}

/// Tiled fold over the rows of the virtual Gram matrix `S = Z·Zᵀ`: calls
/// `f(i, s_row)` for every row `i` with the materialised row `s_iⱼ =
/// z_iᵀz_j` and returns the ordered sum of the per-row results (256-row
/// chunk partials folded in chunk order — thread-count invariant). Peak
/// scratch is one B×N panel; no dense N×N allocation.
pub fn gram_row_fold(z: &Mat, f: impl Fn(usize, &[f64]) -> f64 + Sync) -> f64 {
    let n = z.rows();
    if n == 0 {
        return 0.0;
    }
    let tile = effective_tile(n);
    let n_chunks = n.div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f64; n_chunks];
    let mut panel = vec![0.0f64; tile * n];
    for tile_start in (0..n).step_by(tile) {
        let tile_rows = tile.min(n - tile_start);
        let part_view = rgae_par::RawMut::new(&mut partials);
        rgae_par::par_chunks_mut(
            &mut panel[..tile_rows * n],
            REDUCE_CHUNK * n,
            |ci, stripe| {
                let row0 = tile_start + ci * REDUCE_CHUNK;
                fill_panel(z, row0, stripe);
                let mut acc = 0.0;
                for (r, s_row) in stripe.chunks_mut(n).enumerate() {
                    let i = row0 + r;
                    acc += f(i, s_row);
                }
                // SAFETY: one task per reduce chunk.
                unsafe { part_view.write(row0 / REDUCE_CHUNK, acc) };
            },
        );
    }
    partials.iter().sum()
}

/// Tiled map over the rows of the virtual Gram matrix: calls
/// `f(i, s_row, out_row)` for every row with `out_row` the `i`-th row of a
/// fresh `n×out_cols` matrix. Rows are written disjointly, each by exactly
/// one task, so the output bits are thread-count invariant as long as `f`
/// itself is deterministic per row.
pub fn gram_row_map(z: &Mat, out_cols: usize, f: impl Fn(usize, &[f64], &mut [f64]) + Sync) -> Mat {
    let n = z.rows();
    let mut out = Mat::zeros(n, out_cols);
    if n == 0 {
        return out;
    }
    let tile = effective_tile(n);
    let mut panel = vec![0.0f64; tile * n];
    for tile_start in (0..n).step_by(tile) {
        let tile_rows = tile.min(n - tile_start);
        let out_tile = &mut out.as_mut_slice()[tile_start * out_cols..];
        let out_tile = &mut out_tile[..tile_rows * out_cols];
        rgae_par::par_zip_chunks_mut(
            &mut panel[..tile_rows * n],
            REDUCE_CHUNK * n,
            out_tile,
            REDUCE_CHUNK * out_cols.max(1),
            |ci, stripe, out_stripe| {
                let row0 = tile_start + ci * REDUCE_CHUNK;
                fill_panel(z, row0, stripe);
                for (r, s_row) in stripe.chunks_mut(n).enumerate() {
                    let i = row0 + r;
                    let out_row = if out_cols == 0 {
                        &mut [] as &mut [f64]
                    } else {
                        &mut out_stripe[r * out_cols..(r + 1) * out_cols]
                    };
                    f(i, s_row, out_row);
                }
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sigmoid, standard_normal, Rng64};

    fn instance(seed: u64, n: usize, d: usize) -> (Mat, Csr) {
        let mut rng = Rng64::seed_from_u64(seed);
        let z = standard_normal(n, d, &mut rng);
        let mut triplets = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if rng.bernoulli(0.2) {
                    triplets.push((i, j, 1.0));
                }
            }
        }
        let t = Csr::from_triplets(n, n, &triplets).unwrap();
        (z, t)
    }

    /// Reference: the legacy dense three-pass computation, including the
    /// row-chunked `par_sum_by` reduction structure of `bce_logits_sparse`.
    fn legacy(z: &Mat, t: &Csr, pw: f64, norm: f64) -> (f64, Mat) {
        let n = z.rows();
        let gram = z.gram();
        let total = rgae_par::par_sum_by(n, |range| {
            let mut acc = 0.0;
            for i in range {
                let row = gram.row(i);
                for &v in row {
                    acc += softplus(v);
                }
                for (j, tv) in t.row_iter(i) {
                    let v = row[j];
                    acc += pw * tv * softplus(-v) - tv * softplus(v);
                }
            }
            acc
        });
        let denom = (n * n) as f64;
        let loss = norm * total / denom;
        let gs = 1.0 * norm / denom;
        let mut c = gram.map(|v| gs * sigmoid(v));
        for i in 0..n {
            for (j, tv) in t.row_iter(i) {
                let s = sigmoid(gram[(i, j)]);
                c[(i, j)] = gs * (pw * tv * (s - 1.0) + (1.0 - tv) * s);
            }
        }
        let sym = c.add(&c.transpose()).unwrap();
        let dz = sym.matmul(z).unwrap();
        (loss, dz)
    }

    #[test]
    fn fused_matches_legacy_bitwise() {
        for &(n, d) in &[(1usize, 1usize), (3, 2), (17, 4), (64, 8), (300, 5)] {
            let (z, t) = instance(7 + n as u64, n, d);
            let (pw, norm) = (3.5, 0.62);
            let denom = (n * n) as f64;
            let out = gram_bce_fused(&z, &t, pw, norm, Some(norm / denom)).unwrap();
            let (loss, dz) = legacy(&z, &t, pw, norm);
            assert_eq!(out.loss.to_bits(), loss.to_bits(), "loss bits n={n}");
            let got = out.dz.unwrap();
            let want_bits: Vec<u64> = dz.as_slice().iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u64> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "dz bits n={n}");
        }
    }

    #[test]
    fn fused_bits_invariant_to_tile_size() {
        let (z, t) = instance(42, 70, 3);
        let denom = (70.0f64) * 70.0;
        let reference = gram_bce_fused(&z, &t, 2.0, 0.9, Some(0.9 / denom)).unwrap();
        let ref_dz: Vec<u64> = reference
            .dz
            .as_ref()
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for tile in [1, 256, 300, 512, 100_000] {
            set_decoder_tile(Some(tile));
            let got = gram_bce_fused(&z, &t, 2.0, 0.9, Some(0.9 / denom)).unwrap();
            assert_eq!(got.loss.to_bits(), reference.loss.to_bits(), "tile={tile}");
            let got_dz: Vec<u64> = got
                .dz
                .as_ref()
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got_dz, ref_dz, "tile={tile}");
        }
        set_decoder_tile(None);
    }

    #[test]
    fn loss_only_skips_gradient() {
        let (z, t) = instance(3, 20, 4);
        let out = gram_bce_fused(&z, &t, 1.0, 1.0, None).unwrap();
        assert!(out.dz.is_none());
        let (loss, _) = legacy(&z, &t, 1.0, 1.0);
        assert_eq!(out.loss.to_bits(), loss.to_bits());
    }

    #[test]
    fn row_fold_matches_dense_softplus_sum() {
        let (z, _) = instance(11, 37, 3);
        let gram = z.gram();
        let fold = gram_row_fold(&z, |i, s_row| {
            let mut acc = 0.0;
            for &v in s_row {
                acc += softplus(v);
            }
            assert_eq!(s_row.len(), gram.cols());
            for (j, &v) in s_row.iter().enumerate() {
                assert_eq!(v.to_bits(), gram[(i, j)].to_bits());
            }
            acc
        });
        // Chunk partials fold per-row subtotals (f's return values), so the
        // reference groups each row's sum before adding it to the chunk.
        let want = rgae_par::par_sum_by(z.rows(), |range| {
            let mut acc = 0.0;
            for i in range {
                let mut row_acc = 0.0;
                for j in 0..z.rows() {
                    row_acc += softplus(gram[(i, j)]);
                }
                acc += row_acc;
            }
            acc
        });
        assert_eq!(fold.to_bits(), want.to_bits());
    }

    #[test]
    fn row_map_writes_disjoint_rows() {
        let (z, _) = instance(13, 41, 2);
        let out = gram_row_map(&z, 2, |i, s_row, out_row| {
            out_row[0] = i as f64;
            out_row[1] = s_row.iter().sum();
        });
        assert_eq!(out.shape(), (41, 2));
        for i in 0..41 {
            assert_eq!(out[(i, 0)], i as f64);
        }
    }

    #[test]
    fn softplus_sigmoid_bit_matches_references() {
        for x in [
            -1e9, -31.0, -30.0, -5.0, -0.5, -1e-17, 0.0, 0.5, 29.9, 30.0, 31.0, 1e9,
        ] {
            let (sp, sig) = softplus_sigmoid(x);
            assert_eq!(sp.to_bits(), softplus(x).to_bits(), "softplus({x})");
            assert_eq!(sig.to_bits(), sigmoid(x).to_bits(), "sigmoid({x})");
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (z, _) = instance(5, 4, 2);
        let t = Csr::zeros(3, 3);
        assert!(gram_bce_fused(&z, &t, 1.0, 1.0, None).is_err());
    }

    #[test]
    fn panel_bytes_reports_tile_width() {
        set_decoder_tile(Some(512));
        // B×N panel plus the 2·B² diagonal-block transcendental cache.
        assert_eq!(
            fused_panel_bytes(10_000),
            (512 * 10_000 + 2 * 512 * 512) * 8
        );
        // Small n clamps to its own rounded row count.
        assert_eq!(fused_panel_bytes(100), (256 * 100 + 2 * 256 * 256) * 8);
        set_decoder_tile(None);
    }
}

//! Dense and sparse linear-algebra kernels used throughout the `rgae`
//! workspace.
//!
//! The workspace deliberately avoids heavyweight BLAS bindings: the models in
//! the reproduced paper are tiny (two graph-convolution layers, hidden sizes
//! of 16–64), so plain, carefully written `f64` loops are both portable and
//! fast enough. Everything here is deterministic given a seed.
//!
//! The two central types are:
//!
//! * [`Mat`] — a dense, row-major `f64` matrix.
//! * [`Csr`] — a compressed-sparse-row matrix, used for graph adjacencies and
//!   the normalised graph filter Ã.

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

mod csr;
mod decoder;
mod mat;
mod rng;

pub use csr::{Csr, Triplet};
pub use decoder::{
    decoder_tile, fused_panel_bytes, gram_bce_fused, gram_row_fold, gram_row_map, set_decoder_tile,
    FusedGramBce, DEFAULT_DECODER_TILE,
};
pub use mat::Mat;
pub use rng::{glorot_uniform, standard_normal, uniform, Rng64};

/// Errors produced by shape or numeric validation in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A matrix construction received inconsistent buffer lengths.
    BadConstruction(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::BadConstruction(what) => write!(f, "bad construction: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Cosine similarity between two equal-length vectors.
///
/// Returns `0.0` when either vector is (numerically) zero, which is the
/// convention the paper's Λ diagnostics need: a vanished gradient carries no
/// directional information.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = na.sqrt() * nb.sqrt();
    if denom <= f64::EPSILON {
        0.0
    } else {
        dot / denom
    }
}

/// Euclidean distance between two equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Numerically stable `log(1 + exp(x))`.
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basic() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn softplus_stable() {
        assert!((softplus(0.0) - 2f64.ln()).abs() < 1e-12);
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) > 0.0);
        assert!(softplus(-100.0) < 1e-40);
    }

    #[test]
    fn sigmoid_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn euclidean_basic() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}

//! Dense row-major matrix and its kernels.
//!
//! The hot kernels (matmul variants, Gram, element-wise maps, pairwise
//! distances) run on the `rgae-par` pool. Every parallel kernel keeps the
//! per-element floating-point operation order of the serial loop and writes
//! disjoint output stripes, so results are bit-for-bit identical at any
//! thread count (see `rgae-par`'s crate docs for the determinism rules).

use crate::{Error, Result};

/// Work (in rough flops) below which a kernel runs as a single inline task;
/// pool dispatch costs more than it saves on matrices this small.
const MIN_PAR_WORK: usize = 16 * 1024;

/// Rows per parallel task for a kernel whose per-row cost is ~`row_cost`
/// flops. Returns the whole matrix (one task → inline execution) when the
/// kernel is too small to amortise dispatch, otherwise ~4 chunks per thread
/// so the atomic work counter load-balances ragged rows. The choice never
/// affects results — only which thread computes which rows.
fn par_row_chunk(rows: usize, row_cost: usize) -> usize {
    let t = rgae_par::threads();
    if t <= 1 || rows.saturating_mul(row_cost.max(1)) < MIN_PAR_WORK {
        rows.max(1)
    } else {
        rows.div_ceil(t * 4).max(1)
    }
}

/// A dense, row-major `f64` matrix.
///
/// The storage is a flat `Vec<f64>` of length `rows * cols`; element `(i, j)`
/// lives at index `i * cols + j`. Rows are the natural unit of access for
/// every algorithm in this workspace (nodes of a graph), so row views are
/// cheap slices.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let row = self.row(i);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Mat {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::BadConstruction("buffer length != rows*cols"));
        }
        Ok(Mat { rows, cols, data })
    }

    /// Build from nested rows. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(Error::BadConstruction("ragged rows"));
            }
            data.extend_from_slice(row);
        }
        Ok(Mat {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// A new matrix containing the selected rows, in order.
    pub fn select_rows(&self, idx: &[usize]) -> Mat {
        let mut out = Mat::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        let (rows, cols) = (self.rows, self.cols);
        let chunk_rows = par_row_chunk(cols, rows);
        rgae_par::par_chunks_mut(&mut out.data, chunk_rows * rows, |ci, chunk| {
            let j0 = ci * chunk_rows;
            for (r, o_row) in chunk.chunks_mut(rows).enumerate() {
                let j = j0 + r;
                for (i, o) in o_row.iter_mut().enumerate() {
                    *o = self.data[i * cols + j];
                }
            }
        });
        out
    }

    /// Dense matrix product `self * rhs`.
    ///
    /// Uses the cache-friendly `ikj` loop order: the inner loop streams one
    /// row of `rhs` and one row of the output.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        let cols = rhs.cols;
        if cols == 0 || self.rows == 0 {
            return Ok(out);
        }
        rgae_par::timed("mat_matmul", || {
            let chunk_rows = par_row_chunk(self.rows, self.cols * cols);
            rgae_par::par_chunks_mut(&mut out.data, chunk_rows * cols, |ci, chunk| {
                let i0 = ci * chunk_rows;
                for (r, o_row) in chunk.chunks_mut(cols).enumerate() {
                    let a_row = self.row(i0 + r);
                    for (k, &a_ik) in a_row.iter().enumerate() {
                        if a_ik == 0.0 {
                            continue;
                        }
                        let b_row = rhs.row(k);
                        for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                            *o += a_ik * b;
                        }
                    }
                }
            });
        });
        Ok(out)
    }

    /// `self * rhsᵀ` without materialising the transpose.
    pub fn matmul_t(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.cols {
            return Err(Error::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.rows);
        let cols = rhs.rows;
        if cols == 0 || self.rows == 0 {
            return Ok(out);
        }
        rgae_par::timed("mat_matmul_t", || {
            let chunk_rows = par_row_chunk(self.rows, cols * self.cols);
            rgae_par::par_chunks_mut(&mut out.data, chunk_rows * cols, |ci, chunk| {
                let i0 = ci * chunk_rows;
                for (r, o_row) in chunk.chunks_mut(cols).enumerate() {
                    let a_row = self.row(i0 + r);
                    for (j, o) in o_row.iter_mut().enumerate() {
                        let b_row = rhs.row(j);
                        let mut acc = 0.0;
                        for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                            acc += a * b;
                        }
                        *o = acc;
                    }
                }
            });
        });
        Ok(out)
    }

    /// `selfᵀ * rhs` without materialising the transpose.
    pub fn t_matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.cols, rhs.cols);
        let cols = rhs.cols;
        if cols == 0 || self.cols == 0 {
            return Ok(out);
        }
        // Gather formulation: each task owns a stripe of *output* rows `i`
        // and scans the shared dimension `k` in ascending order, so every
        // element accumulates in exactly the order of the serial scatter
        // loop, with no cross-task writes.
        rgae_par::timed("mat_t_matmul", || {
            let chunk_rows = par_row_chunk(self.cols, self.rows * cols);
            rgae_par::par_chunks_mut(&mut out.data, chunk_rows * cols, |ci, chunk| {
                let i0 = ci * chunk_rows;
                for k in 0..self.rows {
                    let a_row = self.row(k);
                    let b_row = rhs.row(k);
                    for (r, o_row) in chunk.chunks_mut(cols).enumerate() {
                        let a = a_row[i0 + r];
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                            *o += a * b;
                        }
                    }
                }
            });
        });
        Ok(out)
    }

    /// The Gram matrix `self * selfᵀ` (the GAE inner-product decoder logits).
    ///
    /// Exploits symmetry: only the upper triangle is computed.
    pub fn gram(&self) -> Mat {
        let n = self.rows;
        let mut out = Mat::zeros(n, n);
        if n == 0 {
            return out;
        }
        rgae_par::timed("mat_gram", || {
            let chunk_rows = par_row_chunk(n, n * self.cols / 2 + 1);
            // Pass 1: upper triangle, row-parallel (row i computes j ≥ i).
            rgae_par::par_chunks_mut(&mut out.data, chunk_rows * n, |ci, chunk| {
                let i0 = ci * chunk_rows;
                for (r, o_row) in chunk.chunks_mut(n).enumerate() {
                    let i = i0 + r;
                    let zi = self.row(i);
                    for (j, o) in o_row.iter_mut().enumerate().skip(i) {
                        let zj = self.row(j);
                        let mut acc = 0.0;
                        for (&a, &b) in zi.iter().zip(zj.iter()) {
                            acc += a * b;
                        }
                        *o = acc;
                    }
                }
            });
            // Pass 2: mirror the strict lower triangle from the upper. Reads
            // hit only upper entries, writes only strict-lower — disjoint
            // element sets, expressed through a RawMut view since the ranges
            // interleave inside every row.
            let n_chunks = n.div_ceil(chunk_rows);
            let view = rgae_par::RawMut::new(&mut out.data);
            rgae_par::run(n_chunks, &|ci| {
                let i0 = ci * chunk_rows;
                let i1 = (i0 + chunk_rows).min(n);
                for i in i0..i1 {
                    for j in 0..i {
                        // SAFETY: (i, j) is strict-lower and written by this
                        // task only; (j, i) is upper and never written in
                        // this pass.
                        unsafe { view.write(i * n + j, view.read(j * n + i)) };
                    }
                }
            });
        });
        out
    }

    /// Elements per parallel task for an element-wise kernel over `len`
    /// entries (whole buffer → inline when too small to amortise dispatch).
    fn elem_chunk(len: usize) -> usize {
        let t = rgae_par::threads();
        if t <= 1 || len < MIN_PAR_WORK {
            len.max(1)
        } else {
            len.div_ceil(t * 4).max(1)
        }
    }

    /// Elementwise binary map into a new matrix.
    pub fn zip_map(&self, rhs: &Mat, f: impl Fn(f64, f64) -> f64 + Sync) -> Result<Mat> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, self.cols);
        let chunk = Self::elem_chunk(out.data.len());
        rgae_par::par_chunks_mut(&mut out.data, chunk, |ci, w| {
            let start = ci * chunk;
            for (k, o) in w.iter_mut().enumerate() {
                *o = f(self.data[start + k], rhs.data[start + k]);
            }
        });
        Ok(out)
    }

    /// Elementwise unary map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        let chunk = Self::elem_chunk(out.data.len());
        rgae_par::par_chunks_mut(&mut out.data, chunk, |ci, w| {
            let start = ci * chunk;
            for (k, o) in w.iter_mut().enumerate() {
                *o = f(self.data[start + k]);
            }
        });
        out
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Mat {
        self.map(|a| a * s)
    }

    /// In-place `self += s * rhs`.
    pub fn axpy(&mut self, s: f64, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += s * b;
        }
        Ok(())
    }

    /// Add a row vector (broadcast over rows), e.g. a bias.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Result<Mat> {
        if bias.len() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &b) in out.row_mut(i).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum along rows → one value per row.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Sum along columns → one value per column.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        let n = self.rows.max(1) as f64;
        self.col_sums().into_iter().map(|s| s / n).collect()
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Squared L2 norm of each row.
    pub fn row_sq_norms(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|&v| v * v).sum())
            .collect()
    }

    /// Normalise each row to unit L2 norm; zero rows are left untouched.
    pub fn row_l2_normalized(&self) -> Mat {
        let mut out = self.clone();
        for i in 0..out.rows {
            let norm: f64 = out.row(i).iter().map(|&v| v * v).sum::<f64>().sqrt();
            if norm > f64::EPSILON {
                for v in out.row_mut(i) {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Row-wise softmax (numerically stable).
    pub fn row_softmax(&self) -> Mat {
        let mut out = self.clone();
        for i in 0..out.rows {
            let row = out.row_mut(i);
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - mx).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Index of the maximum entry of each row (first wins on ties).
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Squared Euclidean distance between row `i` of `self` and `point`.
    pub fn row_sq_dist(&self, i: usize, point: &[f64]) -> f64 {
        self.row(i)
            .iter()
            .zip(point.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// Pairwise squared distances between the rows of `self` and rows of
    /// `centers` → `(self.rows, centers.rows)`.
    pub fn pairwise_sq_dists(&self, centers: &Mat) -> Result<Mat> {
        if self.cols != centers.cols {
            return Err(Error::ShapeMismatch {
                op: "pairwise_sq_dists",
                lhs: self.shape(),
                rhs: centers.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, centers.rows);
        let k = centers.rows;
        if k == 0 || self.rows == 0 {
            return Ok(out);
        }
        rgae_par::timed("mat_pairwise_sq_dists", || {
            let chunk_rows = par_row_chunk(self.rows, k * self.cols);
            rgae_par::par_chunks_mut(&mut out.data, chunk_rows * k, |ci, chunk| {
                let i0 = ci * chunk_rows;
                for (r, o_row) in chunk.chunks_mut(k).enumerate() {
                    let i = i0 + r;
                    for (c, o) in o_row.iter_mut().enumerate() {
                        *o = self.row_sq_dist(i, centers.row(c));
                    }
                }
            });
        });
        Ok(out)
    }

    /// Solve `self · X = B` for a symmetric positive-definite `self` via
    /// Cholesky factorisation. Returns `Err` when the matrix is not SPD
    /// (a non-positive pivot appears).
    pub fn solve_spd(&self, b: &Mat) -> Result<Mat> {
        let n = self.rows;
        if self.cols != n || b.rows() != n {
            return Err(Error::ShapeMismatch {
                op: "solve_spd",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        // Cholesky: self = L Lᵀ, lower triangular L stored densely.
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(Error::BadConstruction("solve_spd: matrix not SPD"));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        // Forward substitution L Y = B, then back substitution Lᵀ X = Y.
        let m = b.cols();
        let mut y = Mat::zeros(n, m);
        for i in 0..n {
            for c in 0..m {
                let mut sum = b[(i, c)];
                for k in 0..i {
                    sum -= l[(i, k)] * y[(k, c)];
                }
                y[(i, c)] = sum / l[(i, i)];
            }
        }
        let mut x = Mat::zeros(n, m);
        for i in (0..n).rev() {
            for c in 0..m {
                let mut sum = y[(i, c)];
                for k in i + 1..n {
                    sum -= l[(k, i)] * x[(k, c)];
                }
                x[(i, c)] = sum / l[(i, i)];
            }
        }
        Ok(x)
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, rhs: &Mat) -> f64 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Mat {
        Mat::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 2)], 6.0);
        assert_eq!(a.row(1), &[4., 5., 6.]);
        assert_eq!(a.col(1), vec![2., 5.]);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Mat::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Mat::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matmul_known() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Mat::eye(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 3, &[1., 0., 1., 0., 2., 0.]);
        let expect = a.matmul(&b.transpose()).unwrap();
        assert!(a.matmul_t(&b).unwrap().max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[1., 0., 1., 0., 2., 0.]);
        let expect = a.transpose().matmul(&b).unwrap();
        assert!(a.t_matmul(&b).unwrap().max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn gram_matches_matmul_t_self() {
        let a = m(3, 2, &[1., 2., -3., 4., 0.5, -6.]);
        let expect = a.matmul_t(&a).unwrap();
        assert!(a.gram().max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[10., 20., 30., 40.]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11., 22., 33., 44.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9., 18., 27., 36.]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[10., 40., 90., 160.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn axpy_works() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        let b = m(1, 3, &[1., 2., 3.]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[3., 5., 7.]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.row_sums(), vec![6., 15.]);
        assert_eq!(a.col_sums(), vec![5., 7., 9.]);
        assert_eq!(a.col_means(), vec![2.5, 3.5, 4.5]);
        assert!((a.frob_norm() - 91f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.row_sq_norms(), vec![14., 77.]);
    }

    #[test]
    fn row_softmax_rows_sum_to_one() {
        let a = m(2, 3, &[1., 2., 3., 1000., 1000., 1000.]);
        let s = a.row_softmax();
        for i in 0..2 {
            assert!((s.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        assert!(s.all_finite());
        // Uniform logits → uniform probabilities.
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_argmax_first_wins_ties() {
        let a = m(2, 3, &[0., 5., 5., 9., 1., 2.]);
        assert_eq!(a.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn row_l2_normalized_unit_rows() {
        let a = m(2, 2, &[3., 4., 0., 0.]);
        let n = a.row_l2_normalized();
        assert!((n.row(0)[0] - 0.6).abs() < 1e-12);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-12);
        // Zero row untouched.
        assert_eq!(n.row(1), &[0., 0.]);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn pairwise_sq_dists_known() {
        let x = m(2, 2, &[0., 0., 1., 1.]);
        let c = m(1, 2, &[1., 0.]);
        let d = x.pairwise_sq_dists(&c).unwrap();
        assert_eq!(d.as_slice(), &[1., 1.]);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        // A = MᵀM + I is SPD.
        let m_ = m(3, 3, &[1., 2., 0., 0., 1., 1., 2., 0., 1.]);
        let a = m_.t_matmul(&m_).unwrap().add(&Mat::eye(3)).unwrap();
        let x_true = m(3, 2, &[1., -2., 0.5, 3., -1., 0.25]);
        let b = a.matmul(&x_true).unwrap();
        let x = a.solve_spd(&b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn solve_spd_rejects_indefinite() {
        let a = m(2, 2, &[0., 1., 1., 0.]);
        assert!(a.solve_spd(&Mat::eye(2)).is_err());
    }

    #[test]
    fn solve_spd_rejects_shape_mismatch() {
        let a = Mat::eye(3);
        assert!(a.solve_spd(&Mat::zeros(2, 2)).is_err());
    }

    #[test]
    fn add_row_broadcast_bias() {
        let a = m(2, 2, &[0., 0., 1., 1.]);
        let b = a.add_row_broadcast(&[1.0, -1.0]).unwrap();
        assert_eq!(b.as_slice(), &[1., -1., 2., 0.]);
    }
}

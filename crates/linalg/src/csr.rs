//! Compressed-sparse-row matrices for graph adjacencies and filters.
//!
//! The spMM kernels run on the `rgae-par` pool with bit-for-bit determinism:
//! `spmm` is row-parallel (disjoint output rows, unchanged accumulation
//! order), `t_spmm` uses an ownership partition over output rows so the
//! serial scatter order is preserved without cross-task writes.

use crate::{Error, Mat, Result};

/// Output rows per parallel task for a kernel costing ~`total_work` flops
/// over `out_rows` disjoint output rows. One task (inline execution) when
/// too small to amortise pool dispatch; never affects results.
fn par_row_chunk(out_rows: usize, total_work: usize) -> usize {
    const MIN_PAR_WORK: usize = 16 * 1024;
    let t = rgae_par::threads();
    if t <= 1 || total_work < MIN_PAR_WORK {
        out_rows.max(1)
    } else {
        out_rows.div_ceil(t * 4).max(1)
    }
}

/// A `(row, col, value)` entry used to build a [`Csr`].
pub type Triplet = (usize, usize, f64);

/// A compressed-sparse-row `f64` matrix.
///
/// Invariants (checked on construction, maintained by every method):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`,
///   `indptr[rows] == indices.len() == data.len()`;
/// * column indices within each row are strictly increasing and `< cols`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl Csr {
    /// An empty (all-zero) sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Build from triplets. Duplicate `(row, col)` entries are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[Triplet]) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(Error::BadConstruction("triplet index out of bounds"));
            }
        }
        // Bucket per row, then sort + merge duplicates per row.
        let mut buckets: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            buckets[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut data = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for bucket in &mut buckets {
            bucket.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < bucket.len() {
                let c = bucket[k].0;
                let mut v = 0.0;
                while k < bucket.len() && bucket[k].0 == c {
                    v += bucket[k].1;
                    k += 1;
                }
                if v != 0.0 {
                    indices.push(c);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Ok(Csr {
            rows,
            cols,
            indptr,
            indices,
            data,
        })
    }

    /// Build a binary symmetric adjacency from undirected edges (no
    /// self-loops added; duplicate / reversed duplicates are collapsed to 1).
    pub fn adjacency_from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(Error::BadConstruction("edge endpoint out of bounds"));
            }
            if u == v {
                continue;
            }
            triplets.push((u, v, 1.0));
            triplets.push((v, u, 1.0));
        }
        let mut a = Csr::from_triplets(n, n, &triplets)?;
        // Collapse summed duplicates back to binary weights.
        for v in &mut a.data {
            *v = 1.0;
        }
        Ok(a)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[usize] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i` (parallel to [`Csr::row_indices`]).
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.data[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Iterate `(col, value)` over row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_indices(i)
            .iter()
            .copied()
            .zip(self.row_values(i).iter().copied())
    }

    /// Iterate all `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| self.row_iter(i).map(move |(j, v)| (i, j, v)))
    }

    /// Value at `(i, j)` (0 when not stored). Binary search within the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        match self.row_indices(i).binary_search(&j) {
            Ok(pos) => self.row_values(i)[pos],
            Err(_) => 0.0,
        }
    }

    /// Whether a structural non-zero exists at `(i, j)`.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.row_indices(i).binary_search(&j).is_ok()
    }

    /// Row sums (weighted degrees for an adjacency).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row_values(i).iter().sum())
            .collect()
    }

    /// Sparse × dense product → dense.
    pub fn spmm(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows() {
            return Err(Error::ShapeMismatch {
                op: "spmm",
                lhs: (self.rows, self.cols),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols());
        let cols = rhs.cols();
        if cols == 0 || self.rows == 0 {
            return Ok(out);
        }
        rgae_par::timed("csr_spmm", || {
            let chunk_rows = par_row_chunk(self.rows, self.nnz() * cols);
            rgae_par::par_chunks_mut(out.as_mut_slice(), chunk_rows * cols, |ci, chunk| {
                let i0 = ci * chunk_rows;
                for (r, o_row) in chunk.chunks_mut(cols).enumerate() {
                    for (j, v) in self.row_iter(i0 + r) {
                        let b_row = rhs.row(j);
                        for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                            *o += v * b;
                        }
                    }
                }
            });
        });
        Ok(out)
    }

    /// Transposed sparse × dense product: `selfᵀ * rhs` → dense.
    pub fn t_spmm(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows() {
            return Err(Error::ShapeMismatch {
                op: "t_spmm",
                lhs: (self.cols, self.rows),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.cols, rhs.cols());
        let cols = rhs.cols();
        if cols == 0 || self.cols == 0 {
            return Ok(out);
        }
        // Ownership partition: each task owns a stripe of *output* rows `j`
        // and scans every input row `i` in ascending order, accumulating only
        // the entries whose column falls in its stripe. The per-element add
        // order is exactly the serial scatter loop's, and no two tasks touch
        // the same output row.
        rgae_par::timed("csr_t_spmm", || {
            let chunk_rows = par_row_chunk(self.cols, self.nnz() * cols);
            rgae_par::par_chunks_mut(out.as_mut_slice(), chunk_rows * cols, |ci, chunk| {
                let j0 = ci * chunk_rows;
                let j1 = (j0 + chunk_rows).min(self.cols);
                for i in 0..self.rows {
                    let b_row = rhs.row(i);
                    for (j, v) in self.row_iter(i) {
                        if j < j0 || j >= j1 {
                            continue;
                        }
                        let o_row = &mut chunk[(j - j0) * cols..(j - j0 + 1) * cols];
                        for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                            *o += v * b;
                        }
                    }
                }
            });
        });
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Csr {
        let triplets: Vec<Triplet> = self.iter().map(|(i, j, v)| (j, i, v)).collect();
        Csr::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose of a valid CSR is valid")
    }

    /// Densify.
    pub fn to_dense(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            out[(i, j)] = v;
        }
        out
    }

    /// Scale every stored value by `s`.
    pub fn scale(&self, s: f64) -> Csr {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Symmetric GCN normalisation with self-loops:
    /// `Ã = D̂^{-1/2} (A + I) D̂^{-1/2}` where `D̂` is the degree matrix of
    /// `A + I`. Expects a square matrix.
    pub fn gcn_normalized(&self) -> Result<Csr> {
        if self.rows != self.cols {
            return Err(Error::BadConstruction("gcn_normalized needs square"));
        }
        let n = self.rows;
        let mut triplets: Vec<Triplet> = self.iter().collect();
        for i in 0..n {
            triplets.push((i, i, 1.0));
        }
        let with_loops = Csr::from_triplets(n, n, &triplets)?;
        Ok(with_loops.sym_normalized())
    }

    /// Symmetric normalisation without adding self-loops:
    /// `D^{-1/2} A D^{-1/2}`. Zero-degree rows stay zero.
    pub fn sym_normalized(&self) -> Csr {
        let deg = self.row_sums();
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = self.clone();
        for i in 0..self.rows {
            let (start, end) = (out.indptr[i], out.indptr[i + 1]);
            for k in start..end {
                let j = out.indices[k];
                out.data[k] *= inv_sqrt[i] * inv_sqrt[j];
            }
        }
        out
    }

    /// Row-stochastic normalisation `D^{-1} A`. Zero-degree rows stay zero.
    pub fn row_normalized(&self) -> Csr {
        let deg = self.row_sums();
        let mut out = self.clone();
        for i in 0..self.rows {
            if deg[i] <= 0.0 {
                continue;
            }
            let (start, end) = (out.indptr[i], out.indptr[i + 1]);
            for k in start..end {
                out.data[k] /= deg[i];
            }
        }
        out
    }

    /// Upper-triangle edge list `(i < j)` of a square symmetric matrix.
    pub fn upper_edges(&self) -> Vec<(usize, usize)> {
        self.iter()
            .filter(|&(i, j, _)| i < j)
            .map(|(i, j, _)| (i, j))
            .collect()
    }

    /// Row-pointer array (`rows + 1` entries). For serialisation.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices in row-major order. For serialisation.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Nonzero values in row-major order. For serialisation.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Rebuild a matrix from raw CSR parts (the inverse of [`Csr::indptr`] /
    /// [`Csr::indices`] / [`Csr::values`]). Validates every invariant, so
    /// untrusted bytes (e.g. a checkpoint file) cannot construct a malformed
    /// matrix.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self> {
        let csr = Csr {
            rows,
            cols,
            indptr,
            indices,
            data,
        };
        if csr.check_invariants() {
            Ok(csr)
        } else {
            Err(Error::BadConstruction("invalid raw CSR parts"))
        }
    }

    /// Verify internal invariants; used by tests and `debug_assert!`s.
    pub fn check_invariants(&self) -> bool {
        if self.indptr.len() != self.rows + 1 || self.indptr[0] != 0 {
            return false;
        }
        if *self.indptr.last().unwrap() != self.indices.len()
            || self.indices.len() != self.data.len()
        {
            return false;
        }
        for i in 0..self.rows {
            if self.indptr[i] > self.indptr[i + 1] {
                return false;
            }
            let idx = self.row_indices(i);
            for w in idx.windows(2) {
                if w[0] >= w[1] {
                    return false;
                }
            }
            if idx.iter().any(|&c| c >= self.cols) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [[0 1 0]
        //  [1 0 2]
        //  [0 2 0]]
        Csr::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)]).unwrap()
    }

    #[test]
    fn from_triplets_sorts_and_sums_duplicates() {
        let c = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (0, 0, 2.0), (0, 1, 3.0)]).unwrap();
        assert!(c.check_invariants());
        assert_eq!(c.row_indices(0), &[0, 1]);
        assert_eq!(c.row_values(0), &[2.0, 4.0]);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn from_triplets_drops_cancelled_entries() {
        let c = Csr::from_triplets(1, 2, &[(0, 0, 1.0), (0, 0, -1.0)]).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        assert!(Csr::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(Csr::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn adjacency_from_edges_symmetric_binary() {
        let a = Csr::adjacency_from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 3)]).unwrap();
        assert!(a.check_invariants());
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(2, 3), 1.0);
        assert_eq!(a.get(3, 3), 0.0, "self-loop skipped");
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn get_and_contains() {
        let c = small();
        assert_eq!(c.get(1, 2), 2.0);
        assert_eq!(c.get(0, 0), 0.0);
        assert!(c.contains(0, 1));
        assert!(!c.contains(0, 2));
    }

    #[test]
    fn spmm_matches_dense() {
        let c = small();
        let x = Mat::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let dense = c.to_dense().matmul(&x).unwrap();
        let sparse = c.spmm(&x).unwrap();
        assert!(dense.max_abs_diff(&sparse) < 1e-12);
    }

    #[test]
    fn t_spmm_matches_dense() {
        let c = Csr::from_triplets(2, 3, &[(0, 1, 1.0), (1, 2, 4.0), (0, 0, -2.0)]).unwrap();
        let x = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let dense = c.to_dense().transpose().matmul(&x).unwrap();
        let sparse = c.t_spmm(&x).unwrap();
        assert!(dense.max_abs_diff(&sparse) < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let c = Csr::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, -1.0)]).unwrap();
        let t = c.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.transpose(), c);
    }

    #[test]
    fn sym_normalized_row_sums() {
        // A path graph 0-1-2: after D^-1/2 A D^-1/2 the (0,1) entry is
        // 1/sqrt(1*2).
        let a = Csr::adjacency_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let n = a.sym_normalized();
        assert!((n.get(0, 1) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((n.get(1, 2) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gcn_normalized_has_self_loops_and_symmetry() {
        let a = Csr::adjacency_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let n = a.gcn_normalized().unwrap();
        for i in 0..3 {
            assert!(n.get(i, i) > 0.0);
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!((n.get(i, j) - n.get(j, i)).abs() < 1e-12);
            }
        }
        // Isolated-node handling: a node with only its self-loop gets Ã_ii=1.
        let iso = Csr::adjacency_from_edges(2, &[]).unwrap();
        let ni = iso.gcn_normalized().unwrap();
        assert!((ni.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_normalized_is_stochastic() {
        let a = Csr::adjacency_from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let r = a.row_normalized();
        for i in 0..3 {
            let s: f64 = r.row_values(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_edges_only_upper() {
        let a = Csr::adjacency_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let e = a.upper_edges();
        assert_eq!(e, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn zeros_is_valid() {
        let z = Csr::zeros(3, 4);
        assert!(z.check_invariants());
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.get(2, 3), 0.0);
    }
}

//! Finite-difference gradient checks for every differentiable operation.
//!
//! Each case builds a scalar loss `f(θ)` from one or more leaf matrices,
//! compares the tape gradient against central differences
//! `(f(θ + h·e) − f(θ − h·e)) / 2h` entry by entry, and requires agreement to
//! a relative tolerance. This is the ground truth the whole training stack
//! rests on.

use std::rc::Rc;

use rgae_autodiff::{Graph, Var};
use rgae_linalg::{Csr, Mat, Rng64};

const H: f64 = 1e-5;
const TOL: f64 = 1e-5;

/// Compare the analytic gradients of `build` (w.r.t. every leaf) against
/// central finite differences.
fn grad_check(leaves: &[Mat], build: impl Fn(&mut Graph, &[Var]) -> Var) {
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = leaves.iter().map(|m| g.leaf(m.clone())).collect();
    let loss = build(&mut g, &vars);
    g.backward(loss).unwrap();
    let analytic: Vec<Mat> = vars.iter().map(|&v| g.grad(v).unwrap().clone()).collect();

    // Numeric pass, one perturbed entry at a time.
    let eval = |perturbed: &[Mat]| -> f64 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|m| g.leaf(m.clone())).collect();
        let loss = build(&mut g, &vars);
        g.scalar(loss)
    };
    for (li, leaf) in leaves.iter().enumerate() {
        for idx in 0..leaf.as_slice().len() {
            let mut plus = leaves.to_vec();
            plus[li].as_mut_slice()[idx] += H;
            let mut minus = leaves.to_vec();
            minus[li].as_mut_slice()[idx] -= H;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * H);
            let got = analytic[li].as_slice()[idx];
            let denom = numeric.abs().max(got.abs()).max(1.0);
            assert!(
                ((numeric - got) / denom).abs() < TOL,
                "leaf {li} entry {idx}: numeric {numeric} vs analytic {got}"
            );
        }
    }
}

fn rand_mat(r: usize, c: usize, seed: u64) -> Mat {
    let mut rng = Rng64::seed_from_u64(seed);
    rgae_linalg::standard_normal(r, c, &mut rng)
}

#[test]
fn check_matmul_chain() {
    let a = rand_mat(3, 4, 1);
    let b = rand_mat(4, 2, 2);
    grad_check(&[a, b], |g, v| {
        let c = g.matmul(v[0], v[1]).unwrap();
        let t = g.tanh(c);
        g.sum(t)
    });
}

#[test]
fn check_gram() {
    let z = rand_mat(4, 3, 3);
    grad_check(&[z], |g, v| {
        let s = g.gram(v[0]);
        let sq = g.hadamard(s, s).unwrap();
        g.mean(sq)
    });
}

#[test]
fn check_spmm() {
    let x = rand_mat(4, 3, 4);
    let s = Rc::new(
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 1, 0.5),
                (1, 0, 0.5),
                (2, 3, 1.5),
                (3, 2, 1.5),
                (0, 0, 1.0),
            ],
        )
        .unwrap(),
    );
    grad_check(&[x], move |g, v| {
        let y = g.spmm(&s, v[0]).unwrap();
        let y = g.relu(y);
        g.sum(y)
    });
}

#[test]
fn check_add_sub_hadamard_scale() {
    let a = rand_mat(2, 3, 5);
    let b = rand_mat(2, 3, 6);
    grad_check(&[a, b], |g, v| {
        let s = g.add(v[0], v[1]).unwrap();
        let d = g.sub(v[0], v[1]).unwrap();
        let h = g.hadamard(s, d).unwrap();
        let sc = g.scale(h, -0.3);
        g.sum(sc)
    });
}

#[test]
fn check_add_bias() {
    let x = rand_mat(3, 4, 7);
    let b = rand_mat(1, 4, 8);
    grad_check(&[x, b], |g, v| {
        let y = g.add_bias(v[0], v[1]).unwrap();
        let y = g.sigmoid(y);
        g.sum(y)
    });
}

#[test]
fn check_activations() {
    // Shift away from relu's kink at zero.
    let mut x = rand_mat(3, 3, 9);
    for v in x.as_mut_slice() {
        if v.abs() < 0.05 {
            *v += 0.1;
        }
    }
    grad_check(&[x.clone()], |g, v| {
        let y = g.relu(v[0]);
        g.sum(y)
    });
    grad_check(&[x.clone()], |g, v| {
        let y = g.sigmoid(v[0]);
        g.sum(y)
    });
    grad_check(&[x.clone()], |g, v| {
        let y = g.tanh(v[0]);
        g.sum(y)
    });
    grad_check(&[x.scale(0.3)], |g, v| {
        let y = g.exp(v[0]);
        g.sum(y)
    });
}

#[test]
fn check_recip_one_plus_and_row_normalize() {
    // Positive inputs (squared distances in practice).
    let x = rand_mat(3, 4, 10).map(|v| v * v + 0.1);
    grad_check(&[x], |g, v| {
        let y = g.recip_one_plus(v[0]);
        let p = g.row_normalize(y);
        // Weighted sum to give each entry a distinct downstream weight.
        let w = g.constant(Mat::from_vec(3, 4, (0..12).map(|i| i as f64 * 0.1).collect()).unwrap());
        let wp = g.hadamard(p, w).unwrap();
        g.sum(wp)
    });
}

#[test]
fn check_gather_rows() {
    let x = rand_mat(5, 3, 11);
    grad_check(&[x], |g, v| {
        let y = g.gather_rows(v[0], &[4, 0, 4, 2]).unwrap();
        let y = g.tanh(y);
        g.sum(y)
    });
}

#[test]
fn check_pairwise_sq_dists() {
    let z = rand_mat(4, 3, 12);
    let mu = rand_mat(2, 3, 13);
    grad_check(&[z, mu], |g, v| {
        let d = g.pairwise_sq_dists(v[0], v[1]).unwrap();
        let w = g
            .constant(Mat::from_vec(4, 2, (0..8).map(|i| 0.2 + i as f64 * 0.1).collect()).unwrap());
        let wd = g.hadamard(d, w).unwrap();
        g.sum(wd)
    });
}

#[test]
fn check_gauss_log_pdf() {
    let z = rand_mat(4, 2, 14);
    let mu = rand_mat(3, 2, 15);
    let lv = rand_mat(3, 2, 16).scale(0.3);
    grad_check(&[z, mu, lv], |g, v| {
        let l = g.gauss_log_pdf(v[0], v[1], v[2]).unwrap();
        let w = g.constant(
            Mat::from_vec(4, 3, (0..12).map(|i| 0.05 * (i as f64 + 1.0)).collect()).unwrap(),
        );
        let wl = g.hadamard(l, w).unwrap();
        g.sum(wl)
    });
}

#[test]
fn check_bce_logits_sparse() {
    let x = rand_mat(4, 4, 17);
    let t = Rc::new(
        Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0), (3, 1, 1.0)]).unwrap(),
    );
    grad_check(&[x], move |g, v| {
        g.bce_logits_sparse(v[0], &t, 2.5, 0.8).unwrap()
    });
}

#[test]
fn check_bce_logits_sparse_through_gram() {
    // The actual GAE decoder pattern: loss(Z·Zᵀ).
    let z = rand_mat(4, 2, 18);
    let t = Rc::new(Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap());
    grad_check(&[z], move |g, v| {
        let s = g.gram(v[0]);
        g.bce_logits_sparse(s, &t, 3.0, 1.2).unwrap()
    });
}

#[test]
fn check_gram_bce_fused() {
    // The fused tiled decoder: loss(Z·Zᵀ) without materializing the gram.
    let z = rand_mat(4, 2, 18);
    let t = Rc::new(Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap());
    grad_check(&[z], move |g, v| {
        g.gram_bce_logits_sparse(v[0], &t, 3.0, 1.2).unwrap()
    });
}

#[test]
fn check_gram_bce_fused_scaled_root() {
    // γ-scaled root exercises the non-unit upstream-gradient branch of the
    // fused backward (dZ_unit · γ).
    let z = rand_mat(5, 3, 35);
    let t = Rc::new(
        Csr::from_triplets(5, 5, &[(0, 1, 1.0), (1, 0, 1.0), (3, 4, 1.0), (4, 3, 1.0)]).unwrap(),
    );
    grad_check(&[z], move |g, v| {
        let recon = g.gram_bce_logits_sparse(v[0], &t, 2.0, 0.8).unwrap();
        g.scale(recon, 0.37)
    });
}

#[test]
fn check_gram_bce_fused_through_encoder() {
    // The full GAE pattern with the fused decoder on top of a GCN layer.
    let w0 = rand_mat(3, 2, 36).scale(0.5);
    let x = rand_mat(5, 3, 37);
    let a = Rc::new(
        Csr::adjacency_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
            .unwrap()
            .gcn_normalized()
            .unwrap(),
    );
    let t = Rc::new(Csr::adjacency_from_edges(5, &[(0, 1), (2, 3)]).unwrap());
    grad_check(&[w0], move |g, v| {
        let xv = g.constant(x.clone());
        let h = g.spmm(&a, xv).unwrap();
        let z = g.matmul(h, v[0]).unwrap();
        g.gram_bce_logits_sparse(z, &t, 4.0, 1.0).unwrap()
    });
}

#[test]
fn check_bce_logits_dense() {
    let x = rand_mat(3, 2, 19);
    let t = Rc::new(Mat::from_vec(3, 2, vec![1.0, 0.0, 0.5, 1.0, 0.0, 0.25]).unwrap());
    grad_check(&[x], move |g, v| g.bce_logits_dense(v[0], &t).unwrap());
}

#[test]
fn check_kl_div_const_q() {
    // p must be a positive distribution-ish matrix; build via softmax-free
    // normalisation of positive leaves.
    let x = rand_mat(3, 4, 20).map(|v| v * v + 0.2);
    let q_rows: Vec<f64> = vec![
        0.1, 0.2, 0.3, 0.4, //
        0.25, 0.25, 0.25, 0.25, //
        0.7, 0.1, 0.1, 0.1,
    ];
    let q = Rc::new(Mat::from_vec(3, 4, q_rows).unwrap());
    grad_check(&[x], move |g, v| {
        let p = g.row_normalize(v[0]);
        g.kl_div_const_q(p, &q).unwrap()
    });
}

#[test]
fn check_gaussian_kl() {
    let mu = rand_mat(3, 2, 21);
    let lv = rand_mat(3, 2, 22).scale(0.5);
    grad_check(&[mu, lv], |g, v| g.gaussian_kl(v[0], v[1]).unwrap());
}

#[test]
fn check_mse_const() {
    let x = rand_mat(3, 3, 23);
    let t = Rc::new(rand_mat(3, 3, 24));
    grad_check(&[x], move |g, v| g.mse_const(v[0], &t).unwrap());
}

#[test]
fn check_vgae_reparameterisation_path() {
    // z = μ + ε ∘ exp(0.5·lv); loss = mean(z²) + KL.
    let mu = rand_mat(3, 2, 25);
    let lv = rand_mat(3, 2, 26).scale(0.4);
    let eps = rand_mat(3, 2, 27);
    grad_check(&[mu, lv], move |g, v| {
        let e = g.constant(eps.clone());
        let half_lv = g.scale(v[1], 0.5);
        let std = g.exp(half_lv);
        let noise = g.hadamard(e, std).unwrap();
        let z = g.add(v[0], noise).unwrap();
        let zsq = g.hadamard(z, z).unwrap();
        let fit = g.mean(zsq);
        let kl = g.gaussian_kl(v[0], v[1]).unwrap();
        let kl_scaled = g.scale(kl, 0.01);
        g.add(fit, kl_scaled).unwrap()
    });
}

#[test]
fn check_two_layer_gcn_path() {
    // The full GAE encoder pattern: Ã·relu(Ã·X·W0)·W1 then decoder BCE.
    let w0 = rand_mat(3, 4, 28).scale(0.5);
    let w1 = rand_mat(4, 2, 29).scale(0.5);
    let x = rand_mat(5, 3, 30);
    let a = Rc::new(
        Csr::adjacency_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
            .unwrap()
            .gcn_normalized()
            .unwrap(),
    );
    let t = Rc::new(Csr::adjacency_from_edges(5, &[(0, 1), (2, 3)]).unwrap());
    grad_check(&[w0, w1], move |g, v| {
        let xv = g.constant(x.clone());
        let h = g.spmm(&a, xv).unwrap();
        let h = g.matmul(h, v[0]).unwrap();
        let h = g.relu(h);
        let h = g.spmm(&a, h).unwrap();
        let z = g.matmul(h, v[1]).unwrap();
        let s = g.gram(z);
        g.bce_logits_sparse(s, &t, 4.0, 1.0).unwrap()
    });
}

#[test]
fn check_student_t_dec_path() {
    // DEC clustering: P from Student-t kernel over (Z, μ), loss KL(Q‖P).
    let z = rand_mat(5, 2, 31);
    let mu = rand_mat(3, 2, 32);
    let q = {
        let raw = rand_mat(5, 3, 33).map(|v| v * v + 0.1);
        let mut q = raw.clone();
        for i in 0..5 {
            let s: f64 = q.row(i).iter().sum();
            for e in q.row_mut(i) {
                *e /= s;
            }
        }
        Rc::new(q)
    };
    grad_check(&[z, mu], move |g, v| {
        let d = g.pairwise_sq_dists(v[0], v[1]).unwrap();
        let num = g.recip_one_plus(d);
        let p = g.row_normalize(num);
        g.kl_div_const_q(p, &q).unwrap()
    });
}

#[test]
fn backward_can_run_twice_from_different_roots() {
    // Two losses on one tape: backward from each in turn; the second call
    // replaces (not accumulates into) the stored gradients.
    let mut g = Graph::new();
    let x = g.leaf(Mat::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
    let s1 = g.sum(x);
    let sq = g.hadamard(x, x).unwrap();
    let s2 = g.sum(sq);
    g.backward(s1).unwrap();
    assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 1.0]);
    g.backward(s2).unwrap();
    assert_eq!(g.grad(x).unwrap().as_slice(), &[2.0, 4.0]);
}

#[test]
fn scalar_edge_shapes() {
    // 1x1 everywhere: gram, sum, scale compose fine.
    let mut g = Graph::new();
    let x = g.leaf(Mat::full(1, 1, 3.0));
    let s = g.gram(x); // 3*3 = 9
    assert_eq!(g.scalar(s), 9.0);
    let l = g.scale(s, 0.5);
    g.backward(l).unwrap();
    assert_eq!(g.grad(x).unwrap().as_slice(), &[3.0]); // d(0.5 x²)/dx = x
}

#[test]
fn shape_errors_are_reported_not_panicked() {
    use rgae_autodiff::Error;
    let mut g = Graph::new();
    let a = g.leaf(Mat::zeros(2, 3));
    let b = g.leaf(Mat::zeros(2, 3));
    assert!(matches!(g.matmul(a, b), Err(Error::Shape(_))));
    let t = Rc::new(Csr::zeros(3, 3));
    assert!(g.bce_logits_sparse(a, &t, 1.0, 1.0).is_err());
    let q = Rc::new(Mat::zeros(3, 3));
    assert!(g.kl_div_const_q(a, &q).is_err());
}

#[test]
fn check_two_layer_gcn_path_with_three_threads() {
    // Re-run the heaviest finite-difference check with the parallel kernels
    // engaged (3 workers): the analytic/numeric agreement must be unaffected
    // by the thread count.
    rgae_par::with_threads(3, || {
        let w0 = rand_mat(3, 4, 28).scale(0.5);
        let w1 = rand_mat(4, 2, 29).scale(0.5);
        let x = rand_mat(5, 3, 30);
        let a = Rc::new(
            Csr::adjacency_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
                .unwrap()
                .gcn_normalized()
                .unwrap(),
        );
        let t = Rc::new(Csr::adjacency_from_edges(5, &[(0, 1), (2, 3)]).unwrap());
        grad_check(&[w0, w1], move |g, v| {
            let xv = g.constant(x.clone());
            let h = g.spmm(&a, xv).unwrap();
            let h = g.matmul(h, v[0]).unwrap();
            let h = g.relu(h);
            let h = g.spmm(&a, h).unwrap();
            let z = g.matmul(h, v[1]).unwrap();
            let s = g.gram(z);
            g.bce_logits_sparse(s, &t, 4.0, 1.0).unwrap()
        });
    });
}

#[test]
fn check_bce_through_gram_with_three_threads() {
    rgae_par::with_threads(3, || {
        let z = rand_mat(4, 2, 18);
        let t = Rc::new(Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap());
        grad_check(&[z], move |g, v| {
            let s = g.gram(v[0]);
            g.bce_logits_sparse(s, &t, 3.0, 1.2).unwrap()
        });
    });
}

#[test]
fn analytic_gradients_bitwise_stable_across_threads() {
    // The serial and 3-thread tapes must produce *identical bits*, not just
    // tolerance-level agreement: this is the determinism contract the
    // differential suite in `rgae-par` proves kernel by kernel, restated at
    // the level of a whole encoder/decoder backward pass.
    let run = || {
        let w0 = rand_mat(6, 4, 40).scale(0.5);
        let w1 = rand_mat(4, 3, 41).scale(0.5);
        let x = rand_mat(9, 6, 42);
        let a = Rc::new(
            Csr::adjacency_from_edges(
                9,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 8),
                    (8, 0),
                ],
            )
            .unwrap()
            .gcn_normalized()
            .unwrap(),
        );
        let t = Rc::new(Csr::adjacency_from_edges(9, &[(0, 1), (2, 3), (5, 7)]).unwrap());
        let mut g = Graph::new();
        let v0 = g.leaf(w0);
        let v1 = g.leaf(w1);
        let xv = g.constant(x);
        let h = g.spmm(&a, xv).unwrap();
        let h = g.matmul(h, v0).unwrap();
        let h = g.relu(h);
        let h = g.spmm(&a, h).unwrap();
        let z = g.matmul(h, v1).unwrap();
        let s = g.gram(z);
        let loss = g.bce_logits_sparse(s, &t, 4.0, 1.0).unwrap();
        g.backward(loss).unwrap();
        let bits = |m: &Mat| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        (
            g.scalar(loss).to_bits(),
            bits(g.grad(v0).unwrap()),
            bits(g.grad(v1).unwrap()),
        )
    };
    let serial = rgae_par::with_threads(1, run);
    for t in [2usize, 3, 8] {
        let threaded = rgae_par::with_threads(t, run);
        assert_eq!(threaded, serial, "threads={t}");
    }
}

#[test]
fn zero_rows_gather_gives_empty_but_valid() {
    let mut g = Graph::new();
    let x = g.leaf(Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap());
    let y = g.gather_rows(x, &[]).unwrap();
    assert_eq!(g.value(y).shape(), (0, 2));
    let s = g.sum(y);
    g.backward(s).unwrap();
    assert_eq!(g.grad(x).unwrap().as_slice(), &[0.0; 4]);
}

//! Tape-based reverse-mode automatic differentiation over dense matrices.
//!
//! This crate is the workspace's replacement for PyTorch autograd. A
//! [`Graph`] is a write-once tape: every operation appends a node holding its
//! dense value and enough information to back-propagate. The models in this
//! workspace rebuild the tape for every training step (define-by-run), which
//! keeps the API tiny and the lifetimes trivial.
//!
//! ```
//! use rgae_autodiff::Graph;
//! use rgae_linalg::Mat;
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Mat::from_vec(1, 2, vec![3.0, -1.0]).unwrap());
//! let y = g.hadamard(x, x).unwrap(); // y = x ∘ x
//! let loss = g.sum(y);
//! g.backward(loss).unwrap();
//! // d(Σ x²)/dx = 2x
//! assert_eq!(g.grad(x).unwrap().as_slice(), &[6.0, -2.0]);
//! ```
//!
//! Scalars are represented as `1×1` matrices; [`Graph::backward`] requires a
//! scalar root. Sparse matrices participate only as constants (graph filters
//! and self-supervision targets), which is exactly how GCN training uses
//! them.

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

mod graph;
mod optim;

pub use graph::{take_constant_reuse_count, Graph, Var};
pub use optim::{arm_grad_poison, disarm_grad_poison, Adam, AdamState};

/// Errors surfaced by tape construction or backward passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Underlying linear-algebra shape error.
    Shape(rgae_linalg::Error),
    /// `backward` called on a non-scalar node.
    NonScalarRoot {
        /// Shape of the offending root node.
        shape: (usize, usize),
    },
    /// Requested gradient of a node that does not track gradients or for
    /// which backward has not produced one.
    NoGradient,
    /// Operation-specific invariant violated (message describes it).
    Invalid(&'static str),
}

impl From<rgae_linalg::Error> for Error {
    fn from(e: rgae_linalg::Error) -> Self {
        Error::Shape(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Shape(e) => write!(f, "shape error: {e}"),
            Error::NonScalarRoot { shape } => {
                write!(f, "backward root must be 1x1, got {}x{}", shape.0, shape.1)
            }
            Error::NoGradient => write!(f, "no gradient recorded for this node"),
            Error::Invalid(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

//! The tape: nodes, forward ops, and the backward pass.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use rgae_linalg::{sigmoid, softplus, Csr, Mat};

use crate::{Error, Result};

/// Process-wide count of [`Graph::constant_shared`] calls — each one is a
/// dense-matrix deep copy the tape did *not* make. Drained into the run
/// log by the trainers (see `rgae-core`).
static CONSTANT_SHARED_REUSES: AtomicU64 = AtomicU64::new(0);

/// Drain the shared-constant reuse counter (allocations saved since the
/// last call).
pub fn take_constant_reuse_count() -> u64 {
    CONSTANT_SHARED_REUSES.swap(0, Ordering::Relaxed)
}

/// Handle to a node on the tape. Cheap to copy; only valid for the
/// [`Graph`] that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Everything backward needs to know about how a node was produced.
enum Op {
    /// Leaf that accumulates gradient (parameters).
    Leaf,
    /// Leaf that does not track gradient (data).
    Constant,
    /// `C = A · B`.
    MatMul(Var, Var),
    /// `S = Z · Zᵀ` (inner-product decoder logits).
    Gram(Var),
    /// `Y = S · X` with a constant sparse left factor.
    Spmm(Rc<Csr>, Var),
    /// `Y = A + B`.
    Add(Var, Var),
    /// `Y = A - B`.
    Sub(Var, Var),
    /// `Y = A ∘ B`.
    Hadamard(Var, Var),
    /// `Y = c · A`.
    Scale(Var, f64),
    /// `Y = A + 1·b` (row-broadcast bias, `b` is `1×c`).
    AddBias(Var, Var),
    /// `Y = relu(A)`.
    Relu(Var),
    /// `Y = σ(A)`.
    Sigmoid(Var),
    /// `Y = tanh(A)`.
    Tanh(Var),
    /// `Y = exp(A)`.
    Exp(Var),
    /// `Y = 1 / (1 + A)` — the Student-t kernel numerator.
    RecipOnePlus(Var),
    /// Rows rescaled to sum to one.
    RowNormalize(Var),
    /// `Y = X[idx, :]`.
    GatherRows(Var, Rc<Vec<usize>>),
    /// `D_ik = ‖z_i − μ_k‖²`.
    PairwiseSqDists(Var, Var),
    /// `L_ik = log N(z_i; μ_k, diag(exp(lv_k)))`.
    GaussLogPdf(Var, Var, Var),
    /// Scalar `Σ A`.
    Sum(Var),
    /// Scalar `mean(A)`.
    Mean(Var),
    /// Weighted binary cross-entropy with logits against a constant sparse
    /// binary target; scalar `norm · mean(...)`.
    BceLogitsSparse {
        logits: Var,
        target: Rc<Csr>,
        pos_weight: f64,
        norm: f64,
    },
    /// Fused `bce_logits_sparse(gram(z), …)`: the scalar loss node, with
    /// the latent gradient `dZ` (at unit upstream gradient) precomputed by
    /// the tiled forward pass — no N×N logits on the tape.
    GramBceFused {
        z: Var,
        /// `Σ_j (c_ij + c_ji) z_j` with the `norm/N²` scale folded in;
        /// `None` when `z` does not track gradient.
        dz_unit: Option<Rc<Mat>>,
    },
    /// Mean BCE with logits against a constant dense target in `[0,1]`.
    BceLogitsDense(Var, Rc<Mat>),
    /// Scalar `Σ q log(q / p)` with constant `q`.
    KlDivConstQ(Var, Rc<Mat>),
    /// Scalar `-½ Σ (1 + lv − μ² − e^{lv})` (KL to a standard normal).
    GaussianKl(Var, Var),
    /// Scalar `mean((X − T)²)` with constant target.
    MseConst(Var, Rc<Mat>),
}

struct Node {
    /// Node values are write-once, so they live behind an `Rc`: constants
    /// built from shared data ([`Graph::constant_shared`]) alias the
    /// caller's allocation instead of deep-copying it every step.
    value: Rc<Mat>,
    op: Op,
    /// Whether any ancestor is a gradient-tracking leaf.
    needs_grad: bool,
}

/// A write-once computation tape.
///
/// See the crate docs for the usage pattern. All binary ops validate shapes
/// and return [`Error::Shape`] on mismatch.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Mat>>,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    fn push(&mut self, value: impl Into<Rc<Mat>>, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value: value.into(),
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Mat {
        &self.nodes[v.0].value
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Scalar value of a `1×1` node.
    pub fn scalar(&self, v: Var) -> f64 {
        debug_assert_eq!(self.shape(v), (1, 1));
        self.nodes[v.0].value.as_slice()[0]
    }

    /// Gradient of a node after [`Graph::backward`].
    pub fn grad(&self, v: Var) -> Result<&Mat> {
        self.grads
            .get(v.0)
            .and_then(|g| g.as_ref())
            .ok_or(Error::NoGradient)
    }

    /// A gradient-tracking leaf (a parameter).
    pub fn leaf(&mut self, value: Mat) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// A non-tracking constant (data).
    pub fn constant(&mut self, value: Mat) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// A non-tracking constant that aliases an existing shared matrix —
    /// no deep copy. Use for per-step tapes over static data (features,
    /// targets) that would otherwise be cloned every epoch.
    pub fn constant_shared(&mut self, value: &Rc<Mat>) -> Var {
        CONSTANT_SHARED_REUSES.fetch_add(1, Ordering::Relaxed);
        self.push(Rc::clone(value), Op::Constant, false)
    }

    /// A `1×1` constant scalar.
    pub fn scalar_const(&mut self, v: f64) -> Var {
        self.constant(Mat::full(1, 1, v))
    }

    /// `A · B`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value)?;
        let ng = self.needs(a) || self.needs(b);
        Ok(self.push(v, Op::MatMul(a, b), ng))
    }

    /// `Z · Zᵀ`, the inner-product decoder logits.
    pub fn gram(&mut self, z: Var) -> Var {
        let v = self.nodes[z.0].value.gram();
        let ng = self.needs(z);
        self.push(v, Op::Gram(z), ng)
    }

    /// `S · X` with a constant sparse `S` (the graph filter Ã).
    pub fn spmm(&mut self, s: &Rc<Csr>, x: Var) -> Result<Var> {
        let v = s.spmm(&self.nodes[x.0].value)?;
        let ng = self.needs(x);
        Ok(self.push(v, Op::Spmm(Rc::clone(s), x), ng))
    }

    /// `A + B`.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value)?;
        let ng = self.needs(a) || self.needs(b);
        Ok(self.push(v, Op::Add(a, b), ng))
    }

    /// `A − B`.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value)?;
        let ng = self.needs(a) || self.needs(b);
        Ok(self.push(v, Op::Sub(a, b), ng))
    }

    /// `A ∘ B` (elementwise).
    pub fn hadamard(&mut self, a: Var, b: Var) -> Result<Var> {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value)?;
        let ng = self.needs(a) || self.needs(b);
        Ok(self.push(v, Op::Hadamard(a, b), ng))
    }

    /// `c · A`.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let v = self.nodes[a.0].value.scale(c);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, c), ng)
    }

    /// Row-broadcast bias add: `X + 1·b` where `b` is a `1×c` node.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Result<Var> {
        let bias = &self.nodes[b.0].value;
        if bias.rows() != 1 {
            return Err(Error::Invalid("add_bias: bias must be 1xC"));
        }
        let v = self.nodes[x.0].value.add_row_broadcast(bias.row(0))?;
        let ng = self.needs(x) || self.needs(b);
        Ok(self.push(v, Op::AddBias(x, b), ng))
    }

    /// `relu(A)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng)
    }

    /// `σ(A)` elementwise.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(sigmoid);
        let ng = self.needs(a);
        self.push(v, Op::Sigmoid(a), ng)
    }

    /// `tanh(A)` elementwise.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng)
    }

    /// `exp(A)` elementwise.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::exp);
        let ng = self.needs(a);
        self.push(v, Op::Exp(a), ng)
    }

    /// `1 / (1 + A)` elementwise (Student-t kernel numerator).
    pub fn recip_one_plus(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + x));
        let ng = self.needs(a);
        self.push(v, Op::RecipOnePlus(a), ng)
    }

    /// Rescale each row to sum to one.
    pub fn row_normalize(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let mut v = Mat::clone(x);
        for i in 0..v.rows() {
            let s: f64 = v.row(i).iter().sum();
            if s.abs() > f64::EPSILON {
                for e in v.row_mut(i) {
                    *e /= s;
                }
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::RowNormalize(a), ng)
    }

    /// Select rows (for Ω-restricted losses). Gradient scatters back.
    pub fn gather_rows(&mut self, x: Var, idx: &[usize]) -> Result<Var> {
        let src = &self.nodes[x.0].value;
        if idx.iter().any(|&i| i >= src.rows()) {
            return Err(Error::Invalid("gather_rows: index out of bounds"));
        }
        let v = src.select_rows(idx);
        let ng = self.needs(x);
        Ok(self.push(v, Op::GatherRows(x, Rc::new(idx.to_vec())), ng))
    }

    /// `D_ik = ‖z_i − μ_k‖²` → `(n, k)` matrix.
    pub fn pairwise_sq_dists(&mut self, z: Var, mu: Var) -> Result<Var> {
        let v = self.nodes[z.0]
            .value
            .pairwise_sq_dists(&self.nodes[mu.0].value)?;
        let ng = self.needs(z) || self.needs(mu);
        Ok(self.push(v, Op::PairwiseSqDists(z, mu), ng))
    }

    /// Per-component diagonal-Gaussian log-density:
    /// `L_ik = −½ Σ_d [log 2π + lv_kd + (z_id − μ_kd)² e^{−lv_kd}]`.
    pub fn gauss_log_pdf(&mut self, z: Var, mu: Var, log_var: Var) -> Result<Var> {
        let zv = &self.nodes[z.0].value;
        let mv = &self.nodes[mu.0].value;
        let lv = &self.nodes[log_var.0].value;
        if zv.cols() != mv.cols() || mv.shape() != lv.shape() {
            return Err(Error::Invalid("gauss_log_pdf: shape mismatch"));
        }
        let (n, k) = (zv.rows(), mv.rows());
        let d = zv.cols();
        let ln2pi = (2.0 * std::f64::consts::PI).ln();
        let mut out = Mat::zeros(n, k);
        for i in 0..n {
            let zi = zv.row(i);
            for kk in 0..k {
                let mk = mv.row(kk);
                let lvk = lv.row(kk);
                let mut acc = 0.0;
                for di in 0..d {
                    let diff = zi[di] - mk[di];
                    acc += ln2pi + lvk[di] + diff * diff * (-lvk[di]).exp();
                }
                out[(i, kk)] = -0.5 * acc;
            }
        }
        let ng = self.needs(z) || self.needs(mu) || self.needs(log_var);
        Ok(self.push(out, Op::GaussLogPdf(z, mu, log_var), ng))
    }

    /// Scalar sum of all entries.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Mat::full(1, 1, self.nodes[a.0].value.sum());
        let ng = self.needs(a);
        self.push(v, Op::Sum(a), ng)
    }

    /// Scalar mean of all entries.
    pub fn mean(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let denom = (x.rows() * x.cols()).max(1) as f64;
        let v = Mat::full(1, 1, x.sum() / denom);
        let ng = self.needs(a);
        self.push(v, Op::Mean(a), ng)
    }

    /// The GAE reconstruction loss: weighted binary cross-entropy with
    /// logits against a constant **sparse binary** target,
    /// `norm · mean[ pos_weight · t · softplus(−x) + (1 − t) · softplus(x) ]`.
    ///
    /// `pos_weight` re-balances the (rare) positive entries exactly like
    /// TensorFlow's `weighted_cross_entropy_with_logits`, and `norm` is the
    /// global rescaling the GAE reference implementation applies.
    pub fn bce_logits_sparse(
        &mut self,
        logits: Var,
        target: &Rc<Csr>,
        pos_weight: f64,
        norm: f64,
    ) -> Result<Var> {
        let x: &Mat = &self.nodes[logits.0].value;
        if x.shape() != (target.rows(), target.cols()) {
            return Err(Error::Invalid("bce_logits_sparse: shape mismatch"));
        }
        let (r, c) = x.shape();
        // Σ over all entries of softplus(x) (the t=0 branch), then correct
        // the positive entries. Row-parallel with an ordered reduction:
        // fixed-width row-chunk partials are folded in chunk order, so the
        // loss bits are independent of the thread count.
        let tgt: &Csr = target;
        let total = rgae_par::timed("bce_sparse_fwd", || {
            rgae_par::par_sum_by(r, |range| {
                let mut acc = 0.0;
                for i in range {
                    let row = x.row(i);
                    for &v in row {
                        acc += softplus(v);
                    }
                    for (j, t) in tgt.row_iter(i) {
                        let v = row[j];
                        // Replace softplus(v) with pos_weight·t·softplus(−v)
                        // plus (1−t)·softplus(v).
                        acc += pos_weight * t * softplus(-v) - t * softplus(v);
                    }
                }
                acc
            })
        });
        let denom = (r * c) as f64;
        let v = Mat::full(1, 1, norm * total / denom);
        let ng = self.needs(logits);
        Ok(self.push(
            v,
            Op::BceLogitsSparse {
                logits,
                target: Rc::clone(target),
                pos_weight,
                norm,
            },
            ng,
        ))
    }

    /// Fused [`Graph::gram`] + [`Graph::bce_logits_sparse`]: the GAE
    /// reconstruction loss computed directly from the embedding `z` by the
    /// tiled kernel in `rgae-linalg`, without materialising the N×N
    /// logits. Loss bits match the legacy two-node path exactly; the
    /// latent gradient is accumulated in the same pass (at unit upstream
    /// gradient — bit-identical to the legacy backward there too) and
    /// rescaled at backward time if the upstream gradient differs from 1.
    ///
    /// Peak decoder memory is O(B·N) for tile width B
    /// (`RGAE_DECODER_TILE` / [`rgae_linalg::set_decoder_tile`]); the
    /// legacy path stays available as the differential-test reference.
    pub fn gram_bce_logits_sparse(
        &mut self,
        z: Var,
        target: &Rc<Csr>,
        pos_weight: f64,
        norm: f64,
    ) -> Result<Var> {
        let zv = &self.nodes[z.0].value;
        let n = zv.rows();
        if (target.rows(), target.cols()) != (n, n) {
            return Err(Error::Invalid("gram_bce_logits_sparse: shape mismatch"));
        }
        let ng = self.needs(z);
        // The legacy backward scales by `g·norm/N²` with `g = 1` at the
        // loss root; `1.0·norm` is exactly `norm`, so folding `norm/N²` in
        // here keeps the gradient bits identical.
        let grad_scale = ng.then(|| norm / ((n * n) as f64));
        let out = rgae_linalg::gram_bce_fused(zv, target, pos_weight, norm, grad_scale)
            .map_err(|_| Error::Invalid("gram_bce_logits_sparse: kernel shape mismatch"))?;
        let v = Mat::full(1, 1, out.loss);
        Ok(self.push(
            v,
            Op::GramBceFused {
                z,
                dz_unit: out.dz.map(Rc::new),
            },
            ng,
        ))
    }

    /// Mean BCE with logits against a constant dense target in `[0, 1]`
    /// (used for discriminator losses).
    pub fn bce_logits_dense(&mut self, logits: Var, target: &Rc<Mat>) -> Result<Var> {
        let x = &self.nodes[logits.0].value;
        if x.shape() != target.shape() {
            return Err(Error::Invalid("bce_logits_dense: shape mismatch"));
        }
        // Ordered fixed-width reduction: bit-identical at any thread count.
        let (xs, ts) = (x.as_slice(), target.as_slice());
        let total = rgae_par::timed("bce_dense_fwd", || {
            rgae_par::par_sum_by(xs.len(), |range| {
                let mut acc = 0.0;
                for idx in range {
                    let (v, t) = (xs[idx], ts[idx]);
                    acc += t * softplus(-v) + (1.0 - t) * softplus(v);
                }
                acc
            })
        });
        let denom = (x.rows() * x.cols()) as f64;
        let v = Mat::full(1, 1, total / denom);
        let ng = self.needs(logits);
        Ok(self.push(v, Op::BceLogitsDense(logits, Rc::clone(target)), ng))
    }

    /// `Σ q log(q/p)` with a constant target distribution `q` (the DEC
    /// clustering loss). Entries with `q = 0` contribute zero.
    pub fn kl_div_const_q(&mut self, p: Var, q: &Rc<Mat>) -> Result<Var> {
        let pv = &self.nodes[p.0].value;
        if pv.shape() != q.shape() {
            return Err(Error::Invalid("kl_div_const_q: shape mismatch"));
        }
        let (ps, qs) = (pv.as_slice(), q.as_slice());
        let total = rgae_par::timed("kl_div_fwd", || {
            rgae_par::par_sum_by(ps.len(), |range| {
                let mut acc = 0.0;
                for idx in range {
                    let (pe, qe) = (ps[idx], qs[idx]);
                    if qe > 0.0 {
                        acc += qe * (qe / pe.max(1e-12)).ln();
                    }
                }
                acc
            })
        });
        let v = Mat::full(1, 1, total);
        let ng = self.needs(p);
        Ok(self.push(v, Op::KlDivConstQ(p, Rc::clone(q)), ng))
    }

    /// `KL(N(μ, diag(e^{lv})) ‖ N(0, I)) = −½ Σ (1 + lv − μ² − e^{lv})`,
    /// summed over all entries (the VGAE latent regulariser).
    pub fn gaussian_kl(&mut self, mu: Var, log_var: Var) -> Result<Var> {
        let m = &self.nodes[mu.0].value;
        let lv = &self.nodes[log_var.0].value;
        if m.shape() != lv.shape() {
            return Err(Error::Invalid("gaussian_kl: shape mismatch"));
        }
        let (ms, ls) = (m.as_slice(), lv.as_slice());
        let total = rgae_par::timed("gaussian_kl_fwd", || {
            rgae_par::par_sum_by(ms.len(), |range| {
                let mut acc = 0.0;
                for idx in range {
                    let (mu_e, lv_e) = (ms[idx], ls[idx]);
                    acc += 1.0 + lv_e - mu_e * mu_e - lv_e.exp();
                }
                acc
            })
        });
        let v = Mat::full(1, 1, -0.5 * total);
        let ng = self.needs(mu) || self.needs(log_var);
        Ok(self.push(v, Op::GaussianKl(mu, log_var), ng))
    }

    /// `mean((X − T)²)` with a constant target (denoising reconstruction).
    pub fn mse_const(&mut self, x: Var, target: &Rc<Mat>) -> Result<Var> {
        let xv = &self.nodes[x.0].value;
        if xv.shape() != target.shape() {
            return Err(Error::Invalid("mse_const: shape mismatch"));
        }
        let denom = (xv.rows() * xv.cols()) as f64;
        let (xs, ts) = (xv.as_slice(), target.as_slice());
        let total = rgae_par::timed("mse_fwd", || {
            rgae_par::par_sum_by(xs.len(), |range| {
                let mut acc = 0.0;
                for idx in range {
                    let (a, b) = (xs[idx], ts[idx]);
                    acc += (a - b) * (a - b);
                }
                acc
            })
        });
        let v = Mat::full(1, 1, total / denom);
        let ng = self.needs(x);
        Ok(self.push(v, Op::MseConst(x, Rc::clone(target)), ng))
    }

    /// Run reverse-mode accumulation from a scalar root.
    pub fn backward(&mut self, root: Var) -> Result<()> {
        let shape = self.shape(root);
        if shape != (1, 1) {
            return Err(Error::NonScalarRoot { shape });
        }
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[root.0] = Some(Mat::full(1, 1, 1.0));
        for id in (0..=root.0).rev() {
            if !self.nodes[id].needs_grad {
                continue;
            }
            let Some(g) = self.grads[id].take() else {
                continue;
            };
            self.backprop_node(id, &g)?;
            self.grads[id] = Some(g);
        }
        Ok(())
    }

    fn accum(&mut self, v: Var, delta: Mat) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(g) => g.axpy(1.0, &delta).expect("gradient shapes agree"),
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&mut self, id: usize, g: &Mat) -> Result<()> {
        // Clones of small values are fine; large values (N×N decoder grids)
        // are only read through references before the accumulate calls.
        match &self.nodes[id].op {
            Op::Leaf | Op::Constant => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                if self.needs(a) && self.needs(b) {
                    // The two input gradients are independent; fork-join them.
                    // Captures are narrowed to `&Mat` (Sync) so the closures
                    // are Send despite the tape's Rc-holding nodes.
                    let av: &Mat = &self.nodes[a.0].value;
                    let bv: &Mat = &self.nodes[b.0].value;
                    let (da, db) = rgae_par::par_join(|| g.matmul_t(bv), || av.t_matmul(g));
                    self.accum(a, da?);
                    self.accum(b, db?);
                } else if self.needs(a) {
                    let da = g.matmul_t(&self.nodes[b.0].value)?;
                    self.accum(a, da);
                } else if self.needs(b) {
                    let db = self.nodes[a.0].value.t_matmul(g)?;
                    self.accum(b, db);
                }
            }
            Op::Gram(z) => {
                let z = *z;
                if self.needs(z) {
                    // dZ = (G + Gᵀ) Z.
                    let gt = g.transpose();
                    let sym = g.add(&gt)?;
                    let dz = sym.matmul(&self.nodes[z.0].value)?;
                    self.accum(z, dz);
                }
            }
            Op::Spmm(s, x) => {
                let x = *x;
                if self.needs(x) {
                    let dx = s.t_spmm(g)?;
                    self.accum(x, dx);
                }
            }
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accum(a, g.clone());
                self.accum(b, g.clone());
            }
            Op::Sub(a, b) => {
                let (a, b) = (*a, *b);
                self.accum(a, g.clone());
                self.accum(b, g.scale(-1.0));
            }
            Op::Hadamard(a, b) => {
                let (a, b) = (*a, *b);
                if self.needs(a) {
                    let da = g.hadamard(&self.nodes[b.0].value)?;
                    self.accum(a, da);
                }
                if self.needs(b) {
                    let db = g.hadamard(&self.nodes[a.0].value)?;
                    self.accum(b, db);
                }
            }
            Op::Scale(a, c) => {
                let (a, c) = (*a, *c);
                self.accum(a, g.scale(c));
            }
            Op::AddBias(x, b) => {
                let (x, b) = (*x, *b);
                self.accum(x, g.clone());
                if self.needs(b) {
                    let sums = g.col_sums();
                    let db = Mat::from_vec(1, sums.len(), sums).expect("sized");
                    self.accum(b, db);
                }
            }
            Op::Relu(a) => {
                let a = *a;
                let mask = self.nodes[a.0]
                    .value
                    .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                self.accum(a, g.hadamard(&mask)?);
            }
            Op::Sigmoid(a) => {
                let a = *a;
                let y = &self.nodes[id].value;
                let dy = y.map(|s| s * (1.0 - s));
                self.accum(a, g.hadamard(&dy)?);
            }
            Op::Tanh(a) => {
                let a = *a;
                let y = &self.nodes[id].value;
                let dy = y.map(|t| 1.0 - t * t);
                self.accum(a, g.hadamard(&dy)?);
            }
            Op::Exp(a) => {
                let a = *a;
                let y = self.nodes[id].value.clone();
                self.accum(a, g.hadamard(&y)?);
            }
            Op::RecipOnePlus(a) => {
                let a = *a;
                let y = &self.nodes[id].value;
                let dy = y.map(|v| -v * v);
                self.accum(a, g.hadamard(&dy)?);
            }
            Op::RowNormalize(a) => {
                let a = *a;
                if self.needs(a) {
                    let x = &self.nodes[a.0].value;
                    let y = &self.nodes[id].value;
                    let mut dx = Mat::zeros(x.rows(), x.cols());
                    for i in 0..x.rows() {
                        let s: f64 = x.row(i).iter().sum();
                        if s.abs() <= f64::EPSILON {
                            continue;
                        }
                        let gy: f64 = g
                            .row(i)
                            .iter()
                            .zip(y.row(i).iter())
                            .map(|(&gg, &yy)| gg * yy)
                            .sum();
                        for (d, &gg) in dx.row_mut(i).iter_mut().zip(g.row(i).iter()) {
                            *d = (gg - gy) / s;
                        }
                    }
                    self.accum(a, dx);
                }
            }
            Op::GatherRows(x, idx) => {
                let x = *x;
                if self.needs(x) {
                    let src = self.shape(x);
                    let mut dx = Mat::zeros(src.0, src.1);
                    for (k, &i) in idx.iter().enumerate() {
                        for (d, &gg) in dx.row_mut(i).iter_mut().zip(g.row(k).iter()) {
                            *d += gg;
                        }
                    }
                    self.accum(x, dx);
                }
            }
            Op::PairwiseSqDists(z, mu) => {
                let (z, mu) = (*z, *mu);
                let zv = &self.nodes[z.0].value;
                let mv = &self.nodes[mu.0].value;
                let (n, k) = g.shape();
                let d = zv.cols();
                let mut dz = Mat::zeros(n, d);
                let mut dm = Mat::zeros(k, d);
                for i in 0..n {
                    for kk in 0..k {
                        let gg = g[(i, kk)];
                        if gg == 0.0 {
                            continue;
                        }
                        for di in 0..d {
                            let delta = gg * 2.0 * (zv[(i, di)] - mv[(kk, di)]);
                            dz[(i, di)] += delta;
                            dm[(kk, di)] -= delta;
                        }
                    }
                }
                if self.needs(z) {
                    self.accum(z, dz);
                }
                if self.needs(mu) {
                    self.accum(mu, dm);
                }
            }
            Op::GaussLogPdf(z, mu, lv) => {
                let (z, mu, lv) = (*z, *mu, *lv);
                let zv = &self.nodes[z.0].value;
                let mv = &self.nodes[mu.0].value;
                let lvv = &self.nodes[lv.0].value;
                let (n, k) = g.shape();
                let d = zv.cols();
                let mut dz = Mat::zeros(n, d);
                let mut dm = Mat::zeros(k, d);
                let mut dl = Mat::zeros(k, d);
                for i in 0..n {
                    for kk in 0..k {
                        let gg = g[(i, kk)];
                        if gg == 0.0 {
                            continue;
                        }
                        for di in 0..d {
                            let inv_var = (-lvv[(kk, di)]).exp();
                            let diff = zv[(i, di)] - mv[(kk, di)];
                            dz[(i, di)] += gg * (-diff * inv_var);
                            dm[(kk, di)] += gg * (diff * inv_var);
                            dl[(kk, di)] += gg * (-0.5) * (1.0 - diff * diff * inv_var);
                        }
                    }
                }
                if self.needs(z) {
                    self.accum(z, dz);
                }
                if self.needs(mu) {
                    self.accum(mu, dm);
                }
                if self.needs(lv) {
                    self.accum(lv, dl);
                }
            }
            Op::Sum(a) => {
                let a = *a;
                let (r, c) = self.shape(a);
                let gs = g.as_slice()[0];
                self.accum(a, Mat::full(r, c, gs));
            }
            Op::Mean(a) => {
                let a = *a;
                let (r, c) = self.shape(a);
                let gs = g.as_slice()[0] / ((r * c).max(1) as f64);
                self.accum(a, Mat::full(r, c, gs));
            }
            Op::BceLogitsSparse {
                logits,
                target,
                pos_weight,
                norm,
            } => {
                let logits = *logits;
                let (pos_weight, norm) = (*pos_weight, *norm);
                let target = Rc::clone(target);
                if self.needs(logits) {
                    let x = &self.nodes[logits.0].value;
                    let (r, c) = x.shape();
                    let gs = g.as_slice()[0] * norm / ((r * c) as f64);
                    let dx = rgae_par::timed("bce_sparse_bwd", || {
                        // t = 0 branch everywhere: d softplus(x) = σ(x);
                        // the dense map runs on the pool.
                        let mut dx = x.map(|v| gs * sigmoid(v));
                        // Correct the positive entries:
                        // d[pw·t·softplus(−x) + (1−t)·softplus(x)]
                        //   = pw·t·(σ(x) − 1) + (1 − t)·σ(x).
                        for i in 0..r {
                            for (j, t) in target.row_iter(i) {
                                let v = x[(i, j)];
                                let s = sigmoid(v);
                                dx[(i, j)] = gs * (pos_weight * t * (s - 1.0) + (1.0 - t) * s);
                            }
                        }
                        dx
                    });
                    self.accum(logits, dx);
                }
            }
            Op::GramBceFused { z, dz_unit } => {
                let (z, dz_unit) = (*z, dz_unit.clone());
                if self.needs(z) {
                    let du = dz_unit.ok_or(Error::NoGradient)?;
                    let gs = g.as_slice()[0];
                    // The forward pass baked in the unit upstream gradient;
                    // gs == 1.0 keeps those exact bits (the training loss
                    // roots and `recon_grad` land here).
                    let dz = if gs == 1.0 {
                        Mat::clone(&du)
                    } else {
                        du.scale(gs)
                    };
                    self.accum(z, dz);
                }
            }
            Op::BceLogitsDense(logits, target) => {
                let logits = *logits;
                let target = Rc::clone(target);
                if self.needs(logits) {
                    let x = &self.nodes[logits.0].value;
                    let (r, c) = x.shape();
                    let gs = g.as_slice()[0] / ((r * c) as f64);
                    let dx = x.zip_map(&target, |v, t| gs * (sigmoid(v) - t))?;
                    self.accum(logits, dx);
                }
            }
            Op::KlDivConstQ(p, q) => {
                let p = *p;
                let q = Rc::clone(q);
                if self.needs(p) {
                    let pv = &self.nodes[p.0].value;
                    let gs = g.as_slice()[0];
                    let dp = pv.zip_map(&q, |pe, qe| {
                        if qe > 0.0 {
                            -gs * qe / pe.max(1e-12)
                        } else {
                            0.0
                        }
                    })?;
                    self.accum(p, dp);
                }
            }
            Op::GaussianKl(mu, lv) => {
                let (mu, lv) = (*mu, *lv);
                let gs = g.as_slice()[0];
                if self.needs(mu) {
                    let dm = self.nodes[mu.0].value.map(|m| gs * m);
                    self.accum(mu, dm);
                }
                if self.needs(lv) {
                    let dl = self.nodes[lv.0].value.map(|l| gs * 0.5 * (l.exp() - 1.0));
                    self.accum(lv, dl);
                }
            }
            Op::MseConst(x, target) => {
                let x = *x;
                let target = Rc::clone(target);
                if self.needs(x) {
                    let xv = &self.nodes[x.0].value;
                    let denom = (xv.rows() * xv.cols()) as f64;
                    let gs = g.as_slice()[0];
                    let dx = xv.zip_map(&target, |a, b| gs * 2.0 * (a - b) / denom)?;
                    self.accum(x, dx);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(r: usize, c: usize, v: &[f64]) -> Mat {
        Mat::from_vec(r, c, v.to_vec()).unwrap()
    }

    #[test]
    fn leaf_and_constant_values() {
        let mut g = Graph::new();
        let a = g.leaf(m(1, 2, &[1.0, 2.0]));
        let b = g.constant(m(1, 2, &[3.0, 4.0]));
        assert_eq!(g.value(a).as_slice(), &[1.0, 2.0]);
        assert_eq!(g.value(b).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let a = g.leaf(m(1, 2, &[1.0, 2.0]));
        assert!(matches!(
            g.backward(a),
            Err(Error::NonScalarRoot { shape: (1, 2) })
        ));
    }

    #[test]
    fn grad_of_sum_is_ones() {
        let mut g = Graph::new();
        let a = g.leaf(m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let s = g.sum(a);
        g.backward(s).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[1.0; 4]);
    }

    #[test]
    fn grad_of_mean_is_inverse_count() {
        let mut g = Graph::new();
        let a = g.leaf(m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let s = g.mean(a);
        g.backward(s).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.25; 4]);
    }

    #[test]
    fn constant_gets_no_grad() {
        let mut g = Graph::new();
        let a = g.constant(m(1, 1, &[5.0]));
        let b = g.leaf(m(1, 1, &[2.0]));
        let p = g.hadamard(a, b).unwrap();
        let s = g.sum(p);
        g.backward(s).unwrap();
        assert!(g.grad(a).is_err());
        assert_eq!(g.grad(b).unwrap().as_slice(), &[5.0]);
    }

    #[test]
    fn matmul_grads_match_known() {
        // f = sum(A·B); dA = 1·Bᵀ rows, dB = Aᵀ·1.
        let mut g = Graph::new();
        let a = g.leaf(m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(m(2, 2, &[5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b).unwrap();
        let s = g.sum(c);
        g.backward(s).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn gather_rows_scatters_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = g.gather_rows(x, &[2, 2, 0]).unwrap();
        let s = g.sum(y);
        g.backward(s).unwrap();
        assert_eq!(
            g.grad(x).unwrap().as_slice(),
            &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    fn gather_rows_rejects_oob() {
        let mut g = Graph::new();
        let x = g.leaf(m(2, 1, &[1.0, 2.0]));
        assert!(g.gather_rows(x, &[2]).is_err());
    }

    #[test]
    fn relu_kills_negative_grad() {
        let mut g = Graph::new();
        let x = g.leaf(m(1, 3, &[-1.0, 0.0, 2.0]));
        let y = g.relu(x);
        let s = g.sum(y);
        g.backward(s).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // f = sum(x + x) → grad 2.
        let mut g = Graph::new();
        let x = g.leaf(m(1, 1, &[3.0]));
        let y = g.add(x, x).unwrap();
        let s = g.sum(y);
        g.backward(s).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn row_normalize_forward_is_distribution() {
        let mut g = Graph::new();
        let x = g.leaf(m(2, 2, &[1.0, 3.0, 2.0, 2.0]));
        let y = g.row_normalize(x);
        assert_eq!(g.value(y).as_slice(), &[0.25, 0.75, 0.5, 0.5]);
    }

    #[test]
    fn bce_sparse_value_matches_naive() {
        let mut g = Graph::new();
        let x = g.leaf(m(2, 2, &[0.5, -1.0, 2.0, 0.0]));
        let t = Rc::new(Csr::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap());
        let loss = g.bce_logits_sparse(x, &t, 3.0, 0.7).unwrap();
        // Naive: mean over 4 entries of pw·t·sp(−x) + (1−t)·sp(x), × norm.
        let sp = softplus;
        let expect = 0.7 * (3.0 * sp(-0.5) + sp(-1.0) + sp(2.0) + 3.0 * sp(0.0)) / 4.0;
        assert!((g.scalar(loss) - expect).abs() < 1e-12);
    }

    #[test]
    fn gaussian_kl_zero_at_standard_normal() {
        let mut g = Graph::new();
        let mu = g.leaf(Mat::zeros(3, 2));
        let lv = g.leaf(Mat::zeros(3, 2));
        let kl = g.gaussian_kl(mu, lv).unwrap();
        assert!(g.scalar(kl).abs() < 1e-12);
        g.backward(kl).unwrap();
        assert!(g.grad(mu).unwrap().frob_norm() < 1e-12);
        assert!(g.grad(lv).unwrap().frob_norm() < 1e-12);
    }

    #[test]
    fn kl_div_zero_when_p_equals_q() {
        let mut g = Graph::new();
        let q = Rc::new(m(1, 2, &[0.3, 0.7]));
        let p = g.leaf(m(1, 2, &[0.3, 0.7]));
        let kl = g.kl_div_const_q(p, &q).unwrap();
        assert!(g.scalar(kl).abs() < 1e-12);
    }

    #[test]
    fn gram_matches_matmul_transpose_path() {
        let mut g = Graph::new();
        let z = g.leaf(m(3, 2, &[1.0, 0.5, -1.0, 2.0, 0.0, 1.0]));
        let s = g.gram(z);
        let expect = g.value(z).matmul(&g.value(z).transpose()).unwrap();
        assert!(g.value(s).max_abs_diff(&expect) < 1e-12);
    }
}

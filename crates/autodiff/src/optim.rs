//! The Adam optimiser.

use rgae_linalg::Mat;
use std::cell::Cell;

thread_local! {
    /// Deterministic fault-injection hook: while armed, every
    /// [`Adam::update`] treats its gradient as non-finite.
    static GRAD_POISON: Cell<bool> = const { Cell::new(false) };
}

/// Arm the gradient-poison fault hook for the current thread: until
/// [`disarm_grad_poison`], every [`Adam::update`] skips its parameter update
/// and counts it as a non-finite-gradient step — exactly the code path a real
/// NaN gradient would take, without having to manufacture one numerically.
pub fn arm_grad_poison() {
    GRAD_POISON.with(|c| c.set(true));
}

/// Disarm the hook armed by [`arm_grad_poison`].
pub fn disarm_grad_poison() {
    GRAD_POISON.with(|c| c.set(false));
}

fn grad_poison_armed() -> bool {
    GRAD_POISON.with(|c| c.get())
}

/// The persistable part of an [`Adam`] optimiser: the shared timestep and
/// the first/second moment buffer per registered slot. Hyper-parameters
/// (lr, betas, …) are reconstructed from config, not checkpointed.
#[derive(Clone, Debug, PartialEq)]
pub struct AdamState {
    /// Shared timestep `t` (number of `begin_step` calls so far).
    pub t: u64,
    /// First-moment estimate per slot, in registration order.
    pub m: Vec<Mat>,
    /// Second-moment estimate per slot, in registration order.
    pub v: Vec<Mat>,
}

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay.
///
/// State is indexed by parameter slot: callers register each parameter once
/// (in a fixed order) and then pass `(slot, param, grad)` on every step. The
/// GAE reference implementations all train with Adam at `lr = 0.01`, which is
/// the default here.
#[derive(Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: Vec<Mat>,
    v: Vec<Mat>,
    /// Updates skipped because the gradient contained a non-finite value.
    /// Observability-only: deliberately not part of [`AdamState`], so
    /// checkpoint formats are unchanged and restored runs restart the count.
    nonfinite_skips: u64,
}

impl Adam {
    /// Adam with the paper's default learning rate (0.01) and standard betas.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            nonfinite_skips: 0,
        }
    }

    /// Number of [`Adam::update`] calls skipped because their gradient was
    /// non-finite (or the fault-injection hook was armed). Monotone over the
    /// optimiser's lifetime; not persisted in [`AdamState`].
    pub fn nonfinite_grad_steps(&self) -> u64 {
        self.nonfinite_skips
    }

    /// Builder: decoupled weight decay (AdamW style).
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Override the learning rate (e.g. between pretraining and clustering).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Register a parameter slot; returns its index. Must be called once per
    /// parameter before the first [`Adam::begin_step`].
    pub fn register(&mut self, shape: (usize, usize)) -> usize {
        self.m.push(Mat::zeros(shape.0, shape.1));
        self.v.push(Mat::zeros(shape.0, shape.1));
        self.m.len() - 1
    }

    /// Number of registered slots.
    pub fn num_slots(&self) -> usize {
        self.m.len()
    }

    /// Advance the shared timestep. Call once per optimisation step, before
    /// the per-parameter [`Adam::update`] calls of that step.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Snapshot the mutable optimiser state (timestep + moment buffers).
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a snapshot taken by [`Adam::export_state`]. The receiving
    /// optimiser must already have the same slots registered (same count and
    /// shapes) — state files from a different architecture are rejected.
    pub fn import_state(&mut self, st: &AdamState) -> std::result::Result<(), &'static str> {
        if st.m.len() != self.m.len() || st.v.len() != self.v.len() {
            return Err("adam state slot count mismatch");
        }
        for (cur, new) in self.m.iter().zip(&st.m) {
            if cur.shape() != new.shape() {
                return Err("adam state slot shape mismatch");
            }
        }
        for (cur, new) in self.v.iter().zip(&st.v) {
            if cur.shape() != new.shape() {
                return Err("adam state slot shape mismatch");
            }
        }
        self.t = st.t;
        self.m = st.m.clone();
        self.v = st.v.clone();
        Ok(())
    }

    /// Apply one Adam update to `param` for registered `slot` given `grad`.
    ///
    /// A gradient containing any non-finite value skips the update entirely
    /// — the parameter and both moment buffers are left untouched, so one
    /// poisoned backward pass can never write NaN into the optimiser state —
    /// and increments [`Adam::nonfinite_grad_steps`].
    pub fn update(&mut self, slot: usize, param: &mut Mat, grad: &Mat) {
        assert!(self.t > 0, "call begin_step() before update()");
        assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
        assert_eq!(param.shape(), self.m[slot].shape(), "slot shape mismatch");
        if grad_poison_armed() || grad.as_slice().iter().any(|g| !g.is_finite()) {
            self.nonfinite_skips += 1;
            return;
        }
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let m = self.m[slot].as_mut_slice();
        let v = self.v[slot].as_mut_slice();
        let p = param.as_mut_slice();
        for ((pi, mi), (vi, &gi)) in p
            .iter_mut()
            .zip(m.iter_mut())
            .zip(v.iter_mut().zip(grad.as_slice()))
        {
            *mi = b1 * *mi + (1.0 - b1) * gi;
            *vi = b2 * *vi + (1.0 - b2) * gi * gi;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *pi -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *pi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam should drive a convex quadratic to its minimum.
    #[test]
    fn minimises_quadratic() {
        let mut adam = Adam::new(0.1);
        let slot = adam.register((1, 2));
        let mut p = Mat::from_vec(1, 2, vec![5.0, -3.0]).unwrap();
        for _ in 0..500 {
            // f(p) = ||p - (1, 2)||²; grad = 2(p - target).
            let grad = Mat::from_vec(1, 2, vec![2.0 * (p[(0, 0)] - 1.0), 2.0 * (p[(0, 1)] - 2.0)])
                .unwrap();
            adam.begin_step();
            adam.update(slot, &mut p, &grad);
        }
        assert!((p[(0, 0)] - 1.0).abs() < 1e-3, "{p:?}");
        assert!((p[(0, 1)] - 2.0).abs() < 1e-3, "{p:?}");
    }

    /// First step size is bounded by lr regardless of gradient magnitude.
    #[test]
    fn first_step_is_lr_sized() {
        let mut adam = Adam::new(0.01);
        let slot = adam.register((1, 1));
        let mut p = Mat::full(1, 1, 0.0);
        let grad = Mat::full(1, 1, 1e6);
        adam.begin_step();
        adam.update(slot, &mut p, &grad);
        assert!((p[(0, 0)].abs() - 0.01).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut adam = Adam::new(0.0).with_weight_decay(0.1);
        let slot = adam.register((1, 1));
        let mut p = Mat::full(1, 1, 1.0);
        let grad = Mat::full(1, 1, 0.0);
        adam.begin_step();
        adam.update(slot, &mut p, &grad);
        // lr = 0 → decay also scaled by lr → no change.
        assert_eq!(p[(0, 0)], 1.0);

        let mut adam = Adam::new(0.1).with_weight_decay(0.5);
        let slot = adam.register((1, 1));
        let mut p = Mat::full(1, 1, 1.0);
        adam.begin_step();
        adam.update(slot, &mut p, &grad);
        assert!(p[(0, 0)] < 1.0);
    }

    #[test]
    fn nonfinite_grad_skips_update_and_counts() {
        let mut adam = Adam::new(0.1);
        let slot = adam.register((1, 2));
        let mut p = Mat::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        adam.begin_step();
        adam.update(
            slot,
            &mut p,
            &Mat::from_vec(1, 2, vec![f64::NAN, 1.0]).unwrap(),
        );
        assert_eq!(p.as_slice(), &[1.0, 2.0], "param untouched");
        assert_eq!(adam.nonfinite_grad_steps(), 1);
        let st = adam.export_state();
        assert!(
            st.m[0].as_slice().iter().all(|&x| x == 0.0),
            "moments untouched"
        );
        assert!(st.v[0].as_slice().iter().all(|&x| x == 0.0));

        // A later finite gradient updates normally, from clean moments.
        adam.begin_step();
        adam.update(slot, &mut p, &Mat::from_vec(1, 2, vec![1.0, -1.0]).unwrap());
        assert!(p[(0, 0)] < 1.0 && p[(0, 1)] > 2.0);
        assert!(p.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(adam.nonfinite_grad_steps(), 1, "finite steps don't count");

        adam.begin_step();
        adam.update(slot, &mut p, &Mat::full(1, 2, f64::INFINITY));
        assert_eq!(adam.nonfinite_grad_steps(), 2);
    }

    #[test]
    fn grad_poison_hook_forces_the_skip_path() {
        let mut adam = Adam::new(0.1);
        let slot = adam.register((1, 1));
        let mut p = Mat::full(1, 1, 3.0);
        let finite_grad = Mat::full(1, 1, 1.0);
        arm_grad_poison();
        adam.begin_step();
        adam.update(slot, &mut p, &finite_grad);
        disarm_grad_poison();
        assert_eq!(p[(0, 0)], 3.0, "poisoned step must not move params");
        assert_eq!(adam.nonfinite_grad_steps(), 1);

        adam.begin_step();
        adam.update(slot, &mut p, &finite_grad);
        assert!(p[(0, 0)] < 3.0, "disarmed optimiser works again");
    }

    #[test]
    fn slots_are_independent() {
        let mut adam = Adam::new(0.1);
        let s0 = adam.register((1, 1));
        let s1 = adam.register((1, 1));
        let mut p0 = Mat::full(1, 1, 0.0);
        let mut p1 = Mat::full(1, 1, 0.0);
        adam.begin_step();
        adam.update(s0, &mut p0, &Mat::full(1, 1, 1.0));
        adam.update(s1, &mut p1, &Mat::full(1, 1, -1.0));
        assert!(p0[(0, 0)] < 0.0);
        assert!(p1[(0, 0)] > 0.0);
    }
}

//! Terminal plots: quick previews of the figure series.

/// Render a labelled 2-D scatter as ASCII (labels drawn as digits/letters).
pub fn ascii_scatter(
    points: &[(f64, f64)],
    labels: &[usize],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(points.len(), labels.len());
    let width = width.max(8);
    let height = height.max(4);
    if points.is_empty() {
        return String::from("(empty scatter)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    let xr = (xmax - xmin).max(1e-12);
    let yr = (ymax - ymin).max(1e-12);
    let glyphs: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut grid = vec![vec![b' '; width]; height];
    for (&(x, y), &l) in points.iter().zip(labels) {
        let cx = (((x - xmin) / xr) * (width - 1) as f64).round() as usize;
        let cy = (((y - ymin) / yr) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = glyphs[l % glyphs.len()];
    }
    let mut out = String::with_capacity(height * (width + 3));
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('|');
        out.push('\n');
    }
    out
}

/// Render one or more named series as an ASCII line chart sharing the x
/// axis (indices) and y range.
pub fn ascii_lines(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(5);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut max_len = 0;
    for (_, ys) in series {
        max_len = max_len.max(ys.len());
        for &y in *ys {
            if y.is_finite() {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
    }
    if max_len == 0 || !lo.is_finite() {
        return String::from("(empty chart)\n");
    }
    let range = (hi - lo).max(1e-12);
    let glyphs: &[u8] = b"*+x o#@%&";
    let mut grid = vec![vec![b' '; width]; height];
    for (s, (_, ys)) in series.iter().enumerate() {
        let glyph = glyphs[s % glyphs.len()];
        for (i, &y) in ys.iter().enumerate() {
            if !y.is_finite() {
                continue;
            }
            let cx = if max_len == 1 {
                0
            } else {
                (i as f64 / (max_len - 1) as f64 * (width - 1) as f64).round() as usize
            };
            let cy = (((y - lo) / range) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{hi:>10.3} ┐\n"));
    for row in grid {
        out.push_str("           |");
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!("{lo:>10.3} ┘"));
    let mut legend = String::new();
    for (s, (name, _)) in series.iter().enumerate() {
        legend.push_str(&format!("  {}={}", glyphs[s % glyphs.len()] as char, name));
    }
    out.push_str(&legend);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_places_glyphs() {
        let pts = [(0.0, 0.0), (1.0, 1.0), (0.5, 0.5)];
        let s = ascii_scatter(&pts, &[0, 1, 2], 20, 10);
        assert!(s.contains('0'));
        assert!(s.contains('1'));
        assert!(s.contains('2'));
        assert_eq!(s.lines().count(), 10);
    }

    #[test]
    fn scatter_handles_empty() {
        let s = ascii_scatter(&[], &[], 20, 10);
        assert!(s.contains("empty"));
    }

    #[test]
    fn scatter_handles_degenerate_range() {
        let pts = [(1.0, 1.0), (1.0, 1.0)];
        let s = ascii_scatter(&pts, &[0, 0], 10, 5);
        assert!(s.contains('0'));
    }

    #[test]
    fn lines_renders_legend_and_bounds() {
        let a = [0.0, 0.5, 1.0];
        let b = [1.0, 0.5, 0.0];
        let s = ascii_lines(&[("up", &a), ("down", &b)], 30, 8);
        assert!(s.contains("up"));
        assert!(s.contains("down"));
        assert!(s.contains("1.000"));
        assert!(s.contains("0.000"));
    }

    #[test]
    fn lines_skips_nan() {
        let a = [0.0, f64::NAN, 1.0];
        let s = ascii_lines(&[("a", &a)], 20, 6);
        assert!(s.contains('*'));
    }

    #[test]
    fn lines_handles_empty() {
        let s = ascii_lines(&[("a", &[])], 20, 6);
        assert!(s.contains("empty"));
    }
}

//! Figure tooling: exact t-SNE and PCA projections, terminal (ASCII)
//! scatter/line plots, and CSV series writers.
//!
//! The paper's figures are 2-D t-SNE panels (Fig. 10) and training curves
//! (Figs. 5–9, 11–13). This crate regenerates them as CSV series (for
//! external plotting) plus quick ASCII previews printed by the experiment
//! binaries.

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

mod ascii;
mod csv;
mod pca;
mod tsne;

pub use ascii::{ascii_lines, ascii_scatter};
pub use csv::CsvWriter;
pub use pca::pca_2d;
pub use tsne::{tsne, TsneConfig};

/// Errors from figure generation.
#[derive(Debug)]
pub enum Error {
    /// Input shape problem.
    Invalid(&'static str),
    /// Filesystem error while writing CSV.
    Io(std::io::Error),
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Invalid(m) => write!(f, "invalid input: {m}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

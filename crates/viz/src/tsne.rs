//! Exact (O(N²)) t-SNE, following van der Maaten & Hinton (2008).
//!
//! The embeddings visualised in the paper are a few thousand points at
//! most, so the exact algorithm with early exaggeration and momentum is
//! both faithful and fast enough.

use rgae_linalg::{Mat, Rng64};

use crate::{Error, Result};

/// t-SNE hyper-parameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Iterations with early exaggeration (P scaled by 12).
    pub exaggeration_iters: usize,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            iterations: 300,
            learning_rate: 100.0,
            exaggeration_iters: 80,
        }
    }
}

/// Binary-search the Gaussian bandwidth for one row to match `perplexity`.
fn row_affinities(d2: &[f64], i: usize, perplexity: f64, out: &mut [f64]) {
    let target_h = perplexity.ln();
    let mut beta = 1.0;
    let mut beta_min = f64::NEG_INFINITY;
    let mut beta_max = f64::INFINITY;
    for _ in 0..50 {
        let mut sum = 0.0;
        let mut sum_dp = 0.0;
        for (j, &d) in d2.iter().enumerate() {
            if j == i {
                out[j] = 0.0;
                continue;
            }
            let p = (-beta * d).exp();
            out[j] = p;
            sum += p;
            sum_dp += d * p;
        }
        if sum <= 0.0 {
            break;
        }
        // Shannon entropy of the conditional distribution.
        let h = sum.ln() + beta * sum_dp / sum;
        let diff = h - target_h;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_min = beta;
            beta = if beta_max.is_finite() {
                (beta + beta_max) / 2.0
            } else {
                beta * 2.0
            };
        } else {
            beta_max = beta;
            beta = if beta_min.is_finite() {
                (beta + beta_min) / 2.0
            } else {
                beta / 2.0
            };
        }
    }
    let sum: f64 = out.iter().sum();
    if sum > 0.0 {
        for p in out.iter_mut() {
            *p /= sum;
        }
    }
}

/// Project `x` (N×d) to 2-D with t-SNE.
pub fn tsne(x: &Mat, cfg: &TsneConfig, rng: &mut Rng64) -> Result<Mat> {
    let n = x.rows();
    if n < 4 {
        return Err(Error::Invalid("tsne: need at least 4 points"));
    }
    if cfg.perplexity <= 1.0 {
        return Err(Error::Invalid("tsne: perplexity must exceed 1"));
    }
    // Symmetrised affinities P.
    let d2 = x.pairwise_sq_dists(x).expect("self distances");
    let mut p = Mat::zeros(n, n);
    let mut row = vec![0.0; n];
    let perp = cfg.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0);
    for i in 0..n {
        row_affinities(d2.row(i), i, perp, &mut row);
        for j in 0..n {
            p[(i, j)] = row[j];
        }
    }
    // P = (P + Pᵀ) / 2N, floored for numerical stability.
    let pt = p.transpose();
    let mut pj = p.add(&pt).expect("same shape").scale(0.5 / n as f64);
    for v in pj.as_mut_slice() {
        *v = v.max(1e-12);
    }

    // Gradient descent with momentum.
    let mut y = rgae_linalg::standard_normal(n, 2, rng).scale(1e-2);
    let mut vel = Mat::zeros(n, 2);
    for it in 0..cfg.iterations {
        let exag = if it < cfg.exaggeration_iters {
            12.0
        } else {
            1.0
        };
        // Student-t affinities Q (unnormalised num, then normalised).
        let yd2 = y.pairwise_sq_dists(&y).expect("self distances");
        let mut num = yd2.map(|v| 1.0 / (1.0 + v));
        for i in 0..n {
            num[(i, i)] = 0.0;
        }
        let z: f64 = num.sum();
        // Gradient: 4 Σ_j (exag·p_ij − q_ij) num_ij (y_i − y_j).
        let mut grad = Mat::zeros(n, 2);
        for i in 0..n {
            let yi0 = y[(i, 0)];
            let yi1 = y[(i, 1)];
            let mut g0 = 0.0;
            let mut g1 = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = num[(i, j)] / z;
                let coeff = (exag * pj[(i, j)] - q) * num[(i, j)];
                g0 += coeff * (yi0 - y[(j, 0)]);
                g1 += coeff * (yi1 - y[(j, 1)]);
            }
            grad[(i, 0)] = 4.0 * g0;
            grad[(i, 1)] = 4.0 * g1;
        }
        let momentum = if it < 60 { 0.5 } else { 0.8 };
        for idx in 0..n * 2 {
            let v = momentum * vel.as_slice()[idx] - cfg.learning_rate * grad.as_slice()[idx];
            vel.as_mut_slice()[idx] = v;
            y.as_mut_slice()[idx] += v;
        }
        // Re-centre.
        let means = y.col_means();
        for i in 0..n {
            y[(i, 0)] -= means[0];
            y[(i, 1)] -= means[1];
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs must stay separated in 2-D:
    /// mean inter-cluster distance ≫ mean intra-cluster distance.
    #[test]
    fn preserves_blob_structure() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..25 {
                let mut p = vec![0.0; 8];
                p[c] = 20.0;
                for v in p.iter_mut() {
                    *v += rng.normal_with(0.0, 0.5);
                }
                rows.push(p);
                labels.push(c);
            }
        }
        let x = Mat::from_rows(&rows).unwrap();
        let cfg = TsneConfig {
            iterations: 250,
            ..TsneConfig::default()
        };
        let y = tsne(&x, &cfg, &mut rng).unwrap();
        assert_eq!(y.shape(), (75, 2));
        assert!(y.all_finite());

        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..75 {
            for j in i + 1..75 {
                let d = y.row_sq_dist(i, y.row(j)).sqrt();
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            inter_mean > 2.0 * intra_mean,
            "inter {inter_mean} vs intra {intra_mean}"
        );
    }

    #[test]
    fn output_is_centred() {
        let mut rng = Rng64::seed_from_u64(2);
        let x = rgae_linalg::standard_normal(30, 5, &mut rng);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 50,
                ..TsneConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let means = y.col_means();
        assert!(means[0].abs() < 1e-9 && means[1].abs() < 1e-9);
    }

    #[test]
    fn rejects_tiny_inputs() {
        let mut rng = Rng64::seed_from_u64(3);
        let x = Mat::zeros(3, 2);
        assert!(tsne(&x, &TsneConfig::default(), &mut rng).is_err());
        let x = Mat::zeros(10, 2);
        let bad = TsneConfig {
            perplexity: 0.5,
            ..TsneConfig::default()
        };
        assert!(tsne(&x, &bad, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng_data = Rng64::seed_from_u64(4);
        let x = rgae_linalg::standard_normal(20, 4, &mut rng_data);
        let cfg = TsneConfig {
            iterations: 40,
            ..TsneConfig::default()
        };
        let mut r1 = Rng64::seed_from_u64(5);
        let mut r2 = Rng64::seed_from_u64(5);
        let y1 = tsne(&x, &cfg, &mut r1).unwrap();
        let y2 = tsne(&x, &cfg, &mut r2).unwrap();
        assert!(y1.max_abs_diff(&y2) < 1e-12);
    }
}

//! 2-D PCA by power iteration with deflation — a cheap alternative
//! projection when t-SNE is overkill.

use rgae_linalg::{Mat, Rng64};

use crate::{Error, Result};

/// Project `x` onto its top two principal components.
pub fn pca_2d(x: &Mat, rng: &mut Rng64) -> Result<Mat> {
    let (n, d) = x.shape();
    if n < 2 || d < 2 {
        return Err(Error::Invalid("pca_2d: need at least 2x2 input"));
    }
    // Centre.
    let means = x.col_means();
    let mut centred = x.clone();
    for i in 0..n {
        for (v, &m) in centred.row_mut(i).iter_mut().zip(&means) {
            *v -= m;
        }
    }
    // Covariance (d×d).
    let cov = centred
        .t_matmul(&centred)
        .expect("gram")
        .scale(1.0 / n as f64);

    let mut components = Mat::zeros(2, d);
    let mut cov_work = cov;
    for c in 0..2 {
        let mut v: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
        normalize(&mut v);
        for _ in 0..200 {
            let mut next = vec![0.0; d];
            for i in 0..d {
                let row = cov_work.row(i);
                next[i] = row.iter().zip(&v).map(|(&a, &b)| a * b).sum();
            }
            normalize(&mut next);
            let delta: f64 = next
                .iter()
                .zip(&v)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f64::max);
            v = next;
            if delta < 1e-10 {
                break;
            }
        }
        components.row_mut(c).copy_from_slice(&v);
        // Deflate: cov ← cov − λ v vᵀ with λ = vᵀ cov v.
        let mut cv = vec![0.0; d];
        for i in 0..d {
            cv[i] = cov_work.row(i).iter().zip(&v).map(|(&a, &b)| a * b).sum();
        }
        let lambda: f64 = v.iter().zip(&cv).map(|(&a, &b)| a * b).sum();
        for i in 0..d {
            for j in 0..d {
                cov_work[(i, j)] -= lambda * v[i] * v[j];
            }
        }
    }
    Ok(centred.matmul_t(&components).expect("projection shapes"))
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|&a| a * a).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for a in v.iter_mut() {
            *a /= norm;
        }
    } else {
        v[0] = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points spread along (1, 1, 0) with small noise: PC1 ≈ that axis.
        let mut rng = Rng64::seed_from_u64(1);
        let mut rows = Vec::new();
        for _ in 0..200 {
            let t = rng.normal_with(0.0, 5.0);
            rows.push(vec![
                t + rng.normal_with(0.0, 0.1),
                t + rng.normal_with(0.0, 0.1),
                rng.normal_with(0.0, 0.1),
            ]);
        }
        let x = Mat::from_rows(&rows).unwrap();
        let y = pca_2d(&x, &mut rng).unwrap();
        assert_eq!(y.shape(), (200, 2));
        // Variance along PC1 vastly exceeds PC2's.
        let var = |col: usize| -> f64 {
            let m: f64 = y.col(col).iter().sum::<f64>() / 200.0;
            y.col(col).iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / 200.0
        };
        assert!(var(0) > 20.0 * var(1), "{} vs {}", var(0), var(1));
    }

    #[test]
    fn projection_is_centred() {
        let mut rng = Rng64::seed_from_u64(2);
        let x = rgae_linalg::uniform(50, 4, 5.0, 9.0, &mut rng);
        let y = pca_2d(&x, &mut rng).unwrap();
        let means = y.col_means();
        assert!(means[0].abs() < 1e-8 && means[1].abs() < 1e-8);
    }

    #[test]
    fn rejects_degenerate_shapes() {
        let mut rng = Rng64::seed_from_u64(3);
        assert!(pca_2d(&Mat::zeros(1, 5), &mut rng).is_err());
        assert!(pca_2d(&Mat::zeros(5, 1), &mut rng).is_err());
    }
}

//! A tiny CSV writer for the figure/table series. No external crate needed:
//! every emitted field is either a number or a simple identifier.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::Result;

/// A column-ordered CSV file writer.
pub struct CsvWriter {
    out: BufWriter<File>,
    columns: usize,
}

impl CsvWriter {
    /// Create (truncating) `path` and write the header row. Parent
    /// directories are created as needed.
    pub fn create(path: impl AsRef<Path>, header: &[&str]) -> Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "{}", header.join(","))?;
        Ok(CsvWriter {
            out,
            columns: header.len(),
        })
    }

    /// Write a numeric row; must match the header width.
    pub fn row(&mut self, values: &[f64]) -> Result<()> {
        assert_eq!(values.len(), self.columns, "csv row width mismatch");
        let mut first = true;
        for v in values {
            if !first {
                write!(self.out, ",")?;
            }
            first = false;
            write!(self.out, "{v}")?;
        }
        writeln!(self.out)?;
        Ok(())
    }

    /// Write a row of preformatted fields (e.g. a label plus numbers).
    pub fn row_strs(&mut self, values: &[String]) -> Result<()> {
        assert_eq!(values.len(), self.columns, "csv row width mismatch");
        writeln!(self.out, "{}", values.join(","))?;
        Ok(())
    }

    /// Flush buffered output.
    pub fn finish(mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("rgae_csv_test");
        let path = dir.join("t.csv");
        let mut w = CsvWriter::create(&path, &["epoch", "acc"]).unwrap();
        w.row(&[0.0, 0.5]).unwrap();
        w.row(&[1.0, 0.75]).unwrap();
        w.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "epoch,acc\n0,0.5\n1,0.75\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let dir = std::env::temp_dir().join("rgae_csv_test2");
        let path = dir.join("t.csv");
        let mut w = CsvWriter::create(&path, &["a", "b"]).unwrap();
        let _ = w.row(&[1.0]);
    }

    #[test]
    fn mixed_string_rows() {
        let dir = std::env::temp_dir().join("rgae_csv_test3");
        let path = dir.join("t.csv");
        let mut w = CsvWriter::create(&path, &["model", "acc"]).unwrap();
        w.row_strs(&["GAE".into(), "0.613".into()]).unwrap();
        w.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("GAE,0.613"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

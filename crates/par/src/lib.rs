//! `rgae-par`: a deterministic parallel compute layer for the training hot
//! paths.
//!
//! The crate is a small scoped thread pool with no external dependencies
//! (the workspace builds offline). Its contract is stronger than "parallel
//! and fast": **every kernel built on it is bit-for-bit identical to serial
//! execution at any thread count**. Two rules make that hold:
//!
//! 1. *Disjoint writes, unchanged per-element order.* Row- and chunk-parallel
//!    kernels ([`par_chunks_mut`], [`par_zip_chunks_mut`]) give each task an
//!    exclusive `&mut` window of the output and keep the floating-point
//!    operation order of each element exactly as the serial loop had it. The
//!    chunk decomposition can then vary freely with the thread count without
//!    moving a single rounding step.
//! 2. *Ordered reduction.* Scalar folds ([`par_sum_by`]) are restructured
//!    into fixed per-chunk partials — the chunk size is a function of the
//!    problem size only, never of the thread count — and the partials are
//!    folded serially in chunk order. FP addition is not associative, so a
//!    single shared accumulator can never be parallelised bit-identically;
//!    fixed partials can.
//!
//! Thread count resolution order: [`with_threads`] (scoped override, used by
//! the differential tests) > [`set_threads`] > the `RGAE_THREADS` environment
//! variable > `std::thread::available_parallelism()`. A count of 1 runs every
//! kernel inline on the calling thread — the exact serial path, no pool
//! involvement.
//!
//! Per-kernel wall time is accumulated in [`stats`] and flushed into the
//! `rgae-obs` recorder by the trainer.

mod pool;
pub mod stats;

pub use stats::{kernel_stats, take_kernel_stats, timed, KernelStat};

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// 0 = not yet resolved (consult env / available_parallelism on first use).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Serialises [`with_threads`] scopes so concurrently running tests cannot
/// observe each other's temporary overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// Set while the current thread is executing inside a parallel region;
    /// nested `run`/`par_join` calls then execute inline to avoid pool
    /// deadlock (and to keep the work partition well-defined).
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn enter_parallel_region() {
    IN_PARALLEL.with(|f| f.set(true));
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RGAE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count kernels will use right now.
pub fn threads() -> usize {
    let cur = CONFIGURED.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let resolved = default_threads();
    // Racing initialisers resolve to the same value, so a plain store is fine.
    CONFIGURED.store(resolved, Ordering::Relaxed);
    resolved
}

/// Set the global thread count. `None` re-resolves from `RGAE_THREADS` /
/// available parallelism on the next [`threads`] call.
pub fn set_threads(n: Option<usize>) {
    CONFIGURED.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Run `f` with the thread count pinned to `n`, restoring the previous
/// configuration afterwards. Scopes are serialised process-wide so parallel
/// test runners cannot interleave overrides.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = CONFIGURED.swap(n.max(1), Ordering::Relaxed);
    let out = f();
    CONFIGURED.store(prev, Ordering::Relaxed);
    drop(guard);
    out
}

// ---------------------------------------------------------------------------
// Core primitive: run N indexed tasks across the pool
// ---------------------------------------------------------------------------

/// Raw task pointer with the borrow lifetime erased. Soundness: [`run`] does
/// not return until every worker that could dereference it has finished.
struct TaskPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct Batch {
    task: TaskPtr,
    next: AtomicUsize,
    n_tasks: usize,
    /// Helpers that have not yet finished draining the index range.
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Batch {
    /// Claim indices from the shared counter until the range is drained.
    fn work(&self) {
        let task = unsafe { &*self.task.0 };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
        }
    }

    fn helper_finished(&self) {
        let mut rem = self.remaining.lock().expect("batch latch lock");
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }
}

/// Execute `task(0..n_tasks)` across the configured threads.
///
/// Indices are claimed from a shared atomic counter (dynamic load balance),
/// which is safe for determinism because tasks write disjoint state: *which
/// thread* runs index `i` can vary, *what* index `i` computes cannot. With
/// one configured thread, inside an existing parallel region, or for a
/// single task, the loop runs inline — the exact serial path.
pub fn run(n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    let t = threads();
    if t <= 1 || n_tasks == 1 || IN_PARALLEL.with(|f| f.get()) {
        for i in 0..n_tasks {
            task(i);
        }
        return;
    }

    let helpers = (t - 1).min(n_tasks - 1);
    let erased: *const (dyn Fn(usize) + Sync) = task;
    // Erase the borrow lifetime; the wait on `remaining == 0` below restores
    // the scoped guarantee before `task` can go out of scope.
    let erased: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(erased) };
    let batch = Arc::new(Batch {
        task: TaskPtr(erased),
        next: AtomicUsize::new(0),
        n_tasks,
        remaining: Mutex::new(helpers),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });

    let pool = pool::pool();
    pool.ensure_workers(helpers);
    for _ in 0..helpers {
        let b = Arc::clone(&batch);
        pool.submit(Box::new(move || {
            b.work();
            b.helper_finished();
        }));
    }

    // The caller participates instead of blocking idle.
    IN_PARALLEL.with(|f| f.set(true));
    batch.work();
    IN_PARALLEL.with(|f| f.set(false));

    let mut rem = batch.remaining.lock().expect("batch latch lock");
    while *rem > 0 {
        rem = batch.done.wait(rem).expect("batch latch wait");
    }
    drop(rem);
    if batch.panicked.load(Ordering::Relaxed) {
        panic!("rgae-par: a parallel task panicked");
    }
}

// ---------------------------------------------------------------------------
// Chunked views over output buffers
// ---------------------------------------------------------------------------

struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor so closures capture the whole `SendPtr` (which is `Sync`)
    /// rather than the raw pointer field (which is not).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Split `data` into consecutive windows of `chunk_len` elements (the last
/// may be shorter) and run `f(chunk_index, window)` for each, in parallel.
/// Windows are disjoint, so each task has exclusive `&mut` access.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    let len = data.len();
    let n_chunks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    run(n_chunks, &|i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // Disjoint by construction: chunk i covers [i*chunk_len, (i+1)*chunk_len).
        let window = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, window);
    });
}

/// Like [`par_chunks_mut`] over two buffers at once: chunk `i` of `a`
/// (windows of `a_chunk`) is processed together with chunk `i` of `b`
/// (windows of `b_chunk`). Both slices must decompose into the same number
/// of chunks. Used where a kernel produces two outputs per stripe, e.g.
/// k-means assignments plus per-chunk change flags.
pub fn par_zip_chunks_mut<A: Send, B: Send>(
    a: &mut [A],
    a_chunk: usize,
    b: &mut [B],
    b_chunk: usize,
    f: impl Fn(usize, &mut [A], &mut [B]) + Sync,
) {
    if a.is_empty() && b.is_empty() {
        return;
    }
    assert!(a_chunk > 0 && b_chunk > 0, "par_zip_chunks_mut: zero chunk");
    let (a_len, b_len) = (a.len(), b.len());
    let n_chunks = a_len.div_ceil(a_chunk);
    assert_eq!(
        n_chunks,
        b_len.div_ceil(b_chunk),
        "par_zip_chunks_mut: chunk counts differ"
    );
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    run(n_chunks, &|i| {
        let (sa, ea) = (i * a_chunk, ((i + 1) * a_chunk).min(a_len));
        let (sb, eb) = (i * b_chunk, ((i + 1) * b_chunk).min(b_len));
        let wa = unsafe { std::slice::from_raw_parts_mut(pa.get().add(sa), ea - sa) };
        let wb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(sb), eb - sb) };
        f(i, wa, wb);
    });
}

/// A shared mutable view for kernels whose element-level read and write sets
/// are disjoint but interleave within every slice window — e.g. mirroring the
/// lower triangle of a Gram matrix from the upper, or scattering per-cluster
/// GMM statistics. All access goes through raw pointers, so no `&`/`&mut`
/// reference to the buffer exists while tasks run; disjointness is the
/// caller's obligation *per element* rather than per range.
pub struct RawMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send + Sync> Send for RawMut<'_, T> {}
unsafe impl<T: Send + Sync> Sync for RawMut<'_, T> {}

impl<'a, T: Send + Sync> RawMut<'a, T> {
    /// Take exclusive ownership of `data` for the view's lifetime.
    pub fn new(data: &'a mut [T]) -> Self {
        RawMut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements in the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No task may be writing element `i` concurrently.
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// No other task may read or write element `i` concurrently.
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

// ---------------------------------------------------------------------------
// Ordered reduction
// ---------------------------------------------------------------------------

/// Chunk width used by [`par_sum_by`] reductions. Fixed — *never* derived
/// from the thread count — so the partial-sum tree is identical no matter
/// how many threads fold it.
pub const REDUCE_CHUNK: usize = 256;

/// Deterministic parallel sum: `f(range)` computes the serial partial sum of
/// one fixed-width chunk of `[0, n_items)`; the partials are then folded
/// serially in chunk order. Bit-identical at any thread count because the
/// decomposition depends only on `n_items`.
pub fn par_sum_by(n_items: usize, f: impl Fn(std::ops::Range<usize>) -> f64 + Sync) -> f64 {
    if n_items == 0 {
        return 0.0;
    }
    let n_chunks = n_items.div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f64; n_chunks];
    par_chunks_mut(&mut partials, 1, |i, slot| {
        let start = i * REDUCE_CHUNK;
        let end = (start + REDUCE_CHUNK).min(n_items);
        slot[0] = f(start..end);
    });
    partials.iter().sum()
}

// ---------------------------------------------------------------------------
// Fork-join for two heterogeneous closures
// ---------------------------------------------------------------------------

/// Run `a` and `b` concurrently, returning both results. `b` executes on a
/// pool worker (inside a parallel region, so its nested kernels run inline)
/// while `a` runs on the calling thread with full access to the pool.
/// Falls back to sequential `(a(), b())` with one thread or when already
/// inside a parallel region — same results either way, since the closures
/// touch disjoint state.
pub fn par_join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if threads() <= 1 || IN_PARALLEL.with(|f| f.get()) {
        return (a(), b());
    }

    struct JoinSlot<T> {
        result: Mutex<Option<std::thread::Result<T>>>,
        done: Condvar,
    }

    let slot = Arc::new(JoinSlot::<RB> {
        result: Mutex::new(None),
        done: Condvar::new(),
    });

    let pool = pool::pool();
    pool.ensure_workers(1);
    {
        let slot = Arc::clone(&slot);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let out = catch_unwind(AssertUnwindSafe(b));
            let mut guard = slot.result.lock().expect("join slot lock");
            *guard = Some(out);
            slot.done.notify_all();
        });
        // Lifetime erasure; the wait below keeps the borrow alive long enough.
        let job: pool::Job = unsafe { std::mem::transmute(job) };
        pool.submit(job);
    }

    let ra = a();

    let mut guard = slot.result.lock().expect("join slot lock");
    while guard.is_none() {
        guard = slot.done.wait(guard).expect("join slot wait");
    }
    match guard.take().expect("join slot filled") {
        Ok(rb) => (ra, rb),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_index_once() {
        with_threads(4, || {
            let n = 1037;
            let mut hits = vec![0u8; n];
            par_chunks_mut(&mut hits, 1, |_, w| {
                for h in w.iter_mut() {
                    *h += 1;
                }
            });
            assert!(hits.iter().all(|&h| h == 1));
        });
    }

    #[test]
    fn chunks_are_ragged_safe() {
        for t in [1, 2, 3, 8] {
            with_threads(t, || {
                let mut v: Vec<usize> = vec![0; 10];
                par_chunks_mut(&mut v, 3, |i, w| {
                    for (j, x) in w.iter_mut().enumerate() {
                        *x = i * 3 + j;
                    }
                });
                assert_eq!(v, (0..10).collect::<Vec<_>>());
            });
        }
    }

    #[test]
    fn par_sum_matches_serial_fold_bitwise() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
        let reference = with_threads(1, || {
            par_sum_by(data.len(), |r| r.map(|i| data[i]).sum::<f64>())
        });
        for t in [2, 3, 8] {
            let got = with_threads(t, || {
                par_sum_by(data.len(), |r| r.map(|i| data[i]).sum::<f64>())
            });
            assert_eq!(got.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn par_join_returns_both() {
        with_threads(4, || {
            let xs: Vec<u64> = (0..100).collect();
            let (a, b) = par_join(|| xs.iter().sum::<u64>(), || xs.iter().max().copied());
            assert_eq!(a, 4950);
            assert_eq!(b, Some(99));
        });
    }

    #[test]
    fn zip_chunks_write_disjoint_pairs() {
        with_threads(3, || {
            let mut vals = vec![0usize; 11];
            let mut flags = vec![0u8; 11usize.div_ceil(4)];
            par_zip_chunks_mut(&mut vals, 4, &mut flags, 1, |i, w, fl| {
                for x in w.iter_mut() {
                    *x = i;
                }
                fl[0] = 1;
            });
            assert_eq!(vals, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]);
            assert!(flags.iter().all(|&f| f == 1));
        });
    }

    #[test]
    fn nested_run_executes_inline() {
        with_threads(4, || {
            let mut outer = vec![0u32; 16];
            par_chunks_mut(&mut outer, 4, |_, w| {
                // A nested parallel call must not deadlock or misbehave.
                let mut inner = vec![1u32; 8];
                par_chunks_mut(&mut inner, 2, |_, iw| {
                    for x in iw.iter_mut() {
                        *x += 1;
                    }
                });
                let s: u32 = inner.iter().sum();
                for x in w.iter_mut() {
                    *x = s;
                }
            });
            assert!(outer.iter().all(|&x| x == 16));
        });
    }

    #[test]
    #[should_panic(expected = "parallel task panicked")]
    fn panics_propagate() {
        with_threads(4, || {
            run(64, &|i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        });
    }

    #[test]
    fn timed_accumulates() {
        let before: u64 = kernel_stats()
            .iter()
            .find(|(k, _)| *k == "unit_test_kernel")
            .map(|(_, s)| s.calls)
            .unwrap_or(0);
        timed("unit_test_kernel", || std::hint::black_box(1 + 1));
        let after = kernel_stats()
            .iter()
            .find(|(k, _)| *k == "unit_test_kernel")
            .map(|(_, s)| s.calls)
            .unwrap_or(0);
        assert_eq!(after, before + 1);
    }
}

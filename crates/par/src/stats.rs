//! Per-kernel timing registry.
//!
//! Hot-path kernels wrap their body in [`timed`], which accumulates call
//! counts and wall seconds into a process-global table keyed by a static
//! kernel name. The trainer snapshots the table at the end of a run and
//! flushes it into the `rgae-obs` recorder, so per-kernel time shows up in
//! trace logs next to the span timings without `rgae-par` depending on the
//! observability crate.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// One kernel's accumulated totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelStat {
    /// Times the kernel ran since the last [`take_kernel_stats`].
    pub calls: u64,
    /// Total wall-clock seconds spent inside the kernel.
    pub seconds: f64,
}

static REGISTRY: Mutex<BTreeMap<&'static str, KernelStat>> = Mutex::new(BTreeMap::new());

/// Run `f`, charging its wall time to kernel `name`.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    let secs = start.elapsed().as_secs_f64();
    let mut reg = REGISTRY.lock().expect("kernel stats lock");
    let entry = reg.entry(name).or_insert(KernelStat {
        calls: 0,
        seconds: 0.0,
    });
    entry.calls += 1;
    entry.seconds += secs;
    out
}

/// Snapshot the registry without resetting it, sorted by kernel name.
pub fn kernel_stats() -> Vec<(&'static str, KernelStat)> {
    let reg = REGISTRY.lock().expect("kernel stats lock");
    reg.iter().map(|(&k, &v)| (k, v)).collect()
}

/// Snapshot the registry and reset all totals to zero.
pub fn take_kernel_stats() -> Vec<(&'static str, KernelStat)> {
    let mut reg = REGISTRY.lock().expect("kernel stats lock");
    let out = reg.iter().map(|(&k, &v)| (k, v)).collect();
    reg.clear();
    out
}

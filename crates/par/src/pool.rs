//! The worker pool behind [`crate::run`].
//!
//! A single process-global pool of parked worker threads. Workers are spawned
//! lazily (the first batch that needs `n` helpers grows the pool to `n`) and
//! never exit; they park on a condvar until a job arrives. Jobs are boxed
//! closures whose lifetimes have been erased by the caller — soundness is the
//! caller's obligation and is discharged in [`crate::run`] / [`crate::par_join`]
//! by blocking until every submitted job has finished before returning.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

pub(crate) struct Pool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

pub(crate) fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Grow the pool so at least `needed` workers exist.
    pub(crate) fn ensure_workers(&self, needed: usize) {
        let mut n = self.spawned.lock().expect("pool spawn lock");
        while *n < needed {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("rgae-par-{}", *n))
                .spawn(move || worker_loop(&shared))
                .expect("spawn rgae-par worker");
            *n += 1;
        }
    }

    pub(crate) fn submit(&self, job: Job) {
        let mut q = self.shared.queue.lock().expect("pool queue lock");
        q.push_back(job);
        drop(q);
        self.shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    // Everything a worker runs counts as "inside a parallel region": nested
    // `run` calls from within a job must execute inline or the pool could
    // deadlock waiting on itself.
    crate::enter_parallel_region();
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.available.wait(q).expect("pool queue wait");
            }
        };
        job();
    }
}

//! Differential test suite: every parallel kernel must be **bit-for-bit**
//! equal to its 1-thread execution across thread counts {1, 2, 3, 8}, over
//! ragged shapes (dimensions not divisible by the chunk size, empty rows,
//! single-row matrices).
//!
//! The reference is always computed under `with_threads(1)` — the exact
//! serial path (no pool involvement) — and then compared bitwise against
//! runs at higher thread counts. f64 buffers are compared through their bit
//! patterns so `-0.0 != 0.0` and NaN payload differences would be caught.

use proptest::prelude::*;
use rgae_linalg::{Csr, Mat, Rng64};

const THREADS: [usize; 4] = [1, 2, 3, 8];

fn mat_from(rng_seed: u64, rows: usize, cols: usize) -> Mat {
    let mut rng = Rng64::seed_from_u64(rng_seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            // Mix magnitudes and exact zeros so the zero-skip fast paths and
            // non-associativity-sensitive sums are both exercised.
            if rng.bernoulli(0.15) {
                0.0
            } else {
                rng.normal() * 10f64.powi(rng.index(5) as i32 - 2)
            }
        })
        .collect();
    Mat::from_vec(rows, cols, data).expect("consistent shape")
}

fn csr_from(rng_seed: u64, rows: usize, cols: usize) -> Csr {
    let mut rng = Rng64::seed_from_u64(rng_seed);
    let mut triplets = Vec::new();
    for i in 0..rows {
        // Some rows stay structurally empty.
        if rng.bernoulli(0.25) {
            continue;
        }
        let nnz = rng.index(cols.max(1)).min(6);
        for _ in 0..nnz {
            triplets.push((i, rng.index(cols), rng.uniform_in(0.5, 2.0)));
        }
    }
    Csr::from_triplets(rows, cols, &triplets).expect("valid triplets")
}

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Run `f` under every thread count and assert the produced matrix is
/// bit-identical to the 1-thread result.
fn assert_mat_invariant(label: &str, f: impl Fn() -> Mat) {
    let reference = rgae_par::with_threads(1, &f);
    for t in &THREADS[1..] {
        let got = rgae_par::with_threads(*t, &f);
        assert_eq!(
            got.shape(),
            reference.shape(),
            "{label}: shape, threads={t}"
        );
        assert_eq!(bits(&got), bits(&reference), "{label}: bits, threads={t}");
    }
}

proptest! {
    /// Dense matmul: ragged shapes including single-row and single-column.
    #[test]
    fn matmul_bitwise_equal(
        (m, k, n) in (1usize..40, 1usize..24, 1usize..40),
        seed in 0u64..1_000_000,
    ) {
        let a = mat_from(seed, m, k);
        let b = mat_from(seed ^ 0xABCD, k, n);
        assert_mat_invariant("matmul", || a.matmul(&b).expect("shapes agree"));
    }

    /// `A·Bᵀ` (used for decoder logits against arbitrary rows).
    #[test]
    fn matmul_t_bitwise_equal(
        (m, k, n) in (1usize..32, 1usize..16, 1usize..32),
        seed in 0u64..1_000_000,
    ) {
        let a = mat_from(seed, m, k);
        let b = mat_from(seed ^ 0x1111, n, k);
        assert_mat_invariant("matmul_t", || a.matmul_t(&b).expect("shapes agree"));
    }

    /// `Aᵀ·B` — the gather rewrite must keep the serial scatter's order.
    #[test]
    fn t_matmul_bitwise_equal(
        (m, k, n) in (1usize..32, 1usize..16, 1usize..32),
        seed in 0u64..1_000_000,
    ) {
        let a = mat_from(seed, m, k);
        let b = mat_from(seed ^ 0x2222, m, n);
        assert_mat_invariant("t_matmul", || a.t_matmul(&b).expect("shapes agree"));
    }

    /// Gram (two-pass upper-triangle + mirror).
    #[test]
    fn gram_bitwise_equal(
        (n, d) in (1usize..48, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let z = mat_from(seed, n, d);
        assert_mat_invariant("gram", || z.gram());
    }

    /// Sparse×dense spMM with structurally empty rows.
    #[test]
    fn spmm_bitwise_equal(
        (r, c, d) in (1usize..48, 1usize..32, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let s = csr_from(seed, r, c);
        let x = mat_from(seed ^ 0x3333, c, d);
        assert_mat_invariant("spmm", || s.spmm(&x).expect("shapes agree"));
    }

    /// Transposed spMM (ownership-partitioned scatter).
    #[test]
    fn t_spmm_bitwise_equal(
        (r, c, d) in (1usize..48, 1usize..32, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let s = csr_from(seed, r, c);
        let x = mat_from(seed ^ 0x4444, r, d);
        assert_mat_invariant("t_spmm", || s.t_spmm(&x).expect("shapes agree"));
    }

    /// Element-wise map / zip_map and pairwise distances.
    #[test]
    fn elementwise_and_pairwise_bitwise_equal(
        (n, d, k) in (1usize..64, 1usize..10, 1usize..8),
        seed in 0u64..1_000_000,
    ) {
        let x = mat_from(seed, n, d);
        let y = mat_from(seed ^ 0x5555, n, d);
        let centers = mat_from(seed ^ 0x6666, k, d);
        assert_mat_invariant("map", || x.map(|v| (v * 1.7).tanh()));
        assert_mat_invariant("zip_map", || {
            x.zip_map(&y, |a, b| a.mul_add(b, -0.25)).expect("same shape")
        });
        assert_mat_invariant("pairwise", || {
            x.pairwise_sq_dists(&centers).expect("same dim")
        });
        assert_mat_invariant("transpose", || x.transpose());
    }

    /// BCE-with-logits loss *and* gradient through a Gram decoder: the full
    /// reconstruction-loss path the trainer runs every epoch.
    #[test]
    fn bce_grad_bitwise_equal(
        (n, d) in (2usize..24, 1usize..8),
        seed in 0u64..1_000_000,
    ) {
        let z0 = mat_from(seed, n, d);
        let adj = csr_from(seed ^ 0x7777, n, n);
        let run = || {
            let mut g = rgae_autodiff::Graph::new();
            let z = g.leaf(z0.clone());
            let logits = g.gram(z);
            let loss = g
                .bce_logits_sparse(logits, &std::rc::Rc::new(adj.clone()), 3.0, 0.7)
                .expect("shapes agree");
            g.backward(loss).expect("scalar root");
            let lv = g.value(loss).as_slice()[0];
            let grad = g.grad(z).expect("leaf gradient").clone();
            (lv, grad)
        };
        let (loss_ref, grad_ref) = rgae_par::with_threads(1, run);
        for t in &THREADS[1..] {
            let (loss_t, grad_t) = rgae_par::with_threads(*t, run);
            prop_assert_eq!(loss_t.to_bits(), loss_ref.to_bits(), "loss bits, threads={}", t);
            prop_assert_eq!(bits(&grad_t), bits(&grad_ref), "grad bits, threads={}", t);
        }
    }

    /// Fused tiled decoder vs the legacy three-pass gram → BCE → matmul
    /// chain: with a unit upstream gradient (the shape `recon_grad` and the
    /// pretraining loss root use) both the loss and dZ must be bit-for-bit
    /// identical, at every thread count.
    #[test]
    fn fused_decoder_bitwise_matches_legacy(
        (n, d) in (2usize..24, 1usize..8),
        seed in 0u64..1_000_000,
    ) {
        let z0 = mat_from(seed, n, d);
        let adj = std::rc::Rc::new(csr_from(seed ^ 0xAAAA, n, n));
        let legacy = || {
            let mut g = rgae_autodiff::Graph::new();
            let z = g.leaf(z0.clone());
            let s = g.gram(z);
            let loss = g.bce_logits_sparse(s, &adj, 3.0, 0.7).expect("shapes agree");
            g.backward(loss).expect("scalar root");
            (g.value(loss).as_slice()[0], g.grad(z).expect("leaf grad").clone())
        };
        let fused = || {
            let mut g = rgae_autodiff::Graph::new();
            let z = g.leaf(z0.clone());
            let loss = g
                .gram_bce_logits_sparse(z, &adj, 3.0, 0.7)
                .expect("shapes agree");
            g.backward(loss).expect("scalar root");
            (g.value(loss).as_slice()[0], g.grad(z).expect("leaf grad").clone())
        };
        for t in [1usize, 2, 8] {
            let (loss_l, grad_l) = rgae_par::with_threads(t, legacy);
            let (loss_f, grad_f) = rgae_par::with_threads(t, fused);
            prop_assert_eq!(loss_f.to_bits(), loss_l.to_bits(), "loss bits, threads={}", t);
            prop_assert_eq!(bits(&grad_f), bits(&grad_l), "dZ bits, threads={}", t);
        }
    }

    /// γ-scaled loss roots: the fused backward scales the precomputed unit
    /// dZ by γ *after* the row sums (legacy folds γ into each coefficient
    /// before summing), so dZ bits may differ by rounding — values must
    /// agree to ≤1e-12 relative. The loss itself stays bit-identical.
    #[test]
    fn fused_decoder_gamma_scaled_close(
        (n, d) in (2usize..20, 1usize..6),
        seed in 0u64..1_000_000,
    ) {
        let z0 = mat_from(seed, n, d);
        let adj = std::rc::Rc::new(csr_from(seed ^ 0xBBBB, n, n));
        let gamma = 0.37;
        let run = |fused: bool| {
            let mut g = rgae_autodiff::Graph::new();
            let z = g.leaf(z0.clone());
            let recon = if fused {
                g.gram_bce_logits_sparse(z, &adj, 3.0, 0.7).expect("shapes agree")
            } else {
                let s = g.gram(z);
                g.bce_logits_sparse(s, &adj, 3.0, 0.7).expect("shapes agree")
            };
            let loss = g.scale(recon, gamma);
            g.backward(loss).expect("scalar root");
            (g.value(loss).as_slice()[0], g.grad(z).expect("leaf grad").clone())
        };
        let (loss_l, grad_l) = run(false);
        let (loss_f, grad_f) = run(true);
        prop_assert_eq!(loss_f.to_bits(), loss_l.to_bits(), "γ-scaled loss bits");
        for (a, b) in grad_f.as_slice().iter().zip(grad_l.as_slice()) {
            prop_assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "γ-scaled dZ {} vs {}", a, b
            );
        }
    }

    /// The scalar-loss forwards (`bce_logits_dense`, `kl_div_const_q`,
    /// `gaussian_kl`, `mse_const`) now run through ordered `par_sum_by`
    /// reductions: loss and gradient bits must not depend on thread count.
    #[test]
    fn scalar_losses_bitwise_equal(
        (r, c) in (1usize..40, 1usize..16),
        seed in 0u64..1_000_000,
    ) {
        use std::rc::Rc;
        let x0 = mat_from(seed, r, c);
        let mu0 = mat_from(seed ^ 0xCCCC, r, c);
        // Keep log-variances tame so exp() stays finite.
        let lv0 = mat_from(seed ^ 0xDDDD, r, c).map(|v| (v * 0.1).clamp(-5.0, 5.0));
        let t0 = Rc::new(mat_from(seed ^ 0xEEEE, r, c).map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        let q0 = Rc::new(mat_from(seed ^ 0xFFFF, r, c).map(|v| v.abs() + 0.01));
        let run = || {
            let mut g = rgae_autodiff::Graph::new();
            let x = g.leaf(x0.clone());
            let mu = g.leaf(mu0.clone());
            let lv = g.leaf(lv0.clone());
            let bce = g.bce_logits_dense(x, &t0).expect("shapes agree");
            let kl = g.kl_div_const_q(x, &q0).expect("shapes agree");
            let gkl = g.gaussian_kl(mu, lv).expect("shapes agree");
            let mse = g.mse_const(x, &t0).expect("shapes agree");
            let s1 = g.add(bce, kl).expect("scalars");
            let s2 = g.add(gkl, mse).expect("scalars");
            let loss = g.add(s1, s2).expect("scalars");
            g.backward(loss).expect("scalar root");
            (
                [bce, kl, gkl, mse].map(|v| g.value(v).as_slice()[0].to_bits()),
                g.grad(x).expect("x grad").clone(),
                g.grad(mu).expect("mu grad").clone(),
                g.grad(lv).expect("lv grad").clone(),
            )
        };
        let (vals_ref, gx_ref, gm_ref, gl_ref) = rgae_par::with_threads(1, run);
        for t in &THREADS[1..] {
            let (vals, gx, gm, gl) = rgae_par::with_threads(*t, run);
            prop_assert_eq!(vals, vals_ref, "loss bits, threads={}", t);
            prop_assert_eq!(bits(&gx), bits(&gx_ref), "x grad bits, threads={}", t);
            prop_assert_eq!(bits(&gm), bits(&gm_ref), "mu grad bits, threads={}", t);
            prop_assert_eq!(bits(&gl), bits(&gl_ref), "lv grad bits, threads={}", t);
        }
    }

    /// Full k-means runs (seeding draws + Lloyd + re-seed + inertia) are
    /// bit-identical: same assignments, centroid bits, and inertia bits.
    #[test]
    fn kmeans_bitwise_equal(
        (n, d, k) in (8usize..64, 1usize..6, 1usize..5),
        seed in 0u64..1_000_000,
    ) {
        let points = mat_from(seed, n, d);
        let k = k.min(n);
        let run = || {
            let mut rng = Rng64::seed_from_u64(seed ^ 0x8888);
            rgae_cluster::kmeans(&points, k, 40, &mut rng).expect("k <= n")
        };
        let reference = rgae_par::with_threads(1, run);
        for t in &THREADS[1..] {
            let got = rgae_par::with_threads(*t, run);
            prop_assert_eq!(&got.assignments, &reference.assignments, "threads={}", t);
            prop_assert_eq!(
                bits(&got.centroids),
                bits(&reference.centroids),
                "threads={}", t
            );
            prop_assert_eq!(
                got.inertia.to_bits(),
                reference.inertia.to_bits(),
                "threads={}", t
            );
        }
    }

    /// GMM fits: responsibilities path, ordered log-likelihood reduction,
    /// and the cluster-parallel M step.
    #[test]
    fn gmm_bitwise_equal(
        (n, d, k) in (10usize..48, 1usize..4, 1usize..4),
        seed in 0u64..1_000_000,
    ) {
        let points = mat_from(seed, n, d);
        let k = k.min(n);
        let run = || {
            let mut rng = Rng64::seed_from_u64(seed ^ 0x9999);
            rgae_cluster::GaussianMixture::fit(&points, k, 20, &mut rng).expect("k <= n")
        };
        let reference = rgae_par::with_threads(1, run);
        for t in &THREADS[1..] {
            let got = rgae_par::with_threads(*t, run);
            prop_assert_eq!(bits(&got.means), bits(&reference.means), "means, threads={}", t);
            prop_assert_eq!(
                bits(&got.variances),
                bits(&reference.variances),
                "variances, threads={}", t
            );
            let wa: Vec<u64> = got.weights.iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u64> = reference.weights.iter().map(|w| w.to_bits()).collect();
            prop_assert_eq!(wa, wb, "weights, threads={}", t);
            prop_assert_eq!(
                got.avg_log_likelihood.to_bits(),
                reference.avg_log_likelihood.to_bits(),
                "log-likelihood, threads={}", t
            );
        }
    }
}

/// Degenerate shapes the property ranges cannot reach: empty matrices,
/// 1×1, and an all-empty sparse matrix.
#[test]
fn degenerate_shapes_bitwise_equal() {
    let cases: Vec<(Mat, Mat)> = vec![
        (Mat::zeros(0, 3), Mat::zeros(3, 4)),
        (Mat::zeros(3, 0), Mat::zeros(0, 4)),
        (mat_from(7, 1, 1), mat_from(8, 1, 1)),
        (mat_from(9, 1, 5), mat_from(10, 5, 1)),
    ];
    for (a, b) in &cases {
        assert_mat_invariant("degenerate matmul", || a.matmul(b).expect("shapes"));
    }
    let empty = Csr::zeros(5, 5);
    let x = mat_from(11, 5, 3);
    assert_mat_invariant("empty spmm", || empty.spmm(&x).expect("shapes"));
    assert_mat_invariant("empty t_spmm", || empty.t_spmm(&x).expect("shapes"));
}

/// The decoder tile bounds peak memory only: fused loss and dZ bits are
/// invariant to the tile override, exercised here through the autodiff op
/// (the linalg unit tests cover the raw kernel).
#[test]
fn fused_decoder_bits_invariant_to_tile() {
    let z0 = mat_from(31, 300, 5);
    let adj = std::rc::Rc::new(csr_from(32, 300, 300));
    let run = || {
        let mut g = rgae_autodiff::Graph::new();
        let z = g.leaf(z0.clone());
        let loss = g
            .gram_bce_logits_sparse(z, &adj, 2.0, 0.6)
            .expect("shapes agree");
        g.backward(loss).expect("scalar root");
        (
            g.value(loss).as_slice()[0],
            g.grad(z).expect("leaf grad").clone(),
        )
    };
    rgae_linalg::set_decoder_tile(None);
    let (loss_ref, grad_ref) = run();
    for tile in [1, 256, 300, 512, 100_000] {
        rgae_linalg::set_decoder_tile(Some(tile));
        let (loss_t, grad_t) = run();
        assert_eq!(
            loss_t.to_bits(),
            loss_ref.to_bits(),
            "loss bits, tile={tile}"
        );
        assert_eq!(bits(&grad_t), bits(&grad_ref), "dZ bits, tile={tile}");
    }
    rgae_linalg::set_decoder_tile(None);
}

/// The ordered reduction itself: chunk decomposition depends only on the
/// item count, so a sum over a thread-count-hostile length (prime, larger
/// than one reduce chunk) is bit-stable.
#[test]
fn ordered_reduction_bit_stable() {
    let n = 4999; // prime, spans multiple REDUCE_CHUNK windows
    let data: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.618).sin() * 10f64.powi((i % 7) as i32 - 3))
        .collect();
    let sum = |range: std::ops::Range<usize>| range.map(|i| data[i]).sum::<f64>();
    let reference = rgae_par::with_threads(1, || rgae_par::par_sum_by(n, sum));
    for t in &THREADS[1..] {
        let got = rgae_par::with_threads(*t, || rgae_par::par_sum_by(n, sum));
        assert_eq!(got.to_bits(), reference.to_bits(), "threads={t}");
    }
}

//! A minimal JSON value, encoder, and parser.
//!
//! The workspace builds fully offline, so run logs cannot lean on `serde`;
//! this module provides the small subset the tracing layer needs: a value
//! tree, compact one-line encoding (for JSONL), and a strict recursive-
//! descent parser (for round-trip tests and log replay).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (kept exact; seeds and counts round-trip losslessly).
    Int(i64),
    /// Floating-point number. Non-finite values encode as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view (floats are not truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Unsigned view of an integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that
                    // round-trips, but bare integers would re-parse as Int;
                    // force a fractional marker to preserve the variant.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at("trailing characters", pos));
        }
        Ok(value)
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset in the input.
    pub offset: usize,
}

impl ParseError {
    fn at(message: &'static str, offset: usize) -> Self {
        ParseError { message, offset }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at("unexpected token", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError::at("unexpected end of input", *pos)),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError::at("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(ParseError::at("expected `:`", *pos));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ParseError::at("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(ParseError::at("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or(ParseError::at("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| ParseError::at("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| ParseError::at("bad \\u escape", *pos))?;
                        // Surrogates are not produced by our encoder; map
                        // unpaired ones to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid utf-8 input"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|_| ParseError::at("bad number", start))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::at("expected value", start));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError::at("bad number", start))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| ParseError::at("bad number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Num(0.125),
            Json::Num(1.0),
            Json::Num(-3.5e-9),
            Json::Str("hi \"there\"\n\ttab".into()),
            Json::Str("unicode: Ω λ Υ Ξ".into()),
        ] {
            assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Null])),
            (
                "nested".into(),
                Json::Obj(vec![("x".into(), Json::Num(2.5))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn float_never_reparses_as_int() {
        let v = Json::Num(3.0);
        assert_eq!(v.encode(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), v);
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"k": 3, "s": "x", "f": 1.5, "b": false}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }
}

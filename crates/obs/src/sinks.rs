//! Recorder sinks: JSONL file, in-memory (tests), and stderr (humans).
//!
//! All sinks share the same span bookkeeping: `run_start` resets the timing
//! table, and `run_end` first emits the aggregated [`Event::TimingSummary`]
//! so every completed run carries its own timing table.

use std::cell::{Ref, RefCell};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::event::Event;
use crate::recorder::{Recorder, SpanBook};

/// Writes one JSON object per line to a log file under e.g.
/// `results/logs/`. Lines follow the [`Event::to_jsonl`] schema.
pub struct JsonlSink {
    out: RefCell<BufWriter<File>>,
    book: SpanBook,
}

impl JsonlSink {
    /// Create (truncate) the log file, creating parent directories.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink {
            out: RefCell::new(BufWriter::new(File::create(path)?)),
            book: SpanBook::new(),
        })
    }

    fn write_line(&self, event: &Event) {
        let mut out = self.out.borrow_mut();
        // Log IO failures must not take down a training run; drop the line.
        let _ = writeln!(out, "{}", event.to_jsonl());
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) {
        let _ = self.out.borrow_mut().flush();
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: &Event) {
        match event {
            Event::RunStart(_) => self.book.reset(),
            Event::RunEnd(_) => {
                self.write_line(&Event::TimingSummary(self.book.summary()));
            }
            _ => {}
        }
        self.write_line(event);
        if matches!(event, Event::RunEnd(_)) {
            self.flush();
        }
    }

    fn span_enter(&self, name: &'static str) {
        self.book.enter(name);
    }

    fn span_exit(&self, name: &'static str, seconds: f64) {
        let path = self.book.exit(name, seconds);
        self.write_line(&Event::SpanEnd { path, seconds });
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Collects events in memory; the sink integration tests are written
/// against this.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: RefCell<Vec<Event>>,
    book: SpanBook,
}

impl MemorySink {
    /// Fresh, empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Borrow all recorded events in order.
    pub fn events(&self) -> Ref<'_, Vec<Event>> {
        self.events.borrow()
    }

    /// Clone the events of one `"type"` tag.
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.kind() == kind)
            .cloned()
            .collect()
    }

    /// Total increments recorded under a counter name.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, delta } if n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: &Event) {
        match event {
            Event::RunStart(_) => self.book.reset(),
            Event::RunEnd(_) => {
                let summary = Event::TimingSummary(self.book.summary());
                self.events.borrow_mut().push(summary);
            }
            _ => {}
        }
        self.events.borrow_mut().push(event.clone());
    }

    fn span_enter(&self, name: &'static str) {
        self.book.enter(name);
    }

    fn span_exit(&self, name: &'static str, seconds: f64) {
        let path = self.book.exit(name, seconds);
        self.events
            .borrow_mut()
            .push(Event::SpanEnd { path, seconds });
    }
}

/// Human-readable progress on stderr, gated by verbosity:
///
/// * `0` — run boundaries, convergence, and the timing table;
/// * `1` — plus epochs, counters, and gauges;
/// * `2` — plus every span closure.
pub struct StderrSink {
    verbosity: u8,
    book: SpanBook,
}

impl StderrSink {
    /// Sink at the given verbosity.
    pub fn new(verbosity: u8) -> Self {
        StderrSink {
            verbosity,
            book: SpanBook::new(),
        }
    }
}

impl Recorder for StderrSink {
    fn record(&self, event: &Event) {
        match event {
            Event::RunStart(m) => {
                self.book.reset();
                eprintln!(
                    "[obs] run {} · {} {} ({}) seed={}",
                    m.run_id, m.dataset, m.model, m.variant, m.seed
                );
            }
            Event::RunEnd(s) => {
                for entry in self.book.summary() {
                    eprintln!(
                        "[obs]   {:<28} {:>6}x {:>9.3}s",
                        entry.path, entry.count, entry.total_seconds
                    );
                }
                eprintln!(
                    "[obs] done in {:.2}s · ACC {:.3} NMI {:.3} ARI {:.3} · converged_at={:?}",
                    s.train_seconds, s.final_acc, s.final_nmi, s.final_ari, s.converged_at
                );
            }
            Event::Convergence { epoch } => {
                eprintln!("[obs] converged at clustering epoch {epoch}");
            }
            Event::Epoch(e) if self.verbosity >= 1 => {
                eprintln!(
                    "[obs] epoch {:>4} loss {:>10.4} |omega| {:>5}{}",
                    e.epoch,
                    e.loss,
                    e.omega_size,
                    e.acc.map(|a| format!(" acc {a:.3}")).unwrap_or_default()
                );
            }
            Event::Counter { name, delta } if self.verbosity >= 1 => {
                eprintln!("[obs] counter {name} += {delta}");
            }
            Event::Gauge { name, epoch, value } if self.verbosity >= 1 => match epoch {
                Some(ep) => eprintln!("[obs] gauge {name}[{ep}] = {value}"),
                None => eprintln!("[obs] gauge {name} = {value}"),
            },
            _ => {}
        }
    }

    fn span_enter(&self, name: &'static str) {
        self.book.enter(name);
    }

    fn span_exit(&self, name: &'static str, seconds: f64) {
        let path = self.book.exit(name, seconds);
        if self.verbosity >= 2 {
            eprintln!("[obs] span {path} {seconds:.4}s");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RunManifest, RunSummary};
    use crate::json::Json;
    use crate::recorder::span;

    fn manifest() -> RunManifest {
        RunManifest {
            run_id: "t".into(),
            binary: "test".into(),
            dataset: "d".into(),
            model: "m".into(),
            variant: "r".into(),
            seed: 1,
            workspace_version: "0.1.0".into(),
            config: Json::Obj(vec![]),
        }
    }

    fn summary() -> RunSummary {
        RunSummary {
            train_seconds: 0.5,
            converged_at: None,
            epochs_run: 2,
            final_acc: 0.5,
            final_nmi: 0.5,
            final_ari: 0.5,
            degraded: false,
        }
    }

    #[test]
    fn memory_sink_emits_timing_summary_before_run_end() {
        let sink = MemorySink::new();
        sink.record(&Event::RunStart(manifest()));
        {
            let _outer = span(&sink, "clustering");
            let _inner = span(&sink, "step");
        }
        sink.record(&Event::RunEnd(summary()));
        let events = sink.events();
        let kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            vec!["run_start", "span", "span", "timing_summary", "run_end"]
        );
        let Event::TimingSummary(entries) = &events[3] else {
            panic!("expected timing summary");
        };
        assert!(entries.iter().any(|e| e.path == "clustering/step"));
        assert!(entries.iter().any(|e| e.path == "clustering"));
    }

    #[test]
    fn run_start_resets_the_timing_table() {
        let sink = MemorySink::new();
        sink.record(&Event::RunStart(manifest()));
        span(&sink, "a").stop();
        sink.record(&Event::RunEnd(summary()));
        sink.record(&Event::RunStart(manifest()));
        span(&sink, "b").stop();
        sink.record(&Event::RunEnd(summary()));
        let summaries = sink.of_kind("timing_summary");
        let Event::TimingSummary(second) = &summaries[1] else {
            panic!("expected timing summary");
        };
        assert!(second.iter().all(|e| e.path != "a"), "stale span survived");
        assert!(second.iter().any(|e| e.path == "b"));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "rgae-obs-test-{}.jsonl",
            crate::recorder::timestamp_ms()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event::RunStart(manifest()));
        span(&sink, "clustering").stop();
        sink.count("label_clamp", 2);
        sink.record(&Event::RunEnd(summary()));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| Event::from_jsonl(l).expect("parseable line"))
            .collect();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind(), "run_start");
        assert_eq!(events.last().unwrap().kind(), "run_end");
        assert!(events.iter().any(|e| e.kind() == "timing_summary"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counter_total_sums_increments() {
        let sink = MemorySink::new();
        sink.count("x", 2);
        sink.count("x", 0); // suppressed: zero deltas are not recorded
        sink.count("x", 3);
        sink.count("y", 1);
        assert_eq!(sink.counter_total("x"), 5);
        assert_eq!(sink.events().len(), 3);
    }
}

//! The [`Recorder`] trait, the no-op recorder, and RAII span timers.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::event::{Event, TimingEntry};

/// A destination for run-log events.
///
/// Training code holds a `&dyn Recorder` and stays agnostic of where events
/// go (a JSONL file, memory, stderr, or nowhere). Implementations use
/// interior mutability; the training stack is single-threaded.
pub trait Recorder {
    /// Whether events are consumed at all. Hot paths may skip building
    /// event payloads when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&self, event: &Event);

    /// Open a nested span scope. Paired with [`Recorder::span_exit`];
    /// prefer the RAII [`span`] helper over calling these directly.
    fn span_enter(&self, name: &'static str);

    /// Close the innermost scope `name`, reporting its wall-clock seconds.
    fn span_exit(&self, name: &'static str, seconds: f64);

    /// Increment a monotonic counter.
    fn count(&self, name: &str, delta: u64) {
        if self.enabled() && delta > 0 {
            self.record(&Event::Counter {
                name: name.to_owned(),
                delta,
            });
        }
    }

    /// Record a point-in-time measurement.
    fn gauge(&self, name: &str, epoch: Option<usize>, value: f64) {
        if self.enabled() {
            self.record(&Event::Gauge {
                name: name.to_owned(),
                epoch,
                value,
            });
        }
    }
}

/// The default recorder: consumes nothing.
///
/// `enabled()` is `false`, so callers guard payload construction and the
/// instrumented trainer's overhead stays within noise (< 2% on a quick run).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

/// A `'static` no-op instance for default-recorder plumbing.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}

    fn span_enter(&self, _name: &'static str) {}

    fn span_exit(&self, _name: &'static str, _seconds: f64) {}
}

/// RAII span timer: measures wall-clock time from construction until
/// [`SpanTimer::stop`] or drop, then reports it to the recorder.
///
/// Time is always measured (two `Instant` reads — nanoseconds), so the
/// elapsed value returned by `stop` is valid even under [`NoopRecorder`];
/// only the *reporting* is gated on `enabled()`.
pub struct SpanTimer<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
    start: Instant,
    stopped: bool,
}

/// Open a span. Nesting follows construction/drop order.
pub fn span<'a>(rec: &'a dyn Recorder, name: &'static str) -> SpanTimer<'a> {
    rec.span_enter(name);
    SpanTimer {
        rec,
        name,
        start: Instant::now(),
        stopped: false,
    }
}

impl SpanTimer<'_> {
    /// Close the span and return its elapsed seconds.
    pub fn stop(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        if self.stopped {
            return 0.0;
        }
        self.stopped = true;
        let seconds = self.start.elapsed().as_secs_f64();
        self.rec.span_exit(self.name, seconds);
        seconds
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Shared span bookkeeping for sinks: tracks the nesting stack and
/// aggregates per-path totals for the end-of-run timing table.
#[derive(Debug, Default)]
pub struct SpanBook {
    stack: RefCell<Vec<&'static str>>,
    totals: RefCell<BTreeMap<String, (u64, f64)>>,
}

impl SpanBook {
    /// Fresh, empty book.
    pub fn new() -> Self {
        SpanBook::default()
    }

    /// Push a scope.
    pub fn enter(&self, name: &'static str) {
        self.stack.borrow_mut().push(name);
    }

    /// Pop back to (and including) `name`, accumulate its timing, and
    /// return the full slash-joined path. Robust to scopes that leaked
    /// without an exit (they are discarded).
    pub fn exit(&self, name: &'static str, seconds: f64) -> String {
        let mut stack = self.stack.borrow_mut();
        while let Some(top) = stack.pop() {
            if top == name {
                break;
            }
        }
        let mut path = String::new();
        for part in stack.iter() {
            path.push_str(part);
            path.push('/');
        }
        path.push_str(name);
        let mut totals = self.totals.borrow_mut();
        let entry = totals.entry(path.clone()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += seconds;
        path
    }

    /// The aggregated timing table, sorted by path.
    pub fn summary(&self) -> Vec<TimingEntry> {
        self.totals
            .borrow()
            .iter()
            .map(|(path, &(count, total_seconds))| TimingEntry {
                path: path.clone(),
                count,
                total_seconds,
            })
            .collect()
    }

    /// Reset both the stack and the totals (called on `run_start` so each
    /// run gets its own table).
    pub fn reset(&self) {
        self.stack.borrow_mut().clear();
        self.totals.borrow_mut().clear();
    }
}

/// Milliseconds since the Unix epoch (for run ids).
pub fn timestamp_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.count("x", 3);
        rec.gauge("y", None, 1.0);
        let t = span(&rec, "outer");
        assert!(t.stop() >= 0.0);
    }

    #[test]
    fn span_book_builds_nested_paths() {
        let book = SpanBook::new();
        book.enter("a");
        book.enter("b");
        assert_eq!(book.exit("b", 0.5), "a/b");
        assert_eq!(book.exit("a", 1.0), "a");
        book.enter("a");
        book.enter("b");
        assert_eq!(book.exit("b", 0.25), "a/b");
        book.exit("a", 2.0);
        let summary = book.summary();
        let b = summary.iter().find(|e| e.path == "a/b").unwrap();
        assert_eq!(b.count, 2);
        assert!((b.total_seconds - 0.75).abs() < 1e-12);
        let a = summary.iter().find(|e| e.path == "a").unwrap();
        assert_eq!(a.count, 2);
    }

    #[test]
    fn span_book_recovers_from_leaked_scopes() {
        let book = SpanBook::new();
        book.enter("outer");
        book.enter("leaked");
        // `leaked` never exits; exiting `outer` discards it.
        assert_eq!(book.exit("outer", 1.0), "outer");
        assert!(book.stack.borrow().is_empty());
    }
}

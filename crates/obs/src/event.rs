//! The run-log event schema.
//!
//! Every event serialises to one JSONL line — an object whose `"type"` field
//! tags the variant — and parses back losslessly, so a results directory of
//! `.jsonl` files is a replayable record of *what ran, with which
//! configuration, and where the time went*.

use crate::json::Json;

/// Everything known about a run before its first epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Unique id (binary, dataset, model, seed, and wall-clock millis).
    pub run_id: String,
    /// The experiment binary (e.g. `table1_2`).
    pub binary: String,
    /// Dataset preset name.
    pub dataset: String,
    /// Model name (e.g. `GMM-VGAE`).
    pub model: String,
    /// Protocol variant (`plain`, `r`, …).
    pub variant: String,
    /// Trial seed.
    pub seed: u64,
    /// Workspace crate version at build time.
    pub workspace_version: String,
    /// The full training configuration, pre-rendered to JSON by the layer
    /// that owns the config type.
    pub config: Json,
}

/// One clustering-phase epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochEvent {
    /// Clustering-phase epoch index.
    pub epoch: usize,
    /// Training loss.
    pub loss: f64,
    /// |Ω|.
    pub omega_size: usize,
    /// Accuracy restricted to Ω.
    pub omega_acc: f64,
    /// Accuracy over 𝒱 − Ω.
    pub rest_acc: f64,
    /// Links added by Υ that agree / disagree with the labels. `None` on
    /// non-eval epochs, where the graph diff is skipped.
    pub added_links: Option<(usize, usize)>,
    /// Links dropped by Υ that agree / disagree with the labels. `None` on
    /// non-eval epochs.
    pub dropped_links: Option<(usize, usize)>,
    /// Hungarian-matched accuracy (eval epochs only).
    pub acc: Option<f64>,
    /// NMI (eval epochs only).
    pub nmi: Option<f64>,
    /// ARI (eval epochs only).
    pub ari: Option<f64>,
    /// Λ_FR with the Ξ restriction.
    pub lambda_fr_restricted: Option<f64>,
    /// Λ_FR without the restriction.
    pub lambda_fr_full: Option<f64>,
    /// Λ_FD of the current self-supervision graph.
    pub lambda_fd_current: Option<f64>,
    /// Λ_FD of the vanilla graph.
    pub lambda_fd_vanilla: Option<f64>,
}

/// Final state of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Wall-clock seconds of the clustering phase, measured by the
    /// recorder's own span timer.
    pub train_seconds: f64,
    /// Epoch at which |Ω| ≥ threshold·N, if reached.
    pub converged_at: Option<usize>,
    /// Clustering-phase epochs actually run.
    pub epochs_run: usize,
    /// Final Hungarian-matched accuracy.
    pub final_acc: f64,
    /// Final NMI.
    pub final_nmi: f64,
    /// Final ARI.
    pub final_ari: f64,
    /// `true` when the recovery policy exhausted its retries and the run
    /// finished on last-good parameters instead of training to completion.
    pub degraded: bool,
}

/// Aggregated time spent under one span path.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingEntry {
    /// Slash-joined nested span path (e.g. `clustering/step`).
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total seconds across all closures.
    pub total_seconds: f64,
}

/// A run-log event. See the module docs for the JSONL mapping.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Run start: full provenance.
    RunStart(RunManifest),
    /// One clustering-phase epoch.
    Epoch(EpochEvent),
    /// A span closed; `path` is the slash-joined nesting.
    SpanEnd {
        /// Nested span path.
        path: String,
        /// Elapsed seconds.
        seconds: f64,
    },
    /// Monotonic counter increment (e.g. `label_clamp`, `edges_added`).
    Counter {
        /// Counter name.
        name: String,
        /// Increment.
        delta: u64,
    },
    /// Point-in-time measurement (e.g. `omega_size` per epoch).
    Gauge {
        /// Gauge name.
        name: String,
        /// Epoch the measurement belongs to, when applicable.
        epoch: Option<usize>,
        /// Measured value.
        value: f64,
    },
    /// The |Ω| ≥ threshold·N criterion fired.
    Convergence {
        /// Epoch of convergence.
        epoch: usize,
    },
    /// A checkpoint interaction: `action` is `saved`, `loaded`, `fallback`
    /// (a newer corrupt file was skipped in favour of this one), or
    /// `corrupt` (a candidate failed CRC/decode validation).
    Checkpoint {
        /// What happened (`saved` / `loaded` / `fallback` / `corrupt`).
        action: String,
        /// Checkpoint file involved.
        path: String,
        /// Training phase recorded in (or expected from) the file.
        phase: String,
        /// Next epoch the checkpoint would resume at, when known.
        epoch: Option<usize>,
    },
    /// A numerical-health guard observation: a tripped or warning-level
    /// finding from the `rgae-guard` HealthMonitor, or a deterministic fault
    /// injection firing.
    Guard {
        /// Finding kind (`nonfinite_loss`, `loss_spike`, `nonfinite_grad`,
        /// `nonfinite_param`, `cluster_collapse`, `degenerate_omega`,
        /// `empty_omega`, `fault_injected`).
        kind: String,
        /// Severity (`trip`, `warn`, or `info`).
        severity: String,
        /// Training phase the finding belongs to.
        phase: String,
        /// Epoch within the phase, when applicable.
        epoch: Option<usize>,
        /// Observed value behind the finding, when numeric.
        value: Option<f64>,
        /// Threshold the value was compared against, when applicable.
        threshold: Option<f64>,
        /// Human-readable context.
        detail: String,
    },
    /// A recovery action taken by the trainer's RecoveryPolicy after a
    /// tripped guard.
    Recovery {
        /// What happened (`rollback`, `retry`, or `degraded`).
        action: String,
        /// Training phase the recovery applies to.
        phase: String,
        /// Epoch the guard tripped at, when applicable.
        epoch: Option<usize>,
        /// Retry attempt number (1-based; 0 for terminal `degraded`).
        attempt: usize,
        /// Cumulative learning-rate scale applied for the next attempt.
        lr_scale: f64,
        /// Human-readable context (e.g. the checkpoint rolled back to).
        detail: String,
    },
    /// Per-run aggregated timing table (emitted before `RunEnd`).
    TimingSummary(Vec<TimingEntry>),
    /// Run end: final metrics and wall-clock time.
    RunEnd(RunSummary),
}

fn opt_num(x: Option<f64>) -> Json {
    x.map_or(Json::Null, Json::Num)
}

fn opt_int(x: Option<usize>) -> Json {
    x.map_or(Json::Null, |v| Json::Int(v as i64))
}

fn get_f64(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

fn get_opt_f64(v: &Json, key: &str) -> Option<f64> {
    // Missing and null both decode to None.
    get_f64(v, key)
}

fn get_usize(v: &Json, key: &str) -> Option<usize> {
    v.get(key).and_then(Json::as_usize)
}

fn get_str(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_owned)
}

impl Event {
    /// The `"type"` tag this event serialises under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart(_) => "run_start",
            Event::Epoch(_) => "epoch",
            Event::SpanEnd { .. } => "span",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Convergence { .. } => "convergence",
            Event::Checkpoint { .. } => "checkpoint",
            Event::Guard { .. } => "guard",
            Event::Recovery { .. } => "recovery",
            Event::TimingSummary(_) => "timing_summary",
            Event::RunEnd(_) => "run_end",
        }
    }

    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![("type".into(), Json::Str(self.kind().into()))];
        match self {
            Event::RunStart(m) => {
                fields.push(("run_id".into(), Json::Str(m.run_id.clone())));
                fields.push(("binary".into(), Json::Str(m.binary.clone())));
                fields.push(("dataset".into(), Json::Str(m.dataset.clone())));
                fields.push(("model".into(), Json::Str(m.model.clone())));
                fields.push(("variant".into(), Json::Str(m.variant.clone())));
                fields.push(("seed".into(), Json::Int(m.seed as i64)));
                fields.push((
                    "workspace_version".into(),
                    Json::Str(m.workspace_version.clone()),
                ));
                fields.push(("config".into(), m.config.clone()));
            }
            Event::Epoch(e) => {
                fields.push(("epoch".into(), Json::Int(e.epoch as i64)));
                fields.push(("loss".into(), Json::Num(e.loss)));
                fields.push(("omega_size".into(), Json::Int(e.omega_size as i64)));
                fields.push(("omega_acc".into(), Json::Num(e.omega_acc)));
                fields.push(("rest_acc".into(), Json::Num(e.rest_acc)));
                fields.push(("added_true".into(), opt_int(e.added_links.map(|p| p.0))));
                fields.push(("added_false".into(), opt_int(e.added_links.map(|p| p.1))));
                fields.push(("dropped_true".into(), opt_int(e.dropped_links.map(|p| p.0))));
                fields.push((
                    "dropped_false".into(),
                    opt_int(e.dropped_links.map(|p| p.1)),
                ));
                fields.push(("acc".into(), opt_num(e.acc)));
                fields.push(("nmi".into(), opt_num(e.nmi)));
                fields.push(("ari".into(), opt_num(e.ari)));
                fields.push((
                    "lambda_fr_restricted".into(),
                    opt_num(e.lambda_fr_restricted),
                ));
                fields.push(("lambda_fr_full".into(), opt_num(e.lambda_fr_full)));
                fields.push(("lambda_fd_current".into(), opt_num(e.lambda_fd_current)));
                fields.push(("lambda_fd_vanilla".into(), opt_num(e.lambda_fd_vanilla)));
            }
            Event::SpanEnd { path, seconds } => {
                fields.push(("path".into(), Json::Str(path.clone())));
                fields.push(("seconds".into(), Json::Num(*seconds)));
            }
            Event::Counter { name, delta } => {
                fields.push(("name".into(), Json::Str(name.clone())));
                fields.push(("delta".into(), Json::Int(*delta as i64)));
            }
            Event::Gauge { name, epoch, value } => {
                fields.push(("name".into(), Json::Str(name.clone())));
                fields.push(("epoch".into(), opt_int(*epoch)));
                fields.push(("value".into(), Json::Num(*value)));
            }
            Event::Convergence { epoch } => {
                fields.push(("epoch".into(), Json::Int(*epoch as i64)));
            }
            Event::Checkpoint {
                action,
                path,
                phase,
                epoch,
            } => {
                fields.push(("action".into(), Json::Str(action.clone())));
                fields.push(("path".into(), Json::Str(path.clone())));
                fields.push(("phase".into(), Json::Str(phase.clone())));
                fields.push(("epoch".into(), opt_int(*epoch)));
            }
            Event::Guard {
                kind,
                severity,
                phase,
                epoch,
                value,
                threshold,
                detail,
            } => {
                fields.push(("kind".into(), Json::Str(kind.clone())));
                fields.push(("severity".into(), Json::Str(severity.clone())));
                fields.push(("phase".into(), Json::Str(phase.clone())));
                fields.push(("epoch".into(), opt_int(*epoch)));
                fields.push(("value".into(), opt_num(*value)));
                fields.push(("threshold".into(), opt_num(*threshold)));
                fields.push(("detail".into(), Json::Str(detail.clone())));
            }
            Event::Recovery {
                action,
                phase,
                epoch,
                attempt,
                lr_scale,
                detail,
            } => {
                fields.push(("action".into(), Json::Str(action.clone())));
                fields.push(("phase".into(), Json::Str(phase.clone())));
                fields.push(("epoch".into(), opt_int(*epoch)));
                fields.push(("attempt".into(), Json::Int(*attempt as i64)));
                fields.push(("lr_scale".into(), Json::Num(*lr_scale)));
                fields.push(("detail".into(), Json::Str(detail.clone())));
            }
            Event::TimingSummary(entries) => {
                let arr = entries
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("path".into(), Json::Str(e.path.clone())),
                            ("count".into(), Json::Int(e.count as i64)),
                            ("total_seconds".into(), Json::Num(e.total_seconds)),
                        ])
                    })
                    .collect();
                fields.push(("spans".into(), Json::Arr(arr)));
            }
            Event::RunEnd(s) => {
                fields.push(("train_seconds".into(), Json::Num(s.train_seconds)));
                fields.push(("converged_at".into(), opt_int(s.converged_at)));
                fields.push(("epochs_run".into(), Json::Int(s.epochs_run as i64)));
                fields.push(("final_acc".into(), Json::Num(s.final_acc)));
                fields.push(("final_nmi".into(), Json::Num(s.final_nmi)));
                fields.push(("final_ari".into(), Json::Num(s.final_ari)));
                fields.push(("degraded".into(), Json::Bool(s.degraded)));
            }
        }
        Json::Obj(fields)
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().encode()
    }

    /// Decode from the [`Event::to_json`] representation.
    pub fn from_json(v: &Json) -> Option<Event> {
        match v.get("type")?.as_str()? {
            "run_start" => Some(Event::RunStart(RunManifest {
                run_id: get_str(v, "run_id")?,
                binary: get_str(v, "binary")?,
                dataset: get_str(v, "dataset")?,
                model: get_str(v, "model")?,
                variant: get_str(v, "variant")?,
                seed: v.get("seed")?.as_i64()? as u64,
                workspace_version: get_str(v, "workspace_version")?,
                config: v.get("config")?.clone(),
            })),
            "epoch" => Some(Event::Epoch(EpochEvent {
                epoch: get_usize(v, "epoch")?,
                loss: get_f64(v, "loss")?,
                omega_size: get_usize(v, "omega_size")?,
                omega_acc: get_f64(v, "omega_acc")?,
                rest_acc: get_f64(v, "rest_acc")?,
                added_links: match (get_usize(v, "added_true"), get_usize(v, "added_false")) {
                    (Some(t), Some(f)) => Some((t, f)),
                    _ => None,
                },
                dropped_links: match (get_usize(v, "dropped_true"), get_usize(v, "dropped_false")) {
                    (Some(t), Some(f)) => Some((t, f)),
                    _ => None,
                },
                acc: get_opt_f64(v, "acc"),
                nmi: get_opt_f64(v, "nmi"),
                ari: get_opt_f64(v, "ari"),
                lambda_fr_restricted: get_opt_f64(v, "lambda_fr_restricted"),
                lambda_fr_full: get_opt_f64(v, "lambda_fr_full"),
                lambda_fd_current: get_opt_f64(v, "lambda_fd_current"),
                lambda_fd_vanilla: get_opt_f64(v, "lambda_fd_vanilla"),
            })),
            "span" => Some(Event::SpanEnd {
                path: get_str(v, "path")?,
                seconds: get_f64(v, "seconds")?,
            }),
            "counter" => Some(Event::Counter {
                name: get_str(v, "name")?,
                delta: v.get("delta")?.as_i64()? as u64,
            }),
            "gauge" => Some(Event::Gauge {
                name: get_str(v, "name")?,
                epoch: get_usize(v, "epoch"),
                value: get_f64(v, "value")?,
            }),
            "convergence" => Some(Event::Convergence {
                epoch: get_usize(v, "epoch")?,
            }),
            "checkpoint" => Some(Event::Checkpoint {
                action: get_str(v, "action")?,
                path: get_str(v, "path")?,
                phase: get_str(v, "phase")?,
                epoch: get_usize(v, "epoch"),
            }),
            "guard" => Some(Event::Guard {
                kind: get_str(v, "kind")?,
                severity: get_str(v, "severity")?,
                phase: get_str(v, "phase")?,
                epoch: get_usize(v, "epoch"),
                value: get_opt_f64(v, "value"),
                threshold: get_opt_f64(v, "threshold"),
                detail: get_str(v, "detail")?,
            }),
            "recovery" => Some(Event::Recovery {
                action: get_str(v, "action")?,
                phase: get_str(v, "phase")?,
                epoch: get_usize(v, "epoch"),
                attempt: get_usize(v, "attempt")?,
                lr_scale: get_f64(v, "lr_scale")?,
                detail: get_str(v, "detail")?,
            }),
            "timing_summary" => {
                let entries = v
                    .get("spans")?
                    .as_arr()?
                    .iter()
                    .map(|e| {
                        Some(TimingEntry {
                            path: get_str(e, "path")?,
                            count: e.get("count")?.as_i64()? as u64,
                            total_seconds: get_f64(e, "total_seconds")?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Event::TimingSummary(entries))
            }
            "run_end" => Some(Event::RunEnd(RunSummary {
                train_seconds: get_f64(v, "train_seconds")?,
                converged_at: get_usize(v, "converged_at"),
                epochs_run: get_usize(v, "epochs_run")?,
                final_acc: get_f64(v, "final_acc")?,
                final_nmi: get_f64(v, "final_nmi")?,
                final_ari: get_f64(v, "final_ari")?,
                // Absent in pre-guard logs: default to a non-degraded run.
                degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
            })),
            _ => None,
        }
    }

    /// Parse a JSONL line back into an event.
    pub fn from_jsonl(line: &str) -> Option<Event> {
        Event::from_json(&Json::parse(line).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar of every event variant, with Options both set and unset.
    pub(crate) fn exemplars() -> Vec<Event> {
        vec![
            Event::RunStart(RunManifest {
                run_id: "table1_2-cora-like-GAE-plain-42-0".into(),
                binary: "table1_2".into(),
                dataset: "cora-like".into(),
                model: "GAE".into(),
                variant: "plain".into(),
                seed: 42,
                workspace_version: "0.1.0".into(),
                config: Json::Obj(vec![
                    ("gamma".into(), Json::Num(0.001)),
                    ("m1".into(), Json::Int(20)),
                ]),
            }),
            Event::Epoch(EpochEvent {
                epoch: 3,
                loss: 1.25,
                omega_size: 120,
                omega_acc: 0.9,
                rest_acc: 0.4,
                added_links: Some((10, 2)),
                dropped_links: Some((0, 7)),
                acc: Some(0.7),
                nmi: None,
                ari: Some(0.5),
                lambda_fr_restricted: Some(0.8),
                lambda_fr_full: None,
                lambda_fd_current: None,
                lambda_fd_vanilla: Some(0.3),
            }),
            // Non-eval epoch: the graph diff and metrics are skipped.
            Event::Epoch(EpochEvent {
                epoch: 4,
                loss: 1.2,
                omega_size: 121,
                omega_acc: 0.9,
                rest_acc: 0.4,
                added_links: None,
                dropped_links: None,
                acc: None,
                nmi: None,
                ari: None,
                lambda_fr_restricted: None,
                lambda_fr_full: None,
                lambda_fd_current: None,
                lambda_fd_vanilla: None,
            }),
            Event::Checkpoint {
                action: "saved".into(),
                path: "ckpt/state.rgck".into(),
                phase: "clustering".into(),
                epoch: Some(25),
            },
            Event::Checkpoint {
                action: "corrupt".into(),
                path: "ckpt/state.rgck".into(),
                phase: "unknown".into(),
                epoch: None,
            },
            Event::SpanEnd {
                path: "clustering/upsilon".into(),
                seconds: 0.0125,
            },
            Event::Counter {
                name: "label_clamp".into(),
                delta: 4,
            },
            Event::Gauge {
                name: "omega_size".into(),
                epoch: Some(12),
                value: 310.0,
            },
            Event::Gauge {
                name: "kmeans_inertia".into(),
                epoch: None,
                value: 87.5,
            },
            Event::Convergence { epoch: 31 },
            Event::Guard {
                kind: "nonfinite_loss".into(),
                severity: "trip".into(),
                phase: "clustering".into(),
                epoch: Some(12),
                value: None,
                threshold: None,
                detail: "loss is NaN".into(),
            },
            Event::Guard {
                kind: "loss_spike".into(),
                severity: "trip".into(),
                phase: "pretrain".into(),
                epoch: None,
                value: Some(412.5),
                threshold: Some(31.25),
                detail: "loss exceeded 25x trailing median".into(),
            },
            Event::Recovery {
                action: "retry".into(),
                phase: "clustering".into(),
                epoch: Some(12),
                attempt: 1,
                lr_scale: 0.5,
                detail: "resuming from epoch 10".into(),
            },
            Event::Recovery {
                action: "degraded".into(),
                phase: "clustering".into(),
                epoch: None,
                attempt: 0,
                lr_scale: 0.25,
                detail: "retries exhausted; finishing on last-good params".into(),
            },
            Event::TimingSummary(vec![
                TimingEntry {
                    path: "clustering/step".into(),
                    count: 60,
                    total_seconds: 1.5,
                },
                TimingEntry {
                    path: "clustering".into(),
                    count: 1,
                    total_seconds: 2.0,
                },
            ]),
            Event::RunEnd(RunSummary {
                train_seconds: 2.0,
                converged_at: Some(31),
                epochs_run: 32,
                final_acc: 0.71,
                final_nmi: 0.55,
                final_ari: 0.49,
                degraded: false,
            }),
            Event::RunEnd(RunSummary {
                train_seconds: 2.5,
                converged_at: None,
                epochs_run: 20,
                final_acc: 0.42,
                final_nmi: 0.31,
                final_ari: 0.22,
                degraded: true,
            }),
        ]
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        for ev in exemplars() {
            let line = ev.to_jsonl();
            let back =
                Event::from_jsonl(&line).unwrap_or_else(|| panic!("failed to parse back: {line}"));
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn none_options_round_trip_as_null() {
        let ev = Event::RunEnd(RunSummary {
            train_seconds: 1.0,
            converged_at: None,
            epochs_run: 60,
            final_acc: 0.5,
            final_nmi: 0.5,
            final_ari: 0.5,
            degraded: false,
        });
        let line = ev.to_jsonl();
        assert!(line.contains("\"converged_at\":null"));
        assert_eq!(Event::from_jsonl(&line).unwrap(), ev);
    }

    #[test]
    fn run_end_without_degraded_field_defaults_to_false() {
        // Logs written before the guard layer existed have no `degraded` key.
        let line = r#"{"type":"run_end","train_seconds":1.0,"converged_at":null,"epochs_run":5,"final_acc":0.5,"final_nmi":0.4,"final_ari":0.3}"#;
        match Event::from_jsonl(line).unwrap() {
            Event::RunEnd(s) => assert!(!s.degraded),
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn kind_matches_tag() {
        for ev in exemplars() {
            let v = ev.to_json();
            assert_eq!(v.get("type").unwrap().as_str().unwrap(), ev.kind());
        }
    }

    #[test]
    fn unknown_type_is_rejected() {
        assert_eq!(Event::from_jsonl(r#"{"type":"martian"}"#), None);
        assert_eq!(Event::from_jsonl("not json"), None);
    }
}

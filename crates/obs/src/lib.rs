//! `rgae-obs`: structured run tracing for the R-GAE training stack.
//!
//! A dependency-light observability layer: training code emits typed
//! [`Event`]s through a [`Recorder`], and sinks decide where they go —
//! a JSONL file ([`JsonlSink`]), memory ([`MemorySink`], for tests), or
//! stderr ([`StderrSink`]). [`SpanTimer`]s measure nested phases (pretrain,
//! Ξ selection, Υ rewrite, clustering init, eval, Λ diagnostics) and every
//! run ends with an aggregated timing table; counters and gauges capture
//! the |Ω| trajectory, edge edits, and label-clamp events; a
//! [`RunManifest`] records what ran with which config and seed.
//!
//! The default recorder is [`NoopRecorder`] (`enabled() == false`), so the
//! instrumented trainer costs two `Instant` reads per span when tracing is
//! off.
//!
//! # Example
//!
//! ```
//! use rgae_obs::{span, Event, MemorySink, Recorder};
//!
//! let sink = MemorySink::new();
//! let rec: &dyn Recorder = &sink;
//! let timer = span(rec, "clustering");
//! rec.count("edges_added", 12);
//! rec.gauge("omega_size", Some(0), 310.0);
//! let seconds = timer.stop();
//! assert!(seconds >= 0.0);
//! assert_eq!(sink.counter_total("edges_added"), 12);
//! ```

mod event;
mod json;
mod recorder;
mod sinks;

pub use event::{EpochEvent, Event, RunManifest, RunSummary, TimingEntry};
pub use json::{Json, ParseError};
pub use recorder::{span, timestamp_ms, NoopRecorder, Recorder, SpanBook, SpanTimer, NOOP};
pub use sinks::{JsonlSink, MemorySink, StderrSink};

//! Per-epoch numerical-health checks.

use crate::GuardConfig;
use rgae_linalg::Mat;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Informational (e.g. a fault injection firing as planned).
    Info,
    /// Suspicious but survivable; training continues on the same state.
    Warn,
    /// The epoch's state is unusable; the recovery policy takes over.
    Trip,
}

impl Severity {
    /// Lower-case tag used in run-log events.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Trip => "trip",
        }
    }
}

/// One health observation.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable machine-readable kind (`nonfinite_loss`, `loss_spike`, ...).
    pub kind: &'static str,
    /// How serious it is.
    pub severity: Severity,
    /// Observed value, when the finding is numeric and finite enough to log.
    pub value: Option<f64>,
    /// Threshold the value was compared against, when applicable.
    pub threshold: Option<f64>,
    /// Human-readable context.
    pub detail: String,
}

impl Finding {
    /// Whether this finding should trigger the recovery policy.
    pub fn is_trip(&self) -> bool {
        self.severity == Severity::Trip
    }
}

/// Cheap per-epoch health checks over losses, gradients, parameters,
/// soft assignments, and Ω.
///
/// The monitor only *observes* — it never mutates trainer state and never
/// consumes RNG, which is what keeps guarded fault-free runs bit-identical
/// to unguarded ones.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    cfg: GuardConfig,
    /// Trailing window of healthy (finite, non-spiking) losses.
    losses: Vec<f64>,
}

impl HealthMonitor {
    /// A monitor with the given thresholds and empty history.
    pub fn new(cfg: GuardConfig) -> Self {
        HealthMonitor {
            cfg,
            losses: Vec::new(),
        }
    }

    /// Forget all loss history. Called after a rollback so the retry is not
    /// judged against the diverged attempt's trailing window.
    pub fn reset(&mut self) {
        self.losses.clear();
    }

    /// Number of healthy losses currently in the trailing window.
    pub fn history_len(&self) -> usize {
        self.losses.len()
    }

    /// Check one epoch's loss: non-finite values and spikes against the
    /// trailing median both trip. A healthy loss enters the window.
    pub fn observe_loss(&mut self, loss: f64) -> Option<Finding> {
        if !loss.is_finite() {
            return Some(Finding {
                kind: "nonfinite_loss",
                severity: Severity::Trip,
                value: None,
                threshold: None,
                detail: format!("loss is {loss}"),
            });
        }
        if self.losses.len() >= self.cfg.spike_min_history {
            let median = self.trailing_median();
            // Median can legitimately be ~0 on converged objectives; a ratio
            // guard there would trip on noise.
            if median > 0.0 && loss > self.cfg.spike_factor * median {
                return Some(Finding {
                    kind: "loss_spike",
                    severity: Severity::Trip,
                    value: Some(loss),
                    threshold: Some(self.cfg.spike_factor * median),
                    detail: format!(
                        "loss {loss:.6e} exceeds {}x trailing median {median:.6e}",
                        self.cfg.spike_factor
                    ),
                });
            }
        }
        if self.losses.len() == self.cfg.spike_window {
            self.losses.remove(0);
        }
        self.losses.push(loss);
        None
    }

    /// Check the optimiser's non-finite-gradient counter delta since the
    /// previous epoch: any skipped update this epoch trips.
    pub fn observe_grad_skips(&self, delta: u64) -> Option<Finding> {
        if delta == 0 {
            return None;
        }
        Some(Finding {
            kind: "nonfinite_grad",
            severity: Severity::Trip,
            value: Some(delta as f64),
            threshold: None,
            detail: format!("{delta} optimiser update(s) skipped on non-finite gradients"),
        })
    }

    /// Check a caller-performed parameter scan (weights, biases, optimiser
    /// moments): non-finite parameters trip.
    pub fn observe_param_scan(&self, all_finite: bool) -> Option<Finding> {
        if all_finite || !self.cfg.check_params {
            return None;
        }
        Some(Finding {
            kind: "nonfinite_param",
            severity: Severity::Trip,
            value: None,
            threshold: None,
            detail: "exported parameter state contains non-finite values".into(),
        })
    }

    /// Check the soft-assignment matrix for collapsed clusters: a column
    /// whose mean mass is below `collapse_floor × (1/k)` warns.
    pub fn observe_assignments(&self, p: &Mat) -> Option<Finding> {
        let (n, k) = p.shape();
        if n == 0 || k == 0 {
            return None;
        }
        let floor = self.cfg.collapse_floor / k as f64;
        let masses = p.col_sums();
        let mut collapsed = 0usize;
        let mut min_mass = f64::INFINITY;
        for &m in &masses {
            let mean = m / n as f64;
            min_mass = min_mass.min(mean);
            if mean < floor {
                collapsed += 1;
            }
        }
        if collapsed == 0 {
            return None;
        }
        Some(Finding {
            kind: "cluster_collapse",
            severity: Severity::Warn,
            value: Some(min_mass),
            threshold: Some(floor),
            detail: format!("{collapsed}/{k} soft-assignment column(s) below the mass floor"),
        })
    }

    /// Check Ω coverage: `|Ω| / N` under the floor fraction warns.
    pub fn observe_omega(&self, omega_len: usize, n: usize) -> Option<Finding> {
        if n == 0 {
            return None;
        }
        let frac = omega_len as f64 / n as f64;
        if frac >= self.cfg.omega_floor {
            return None;
        }
        Some(Finding {
            kind: "degenerate_omega",
            severity: Severity::Warn,
            value: Some(frac),
            threshold: Some(self.cfg.omega_floor),
            detail: format!("|Omega| = {omega_len} of {n} nodes is below the floor fraction"),
        })
    }

    fn trailing_median(&self) -> f64 {
        let mut xs = self.losses.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("healthy losses are finite"));
        let mid = xs.len() / 2;
        if xs.len() % 2 == 1 {
            xs[mid]
        } else {
            0.5 * (xs[mid - 1] + xs[mid])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(GuardConfig::default())
    }

    #[test]
    fn nan_and_inf_losses_trip_immediately() {
        let mut m = monitor();
        let f = m.observe_loss(f64::NAN).expect("NaN must trip");
        assert_eq!(f.kind, "nonfinite_loss");
        assert!(f.is_trip());
        let f = m.observe_loss(f64::INFINITY).expect("inf must trip");
        assert_eq!(f.kind, "nonfinite_loss");
        assert_eq!(m.history_len(), 0, "tripped losses must not enter history");
    }

    #[test]
    fn spike_needs_history_then_trips_on_factor_over_median() {
        let mut m = monitor();
        // Early wild losses are tolerated while history is short.
        assert!(m.observe_loss(1e9).is_none());
        m.reset();
        for _ in 0..6 {
            assert!(m.observe_loss(1.0).is_none());
        }
        // 25x the median of 1.0 is the default threshold.
        assert!(m.observe_loss(24.0).is_none());
        let f = m.observe_loss(26.0).expect("spike must trip");
        assert_eq!(f.kind, "loss_spike");
        assert!(f.is_trip());
        assert!(f.value.unwrap() > f.threshold.unwrap() - 1e-9);
    }

    #[test]
    fn spike_window_is_bounded_and_reset_clears_it() {
        let cfg = GuardConfig {
            spike_window: 3,
            spike_min_history: 2,
            ..GuardConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        for i in 0..10 {
            assert!(m.observe_loss(1.0 + i as f64 * 0.01).is_none());
        }
        assert_eq!(m.history_len(), 3);
        m.reset();
        assert_eq!(m.history_len(), 0);
        // After reset the spike guard needs fresh history again.
        assert!(m.observe_loss(1e12).is_none());
    }

    #[test]
    fn zero_median_never_divides_into_a_trip() {
        let mut m = monitor();
        for _ in 0..8 {
            assert!(m.observe_loss(0.0).is_none());
        }
        assert!(
            m.observe_loss(5.0).is_none(),
            "ratio guard is off at median 0"
        );
    }

    #[test]
    fn grad_skip_delta_trips_only_when_positive() {
        let m = monitor();
        assert!(m.observe_grad_skips(0).is_none());
        let f = m.observe_grad_skips(3).unwrap();
        assert_eq!(f.kind, "nonfinite_grad");
        assert!(f.is_trip());
        assert_eq!(f.value, Some(3.0));
    }

    #[test]
    fn param_scan_respects_check_params_switch() {
        let m = monitor();
        assert!(m.observe_param_scan(true).is_none());
        assert_eq!(m.observe_param_scan(false).unwrap().kind, "nonfinite_param");
        let off = HealthMonitor::new(GuardConfig {
            check_params: false,
            ..GuardConfig::default()
        });
        assert!(off.observe_param_scan(false).is_none());
    }

    #[test]
    fn collapsed_assignment_column_warns() {
        let m = monitor();
        // Column 1 has (essentially) zero mass.
        let p = Mat::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.2, 0.0, 0.8],
        ])
        .unwrap();
        let f = m.observe_assignments(&p).expect("collapse must warn");
        assert_eq!(f.kind, "cluster_collapse");
        assert_eq!(f.severity, Severity::Warn);
        let healthy = Mat::full(4, 3, 1.0 / 3.0);
        assert!(m.observe_assignments(&healthy).is_none());
    }

    #[test]
    fn omega_floor_warns_below_fraction() {
        let m = monitor();
        assert!(m.observe_omega(500, 1000).is_none());
        let f = m.observe_omega(3, 1000).expect("0.3% coverage must warn");
        assert_eq!(f.kind, "degenerate_omega");
        assert_eq!(f.severity, Severity::Warn);
    }
}

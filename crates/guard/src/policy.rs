//! Bounded retry/backoff bookkeeping for guard recoveries.

/// What the trainer should do for one retry attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPlan {
    /// 1-based attempt number.
    pub attempt: usize,
    /// Cumulative learning-rate scale for this attempt relative to the
    /// original configuration (e.g. 0.25 on the second retry at backoff 0.5).
    pub lr_scale: f64,
    /// Salt for the deterministic RNG reseed; distinct per attempt so a
    /// retry does not replay the exact stochastic trajectory that diverged.
    pub reseed_salt: u64,
}

/// Counts rollback/retry attempts against a bound and prices each one.
///
/// The policy is pure bookkeeping — the trainer owns the actual rollback
/// (via `crates/ckpt`) and the LR/RNG mutations.
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    max_retries: usize,
    lr_backoff: f64,
    attempts: usize,
}

impl RecoveryPolicy {
    /// A fresh policy allowing `max_retries` attempts, scaling the learning
    /// rate by `lr_backoff` on each.
    pub fn new(max_retries: usize, lr_backoff: f64) -> Self {
        RecoveryPolicy {
            max_retries,
            lr_backoff,
            attempts: 0,
        }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Cumulative learning-rate scale after the attempts consumed so far.
    pub fn lr_scale(&self) -> f64 {
        self.lr_backoff.powi(self.attempts as i32)
    }

    /// Consume one retry. `None` once the bound is exhausted — the trainer
    /// then finishes on last-good parameters and marks the run degraded.
    pub fn next_retry(&mut self) -> Option<RetryPlan> {
        if self.attempts >= self.max_retries {
            return None;
        }
        self.attempts += 1;
        Some(RetryPlan {
            attempt: self.attempts,
            lr_scale: self.lr_backoff,
            reseed_salt: (self.attempts as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_are_bounded_and_backoff_compounds() {
        let mut p = RecoveryPolicy::new(2, 0.5);
        let a = p.next_retry().unwrap();
        assert_eq!(a.attempt, 1);
        assert_eq!(a.lr_scale, 0.5);
        let b = p.next_retry().unwrap();
        assert_eq!(b.attempt, 2);
        assert_eq!(b.lr_scale, 0.5);
        assert_eq!(p.lr_scale(), 0.25, "cumulative scale compounds");
        assert_eq!(p.next_retry(), None, "third attempt exceeds the bound");
        assert_eq!(p.attempts(), 2);
    }

    #[test]
    fn zero_retries_degrades_immediately() {
        let mut p = RecoveryPolicy::new(0, 0.5);
        assert_eq!(p.next_retry(), None);
        assert_eq!(p.lr_scale(), 1.0);
    }

    #[test]
    fn reseed_salts_are_distinct_and_deterministic() {
        let mut p = RecoveryPolicy::new(3, 0.5);
        let s1 = p.next_retry().unwrap().reseed_salt;
        let s2 = p.next_retry().unwrap().reseed_salt;
        assert_ne!(s1, s2);
        let mut q = RecoveryPolicy::new(3, 0.5);
        assert_eq!(q.next_retry().unwrap().reseed_salt, s1);
    }
}

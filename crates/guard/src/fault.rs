//! Deterministic fault injection.
//!
//! Faults are declared as `kind@epoch:N` specs (comma-separated in the
//! `RGAE_FAULT` environment variable) and fire exactly once at the named
//! clustering-phase epoch — including across rollback re-entries, so a
//! recovered retry does not re-poison itself. Byte-level checkpoint
//! corruption picks its offset with `Rng64`, keeping the damage reproducible
//! per epoch.

use std::fmt;

/// The supported fault kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Poison the optimiser's view of every gradient for one training step.
    NanGrad,
    /// Replace the epoch's reported loss with `+inf`.
    InfLoss,
    /// Replace the epoch's reported loss with NaN.
    NanLoss,
    /// Flip one byte of the latest on-disk checkpoint generation.
    CorruptCkpt,
}

impl FaultKind {
    /// Stable spec/tag name (`nan_grad`, `inf_loss`, `nan_loss`,
    /// `corrupt_ckpt`).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::NanGrad => "nan_grad",
            FaultKind::InfLoss => "inf_loss",
            FaultKind::NanLoss => "nan_loss",
            FaultKind::CorruptCkpt => "corrupt_ckpt",
        }
    }

    fn from_str(s: &str) -> Option<FaultKind> {
        match s {
            "nan_grad" => Some(FaultKind::NanGrad),
            "inf_loss" => Some(FaultKind::InfLoss),
            "nan_loss" => Some(FaultKind::NanLoss),
            "corrupt_ckpt" => Some(FaultKind::CorruptCkpt),
            _ => None,
        }
    }
}

/// One scheduled fault: a kind plus the clustering-phase epoch it fires at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Clustering-phase epoch to fire at.
    pub epoch: usize,
}

impl FaultSpec {
    /// Parse one `kind@epoch:N` spec.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let s = s.trim();
        let (kind_s, at) = s
            .split_once('@')
            .ok_or_else(|| format!("{s:?}: expected kind@epoch:N"))?;
        let kind = FaultKind::from_str(kind_s.trim()).ok_or_else(|| {
            format!(
                "{s:?}: unknown fault kind {kind_s:?} (nan_grad, inf_loss, nan_loss, corrupt_ckpt)"
            )
        })?;
        let epoch_s = at
            .trim()
            .strip_prefix("epoch:")
            .ok_or_else(|| format!("{s:?}: expected epoch:N after '@'"))?;
        let epoch = epoch_s
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("{s:?}: epoch {epoch_s:?} is not an integer"))?;
        Ok(FaultSpec { kind, epoch })
    }

    /// Parse a comma-separated list of specs (the `RGAE_FAULT` format).
    pub fn parse_list(s: &str) -> Result<Vec<FaultSpec>, String> {
        s.split(',')
            .map(str::trim)
            .filter(|part| !part.is_empty())
            .map(FaultSpec::parse)
            .collect()
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@epoch:{}", self.kind.as_str(), self.epoch)
    }
}

/// A schedule of faults, each firing at most once for the whole run.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    fired: Vec<bool>,
}

impl FaultPlan {
    /// A plan over the given specs, none fired yet.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        let fired = vec![false; specs.len()];
        FaultPlan { specs, fired }
    }

    /// Whether any fault is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Faults due at `epoch` that have not fired yet; marks them fired.
    ///
    /// The fired flags survive rollback re-entry by construction — the plan
    /// lives outside the trainer's retry loop — so a recovered attempt that
    /// re-runs the same epoch is not re-poisoned.
    pub fn take_due(&mut self, epoch: usize) -> Vec<FaultKind> {
        let mut due = Vec::new();
        for (i, spec) in self.specs.iter().enumerate() {
            if spec.epoch == epoch && !self.fired[i] {
                self.fired[i] = true;
                due.push(spec.kind);
            }
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_round_trips_display() {
        for s in [
            "nan_grad@epoch:12",
            "inf_loss@epoch:0",
            "nan_loss@epoch:7",
            "corrupt_ckpt@epoch:3",
        ] {
            let spec = FaultSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
        }
        assert_eq!(
            FaultSpec::parse(" nan_grad @ epoch:12 ").unwrap(),
            FaultSpec {
                kind: FaultKind::NanGrad,
                epoch: 12
            }
        );
    }

    #[test]
    fn parse_list_splits_commas_and_skips_blanks() {
        let specs = FaultSpec::parse_list("nan_grad@epoch:2, corrupt_ckpt@epoch:2,").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].kind, FaultKind::NanGrad);
        assert_eq!(specs[1].kind, FaultKind::CorruptCkpt);
        assert!(FaultSpec::parse_list("  ").unwrap().is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "nan_grad",
            "nan_grad@12",
            "warp_core@epoch:1",
            "nan_grad@epoch:x",
        ] {
            let err = FaultSpec::parse(bad).unwrap_err();
            assert!(
                err.contains(&format!("{bad:?}")),
                "error should cite the spec: {err}"
            );
        }
    }

    #[test]
    fn faults_fire_once_even_when_the_epoch_reruns() {
        let mut plan =
            FaultPlan::new(FaultSpec::parse_list("nan_grad@epoch:3,nan_loss@epoch:3").unwrap());
        assert!(plan.take_due(2).is_empty());
        let first = plan.take_due(3);
        assert_eq!(first, vec![FaultKind::NanGrad, FaultKind::NanLoss]);
        // Rollback re-enters epoch 3: nothing fires again.
        assert!(plan.take_due(3).is_empty());
    }
}

//! Numerical-health guards for the rgae trainers.
//!
//! The paper's pipelines are numerically fragile by design: Feature Drift can
//! blow up the embedding space mid-training and the Ξ operator can produce a
//! near-empty Ω under aggressive α₁. This crate supplies the three pieces the
//! trainers use to survive that:
//!
//! * [`HealthMonitor`] — cheap per-epoch checks for non-finite losses,
//!   gradients, and parameters, loss-spike divergence against a trailing
//!   median, collapsed soft-assignment clusters, and a degenerate Ω, each
//!   reported as a typed [`Finding`].
//! * [`RecoveryPolicy`] — bounded retry/backoff bookkeeping: every tripped
//!   guard buys one rollback to the last healthy checkpoint, a learning-rate
//!   backoff, and a deterministic RNG reseed, until retries are exhausted.
//! * [`FaultPlan`] — a deterministic fault-injection layer
//!   (`RGAE_FAULT=nan_grad@epoch:12,...`) so every guard and recovery path is
//!   exercisable in CI.
//!
//! The crate is trainer-agnostic: it observes scalars and matrices handed to
//! it and never touches the RNG stream, so a fault-free guarded run stays
//! bit-identical to an unguarded one.

mod fault;
mod monitor;
mod policy;

pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use monitor::{Finding, HealthMonitor, Severity};
pub use policy::{RecoveryPolicy, RetryPlan};

use rgae_obs::{Event, Recorder};

/// Knobs for the health monitor, the recovery policy, and fault injection.
///
/// `Default` gives the production thresholds; `RConfig::guard = None`
/// (the default) disables the whole layer.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardConfig {
    /// A loss above `spike_factor ×` the trailing median trips the
    /// divergence guard.
    pub spike_factor: f64,
    /// Trailing window of healthy losses the median is taken over.
    pub spike_window: usize,
    /// Minimum healthy losses observed before the spike guard can trip
    /// (early-epoch losses are legitimately wild).
    pub spike_min_history: usize,
    /// A soft-assignment column whose mean mass falls below this fraction of
    /// the uniform share `1/k` counts as a collapsed cluster (warning).
    pub collapse_floor: f64,
    /// `|Ω| / N` below this fraction counts as a degenerate Ω (warning).
    pub omega_floor: f64,
    /// Scan exported parameters (weights, biases, optimiser moments) for
    /// non-finite values on the snapshot cadence.
    pub check_params: bool,
    /// Epoch cadence of the expensive guard work: the parameter scan and
    /// the in-memory rollback snapshot (a full state clone). The per-epoch
    /// loss and gradient checks are O(1) and always on; this knob bounds
    /// the O(model) work so guard overhead stays a small fraction of the
    /// epoch cost. A pending checkpoint save forces a snapshot regardless.
    pub snapshot_every: usize,
    /// Rollback/retry attempts before the run is marked degraded.
    pub max_retries: usize,
    /// Learning-rate multiplier applied on every retry (compounds).
    pub lr_backoff: f64,
    /// Deterministic fault injections (normally parsed from `RGAE_FAULT`).
    pub faults: Vec<FaultSpec>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            spike_factor: 25.0,
            spike_window: 11,
            spike_min_history: 5,
            collapse_floor: 1e-4,
            omega_floor: 0.01,
            check_params: true,
            snapshot_every: 10,
            max_retries: 2,
            lr_backoff: 0.5,
            faults: Vec::new(),
        }
    }
}

impl GuardConfig {
    /// Production defaults with the fault list taken from the `RGAE_FAULT`
    /// environment variable (empty when unset).
    ///
    /// # Panics
    /// Panics on a malformed `RGAE_FAULT` value — a typo'd fault spec should
    /// fail loudly, not silently run a clean experiment.
    pub fn from_env() -> Self {
        let faults = match std::env::var("RGAE_FAULT") {
            Ok(s) if !s.trim().is_empty() => FaultSpec::parse_list(&s)
                .unwrap_or_else(|e| panic!("invalid RGAE_FAULT value {s:?}: {e}")),
            _ => Vec::new(),
        };
        GuardConfig {
            faults,
            ..GuardConfig::default()
        }
    }
}

/// Record a [`Finding`] as a typed [`Event::Guard`] on the run log.
pub fn emit_finding(rec: &dyn Recorder, phase: &str, epoch: Option<usize>, f: &Finding) {
    if !rec.enabled() {
        return;
    }
    rec.record(&Event::Guard {
        kind: f.kind.to_string(),
        severity: f.severity.as_str().to_string(),
        phase: phase.to_string(),
        epoch,
        value: f.value.filter(|v| v.is_finite()),
        threshold: f.threshold.filter(|t| t.is_finite()),
        detail: f.detail.clone(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_no_faults_and_bounded_retries() {
        let cfg = GuardConfig::default();
        assert!(cfg.faults.is_empty());
        assert!(cfg.max_retries >= 1);
        assert!(cfg.lr_backoff > 0.0 && cfg.lr_backoff < 1.0);
        assert!(cfg.spike_factor > 1.0);
    }

    #[test]
    fn emit_finding_drops_nonfinite_values_from_the_event() {
        let sink = rgae_obs::MemorySink::new();
        let f = Finding {
            kind: "nonfinite_loss",
            severity: Severity::Trip,
            value: Some(f64::NAN),
            threshold: None,
            detail: "loss is NaN".into(),
        };
        emit_finding(&sink, "clustering", Some(3), &f);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::Guard {
                kind,
                severity,
                epoch,
                value,
                ..
            } => {
                assert_eq!(kind, "nonfinite_loss");
                assert_eq!(severity, "trip");
                assert_eq!(*epoch, Some(3));
                assert_eq!(*value, None, "NaN must not reach the JSON encoder");
            }
            other => panic!("unexpected event: {other:?}"),
        }
    }
}

//! Serialisers for the numeric workspace types, plus the [`ModelState`]
//! bag that model `export_params`/`import_params` implementations use.

use rgae_autodiff::AdamState;
use rgae_linalg::{Csr, Mat, Rng64};

use crate::codec::{ByteReader, ByteWriter, Error, Result};

/// Encode a dense matrix (shape + row-major values).
pub fn put_mat(w: &mut ByteWriter, m: &Mat) {
    w.put_usize(m.rows());
    w.put_usize(m.cols());
    for &x in m.as_slice() {
        w.put_f64(x);
    }
}

/// Decode a dense matrix.
pub fn get_mat(r: &mut ByteReader) -> Result<Mat> {
    let rows = r.get_usize()?;
    let cols = r.get_usize()?;
    let n = rows
        .checked_mul(cols)
        .ok_or(Error::Corrupt("matrix shape overflow"))?;
    if n.saturating_mul(8) > r.remaining() {
        return Err(Error::Corrupt("matrix larger than buffer"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.get_f64()?);
    }
    Mat::from_vec(rows, cols, data).map_err(|_| Error::Corrupt("matrix construction failed"))
}

/// Encode a sparse matrix (shape + raw CSR arrays).
pub fn put_csr(w: &mut ByteWriter, m: &Csr) {
    w.put_usize(m.rows());
    w.put_usize(m.cols());
    w.put_usizes(m.indptr());
    w.put_usizes(m.indices());
    w.put_f64s(m.values());
}

/// Decode a sparse matrix, re-validating every CSR invariant.
pub fn get_csr(r: &mut ByteReader) -> Result<Csr> {
    let rows = r.get_usize()?;
    let cols = r.get_usize()?;
    let indptr = r.get_usizes()?;
    let indices = r.get_usizes()?;
    let data = r.get_f64s()?;
    Csr::from_raw(rows, cols, indptr, indices, data)
        .map_err(|_| Error::Corrupt("invalid CSR payload"))
}

/// Encode the full RNG state (xoshiro words + Box–Muller spare).
pub fn put_rng(w: &mut ByteWriter, rng: &Rng64) {
    let (words, spare) = rng.state();
    for word in words {
        w.put_u64(word);
    }
    w.put_opt_f64(spare);
}

/// Decode an RNG restored to the exact stream position it was saved at.
pub fn get_rng(r: &mut ByteReader) -> Result<Rng64> {
    let words = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
    let spare = r.get_opt_f64()?;
    Ok(Rng64::from_state(words, spare))
}

/// Encode Adam optimiser state (timestep + moment buffers).
pub fn put_adam(w: &mut ByteWriter, st: &AdamState) {
    w.put_u64(st.t);
    w.put_usize(st.m.len());
    for m in &st.m {
        put_mat(w, m);
    }
    w.put_usize(st.v.len());
    for v in &st.v {
        put_mat(w, v);
    }
}

/// Decode Adam optimiser state.
pub fn get_adam(r: &mut ByteReader) -> Result<AdamState> {
    let t = r.get_u64()?;
    let nm = r.get_len(16)?;
    let mut m = Vec::with_capacity(nm);
    for _ in 0..nm {
        m.push(get_mat(r)?);
    }
    let nv = r.get_len(16)?;
    let mut v = Vec::with_capacity(nv);
    for _ in 0..nv {
        v.push(get_mat(r)?);
    }
    if m.len() != v.len() {
        return Err(Error::Corrupt("adam m/v slot count mismatch"));
    }
    Ok(AdamState { t, m, v })
}

/// A named bag of model parameters: everything a `GaeModel` needs to rebuild
/// its learned state. Entries are keyed by short stable names ("enc0",
/// "centroids", …) so import can shape-check each one and reject state saved
/// by a different architecture.
#[derive(Clone, Debug, Default)]
pub struct ModelState {
    /// Model name as reported by `GaeModel::name()`; checked on import.
    pub name: String,
    mats: Vec<(String, Mat)>,
    vecs: Vec<(String, Vec<f64>)>,
    nums: Vec<(String, f64)>,
    flags: Vec<(String, bool)>,
    adams: Vec<(String, AdamState)>,
}

impl ModelState {
    /// Empty state for the named model.
    pub fn new(name: &str) -> Self {
        ModelState {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Add a named matrix.
    pub fn push_mat(&mut self, key: &str, m: Mat) {
        self.mats.push((key.to_string(), m));
    }

    /// Add a named f64 vector.
    pub fn push_vec(&mut self, key: &str, v: Vec<f64>) {
        self.vecs.push((key.to_string(), v));
    }

    /// Add a named scalar.
    pub fn push_num(&mut self, key: &str, x: f64) {
        self.nums.push((key.to_string(), x));
    }

    /// Add a named flag.
    pub fn push_flag(&mut self, key: &str, b: bool) {
        self.flags.push((key.to_string(), b));
    }

    /// Add a named optimiser state.
    pub fn push_adam(&mut self, key: &str, st: AdamState) {
        self.adams.push((key.to_string(), st));
    }

    /// Look up a matrix by key.
    pub fn mat(&self, key: &str) -> Option<&Mat> {
        self.mats.iter().find(|(k, _)| k == key).map(|(_, m)| m)
    }

    /// Look up a vector by key.
    pub fn vec(&self, key: &str) -> Option<&Vec<f64>> {
        self.vecs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a scalar by key.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.nums.iter().find(|(k, _)| k == key).map(|&(_, x)| x)
    }

    /// Look up a flag by key.
    pub fn flag(&self, key: &str) -> Option<bool> {
        self.flags.iter().find(|(k, _)| k == key).map(|&(_, b)| b)
    }

    /// Look up an optimiser state by key.
    pub fn adam(&self, key: &str) -> Option<&AdamState> {
        self.adams.iter().find(|(k, _)| k == key).map(|(_, a)| a)
    }

    /// `true` when every stored numeric value — matrices, vectors, scalars,
    /// and optimiser moment buffers — is finite. The guard layer runs this
    /// over each epoch's exported state; one NaN anywhere fails the scan.
    pub fn all_finite(&self) -> bool {
        let mat_ok = |m: &Mat| m.as_slice().iter().all(|x| x.is_finite());
        self.mats.iter().all(|(_, m)| mat_ok(m))
            && self
                .vecs
                .iter()
                .all(|(_, v)| v.iter().all(|x| x.is_finite()))
            && self.nums.iter().all(|(_, x)| x.is_finite())
            && self
                .adams
                .iter()
                .all(|(_, a)| a.m.iter().all(mat_ok) && a.v.iter().all(mat_ok))
    }

    /// Serialise into a writer.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        w.put_usize(self.mats.len());
        for (k, m) in &self.mats {
            w.put_str(k);
            put_mat(w, m);
        }
        w.put_usize(self.vecs.len());
        for (k, v) in &self.vecs {
            w.put_str(k);
            w.put_f64s(v);
        }
        w.put_usize(self.nums.len());
        for (k, x) in &self.nums {
            w.put_str(k);
            w.put_f64(*x);
        }
        w.put_usize(self.flags.len());
        for (k, b) in &self.flags {
            w.put_str(k);
            w.put_bool(*b);
        }
        w.put_usize(self.adams.len());
        for (k, a) in &self.adams {
            w.put_str(k);
            put_adam(w, a);
        }
    }

    /// Deserialise from a reader.
    pub fn decode(r: &mut ByteReader) -> Result<Self> {
        let name = r.get_str()?;
        let mut st = ModelState::new(&name);
        let n = r.get_len(16)?;
        for _ in 0..n {
            let k = r.get_str()?;
            let m = get_mat(r)?;
            st.mats.push((k, m));
        }
        let n = r.get_len(8)?;
        for _ in 0..n {
            let k = r.get_str()?;
            let v = r.get_f64s()?;
            st.vecs.push((k, v));
        }
        let n = r.get_len(8)?;
        for _ in 0..n {
            let k = r.get_str()?;
            let x = r.get_f64()?;
            st.nums.push((k, x));
        }
        let n = r.get_len(2)?;
        for _ in 0..n {
            let k = r.get_str()?;
            let b = r.get_bool()?;
            st.flags.push((k, b));
        }
        let n = r.get_len(8)?;
        for _ in 0..n {
            let k = r.get_str()?;
            let a = get_adam(r)?;
            st.adams.push((k, a));
        }
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat_round_trip_is_bit_exact() {
        let m = Mat::from_vec(2, 3, vec![1.0, -0.0, f64::MIN_POSITIVE, 3.5, 1e300, -7.25]).unwrap();
        let mut w = ByteWriter::new();
        put_mat(&mut w, &m);
        let bytes = w.into_bytes();
        let back = get_mat(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn all_finite_catches_nan_in_every_field_kind() {
        let clean = || {
            let mut st = ModelState::new("gae");
            st.push_mat("w", Mat::full(2, 2, 0.5));
            st.push_vec("bias", vec![1.0, -2.0]);
            st.push_num("tau", 0.25);
            st.push_flag("init", true);
            st.push_adam(
                "opt",
                AdamState {
                    t: 3,
                    m: vec![Mat::full(2, 2, 0.1)],
                    v: vec![Mat::full(2, 2, 0.01)],
                },
            );
            st
        };
        assert!(clean().all_finite());

        let mut st = clean();
        st.push_mat("bad", Mat::full(1, 1, f64::NAN));
        assert!(!st.all_finite());

        let mut st = clean();
        st.push_vec("bad", vec![f64::INFINITY]);
        assert!(!st.all_finite());

        let mut st = clean();
        st.push_num("bad", f64::NEG_INFINITY);
        assert!(!st.all_finite());

        let mut st = clean();
        st.push_adam(
            "bad",
            AdamState {
                t: 1,
                m: vec![Mat::full(1, 1, f64::NAN)],
                v: vec![Mat::full(1, 1, 0.0)],
            },
        );
        assert!(!st.all_finite());
    }

    #[test]
    fn csr_round_trip() {
        let a = Csr::adjacency_from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]).unwrap();
        let mut w = ByteWriter::new();
        put_csr(&mut w, &a);
        let bytes = w.into_bytes();
        let back = get_csr(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn csr_decode_validates_invariants() {
        // Hand-craft a payload whose indices are out of range.
        let mut w = ByteWriter::new();
        w.put_usize(2); // rows
        w.put_usize(2); // cols
        w.put_usizes(&[0, 1, 1]); // indptr
        w.put_usizes(&[5]); // column 5 in a 2-col matrix
        w.put_f64s(&[1.0]);
        let bytes = w.into_bytes();
        assert!(matches!(
            get_csr(&mut ByteReader::new(&bytes)),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rng_round_trip_resumes_stream() {
        let mut rng = Rng64::seed_from_u64(99);
        for _ in 0..13 {
            rng.normal(); // odd count leaves a Box–Muller spare cached
        }
        let mut w = ByteWriter::new();
        put_rng(&mut w, &rng);
        let bytes = w.into_bytes();
        let mut back = get_rng(&mut ByteReader::new(&bytes)).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.normal().to_bits(), back.normal().to_bits());
            assert_eq!(rng.uniform().to_bits(), back.uniform().to_bits());
        }
    }

    #[test]
    fn adam_round_trip() {
        let st = AdamState {
            t: 17,
            m: vec![Mat::full(2, 2, 0.25), Mat::full(1, 3, -1.5)],
            v: vec![Mat::full(2, 2, 0.5), Mat::full(1, 3, 2.0)],
        };
        let mut w = ByteWriter::new();
        put_adam(&mut w, &st);
        let bytes = w.into_bytes();
        let back = get_adam(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn model_state_round_trip() {
        let mut st = ModelState::new("gmm-vgae");
        st.push_mat("enc0", Mat::full(3, 2, 1.0));
        st.push_mat("mix_means", Mat::full(2, 2, 0.5));
        st.push_vec("mix_weights", vec![0.5, 0.5]);
        st.push_num("cluster_weight", 0.35);
        st.push_flag("heads_ready", true);
        st.push_adam(
            "opt",
            AdamState {
                t: 3,
                m: vec![Mat::zeros(3, 2)],
                v: vec![Mat::zeros(3, 2)],
            },
        );
        let mut w = ByteWriter::new();
        st.encode(&mut w);
        let bytes = w.into_bytes();
        let back = ModelState::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.name, "gmm-vgae");
        assert_eq!(back.mat("enc0").unwrap().shape(), (3, 2));
        assert_eq!(back.vec("mix_weights").unwrap(), &vec![0.5, 0.5]);
        assert_eq!(back.num("cluster_weight"), Some(0.35));
        assert_eq!(back.flag("heads_ready"), Some(true));
        assert_eq!(back.adam("opt").unwrap().t, 3);
        assert!(back.mat("nonexistent").is_none());
    }
}

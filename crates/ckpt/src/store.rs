//! File framing and the rotating on-disk checkpoint store.
//!
//! A checkpoint file is:
//!
//! ```text
//! magic "RGCK" | version u32 LE | payload_len u64 LE | payload | crc32 u32 LE
//! ```
//!
//! where the CRC covers the payload bytes only. Writes go through a sibling
//! tmp file + `rename`, so a crash mid-write can never clobber the previous
//! good checkpoint; the store additionally keeps the previous generation
//! (`state.prev.rgck`) so a checkpoint that was *fully* written but is later
//! found corrupt (bit rot, partial fsync) still has a fallback.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{crc32, ByteReader, Error, Result};

/// File magic: "RGCK" (rgae checkpoint).
pub const MAGIC: [u8; 4] = *b"RGCK";

/// Current format version.
pub const VERSION: u32 = 1;

/// Wrap a payload in the framed on-disk representation.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Validate framing + CRC and return the payload bytes.
pub fn unframe(bytes: &[u8]) -> Result<Vec<u8>> {
    let mut r = ByteReader::new(bytes);
    let mut magic = [0u8; 4];
    for slot in &mut magic {
        *slot = r.get_u8().map_err(|_| Error::BadMagic)?;
    }
    if magic != MAGIC {
        return Err(Error::BadMagic);
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(Error::BadVersion(version));
    }
    let len = r.get_usize()?;
    if r.remaining() != len + 4 {
        // Payload + trailing CRC must account for every remaining byte.
        return Err(Error::BadCrc);
    }
    let payload = &bytes[bytes.len() - len - 4..bytes.len() - 4];
    let mut tail = ByteReader::new(&bytes[bytes.len() - 4..]);
    let stored = tail.get_u32()?;
    if crc32(payload) != stored {
        return Err(Error::BadCrc);
    }
    Ok(payload.to_vec())
}

/// Read and validate a checkpoint file, returning its payload.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>> {
    let bytes = fs::read(path)?;
    unframe(&bytes)
}

/// Write a framed checkpoint atomically: write to a sibling `.tmp` file,
/// fsync, then `rename` over the destination.
pub fn write_checkpoint_atomic(path: &Path, payload: &[u8]) -> Result<()> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&frame(payload))?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// A directory holding the latest checkpoint plus one previous generation.
///
/// Layout: `state.rgck` (latest) and `state.prev.rgck` (previous good).
/// [`CheckpointStore::save`] rotates latest → prev before writing, so a save
/// that is interrupted or later found corrupt always leaves a fallback.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: &Path) -> Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// Path of the latest checkpoint.
    pub fn latest_path(&self) -> PathBuf {
        self.dir.join("state.rgck")
    }

    /// Path of the previous-generation checkpoint.
    pub fn prev_path(&self) -> PathBuf {
        self.dir.join("state.prev.rgck")
    }

    /// Path of the last checkpoint generation tagged healthy by the guard
    /// layer (a copy of the latest made after its state passed every
    /// numerical-health check).
    pub fn healthy_path(&self) -> PathBuf {
        self.dir.join("state.healthy.rgck")
    }

    /// Candidate files for loading, newest first.
    pub fn candidates(&self) -> [PathBuf; 2] {
        [self.latest_path(), self.prev_path()]
    }

    /// Candidate files for a guard rollback, in preference order: the
    /// latest save, the healthy-tagged generation, then the previous
    /// generation. Rollback only ever targets states saved on healthy
    /// epochs, so `latest` is normally the freshest usable state; the
    /// healthy tag is the CRC fallback when `latest` was corrupted on disk
    /// after being written.
    pub fn recovery_candidates(&self) -> [PathBuf; 3] {
        [self.latest_path(), self.healthy_path(), self.prev_path()]
    }

    /// Tag the current latest generation as healthy: copy it to
    /// [`CheckpointStore::healthy_path`] through a sibling tmp + `rename`,
    /// so a crash mid-copy can't clobber the previous healthy tag.
    pub fn tag_healthy(&self) -> Result<PathBuf> {
        let healthy = self.healthy_path();
        let mut tmp_name = healthy.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        fs::copy(self.latest_path(), &tmp)?;
        fs::rename(&tmp, &healthy)?;
        Ok(healthy)
    }

    /// Save a payload: rotate the current latest to `prev`, then atomically
    /// write the new latest.
    pub fn save(&self, payload: &[u8]) -> Result<PathBuf> {
        let latest = self.latest_path();
        if latest.exists() {
            fs::rename(&latest, self.prev_path())?;
        }
        write_checkpoint_atomic(&latest, payload)?;
        Ok(latest)
    }

    /// Load the newest checkpoint that passes CRC validation, together with
    /// the path it came from and how many newer candidates were rejected as
    /// corrupt. Returns `Ok(None)` when no checkpoint file exists at all.
    pub fn load_best(&self) -> Result<Option<(Vec<u8>, PathBuf, usize)>> {
        let mut rejected = 0;
        for path in self.candidates() {
            if !path.exists() {
                continue;
            }
            match read_checkpoint(&path) {
                Ok(payload) => return Ok(Some((payload, path, rejected))),
                Err(Error::Io(e)) => return Err(Error::Io(e)),
                Err(_) => rejected += 1,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rgae-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"hello checkpoint".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), payload);
    }

    #[test]
    fn unframe_rejects_bad_magic() {
        let mut framed = frame(b"x");
        framed[0] ^= 0xFF;
        assert!(matches!(unframe(&framed), Err(Error::BadMagic)));
    }

    #[test]
    fn unframe_rejects_bad_version() {
        let mut framed = frame(b"x");
        framed[4] = 99;
        assert!(matches!(unframe(&framed), Err(Error::BadVersion(99))));
    }

    #[test]
    fn unframe_rejects_flipped_payload_bit() {
        let mut framed = frame(b"some payload bytes");
        framed[20] ^= 0x01;
        assert!(matches!(unframe(&framed), Err(Error::BadCrc)));
    }

    #[test]
    fn unframe_rejects_truncation() {
        let framed = frame(b"some payload bytes");
        for cut in [framed.len() - 1, framed.len() - 5, 10, 3] {
            assert!(unframe(&framed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn store_rotates_and_falls_back() {
        let dir = tmp_dir("rotate");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_best().unwrap().is_none());

        store.save(b"gen1").unwrap();
        store.save(b"gen2").unwrap();
        assert!(store.prev_path().exists());
        let (payload, path, rejected) = store.load_best().unwrap().unwrap();
        assert_eq!(payload, b"gen2");
        assert_eq!(path, store.latest_path());
        assert_eq!(rejected, 0);

        // Corrupt the latest: loader must fall back to gen1.
        let mut bytes = fs::read(store.latest_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(store.latest_path(), &bytes).unwrap();
        let (payload, path, rejected) = store.load_best().unwrap().unwrap();
        assert_eq!(payload, b"gen1");
        assert_eq!(path, store.prev_path());
        assert_eq!(rejected, 1);

        // Corrupt both: loader reports nothing usable (but no panic/crash).
        fs::write(store.prev_path(), b"garbage").unwrap();
        assert!(store.load_best().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn healthy_tag_copies_latest_and_survives_rotation() {
        let dir = tmp_dir("healthy");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(b"gen1").unwrap();
        store.tag_healthy().unwrap();
        assert_eq!(read_checkpoint(&store.healthy_path()).unwrap(), b"gen1");
        assert!(!dir.join("state.healthy.rgck.tmp").exists());

        // Newer unhealthy saves rotate latest/prev but leave the tag alone.
        store.save(b"gen2").unwrap();
        store.save(b"gen3").unwrap();
        assert_eq!(read_checkpoint(&store.healthy_path()).unwrap(), b"gen1");

        // A corrupt latest falls back to the healthy tag in recovery order.
        let mut bytes = fs::read(store.latest_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(store.latest_path(), &bytes).unwrap();
        let usable = store
            .recovery_candidates()
            .into_iter()
            .find_map(|p| read_checkpoint(&p).ok());
        assert_eq!(usable.unwrap(), b"gen1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let dir = tmp_dir("atomic");
        let path = dir.join("state.rgck");
        write_checkpoint_atomic(&path, b"payload").unwrap();
        assert!(path.exists());
        assert!(!dir.join("state.rgck.tmp").exists());
        assert_eq!(read_checkpoint(&path).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Byte-level encoding primitives: a growable little-endian writer, a
//! bounds-checked reader, and the CRC32 (IEEE 802.3) checksum used by the
//! checkpoint trailer.

use std::fmt;

/// Errors surfaced while encoding, decoding, or reading checkpoint bytes.
#[derive(Debug)]
pub enum Error {
    /// The reader ran off the end of the buffer.
    Eof,
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file carries a format version this build cannot read.
    BadVersion(u32),
    /// The CRC32 trailer does not match the payload (truncation/bit rot).
    BadCrc,
    /// The payload decoded but violated a structural invariant.
    Corrupt(&'static str),
    /// An underlying filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "unexpected end of checkpoint data"),
            Error::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            Error::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Error::BadCrc => write!(f, "checkpoint CRC mismatch (corrupt or truncated)"),
            Error::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            Error::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias for checkpoint operations.
pub type Result<T> = std::result::Result<T, Error>;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    // Standard IEEE 802.3 polynomial, reflected form.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only little-endian byte writer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` stored as u64 so the format is identical across platforms.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// f64 via its IEEE-754 bit pattern (bit-exact round trip, NaN included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Optional f64: presence byte then the value.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Optional usize: presence byte then the value.
    pub fn put_opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_usize(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_bytes(s.as_bytes());
    }

    /// Length-prefixed f64 slice.
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Length-prefixed usize slice.
    pub fn put_usizes(&mut self, xs: &[usize]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_usize(x);
        }
    }
}

/// Bounds-checked little-endian reader over a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Eof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// u64 narrowed to usize with an overflow check (32-bit safety).
    pub fn get_usize(&mut self) -> Result<usize> {
        usize::try_from(self.get_u64()?).map_err(|_| Error::Corrupt("usize overflow"))
    }

    /// f64 from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Bool from a strict 0/1 byte.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Error::Corrupt("invalid bool byte")),
        }
    }

    /// Optional f64 (presence byte then value).
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.get_bool()? {
            Some(self.get_f64()?)
        } else {
            None
        })
    }

    /// Optional usize (presence byte then value).
    pub fn get_opt_usize(&mut self) -> Result<Option<usize>> {
        Ok(if self.get_bool()? {
            Some(self.get_usize()?)
        } else {
            None
        })
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Corrupt("invalid utf-8 string"))
    }

    /// Length-prefixed f64 vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Length-prefixed usize vector.
    pub fn get_usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_usize()?);
        }
        Ok(out)
    }

    /// Read a length prefix and sanity-check it against the bytes actually
    /// left in the buffer (each element needs ≥ `min_elem_bytes`), so a
    /// corrupted length cannot trigger a huge allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.get_usize()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(Error::Corrupt("length prefix exceeds buffer"));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(12345);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(2.5));
        w.put_opt_usize(Some(9));
        w.put_str("Ω graph");
        w.put_f64s(&[1.0, 2.0, 3.5]);
        w.put_usizes(&[0, 1, usize::MAX >> 1]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.get_opt_usize().unwrap(), Some(9));
        assert_eq!(r.get_str().unwrap(), "Ω graph");
        assert_eq!(r.get_f64s().unwrap(), vec![1.0, 2.0, 3.5]);
        assert_eq!(r.get_usizes().unwrap(), vec![0, 1, usize::MAX >> 1]);
        assert!(r.is_done());
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(Error::Eof)));
    }

    #[test]
    fn bogus_length_prefix_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_f64s(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(Error::Corrupt(_))));
    }
}

//! Crash-safe checkpointing for the rgae training stack.
//!
//! The format is deliberately boring: a fixed magic + version header, a
//! little-endian binary payload, and a CRC32 trailer, written atomically
//! (tmp file + `rename`) with a keep-last-2 rotation. There are no external
//! dependencies — the build environment is fully offline — so the codec is
//! a few hundred lines of hand-rolled byte plumbing rather than serde.
//!
//! Layer map:
//! * [`codec`] — byte-level reader/writer plus the CRC32 implementation;
//! * [`store`] — framing, atomic file writes, and the rotating
//!   [`CheckpointStore`];
//! * [`state`] — serialisers for the numeric workspace types ([`Mat`],
//!   [`Csr`], RNG state, [`AdamState`]) and the generic [`ModelState`] bag
//!   that `GaeModel::export_params` fills in.
//!
//! The trainer-level `TrainerState` (phase, Ω, epoch records, …) lives in
//! `rgae-core`, which owns those types; this crate only knows about the
//! numeric building blocks so it can sit below `rgae-models` in the
//! dependency graph.
//!
//! [`Mat`]: rgae_linalg::Mat
//! [`Csr`]: rgae_linalg::Csr
//! [`AdamState`]: rgae_autodiff::AdamState

pub mod codec;
pub mod state;
pub mod store;

pub use codec::{ByteReader, ByteWriter, Error, Result};
pub use state::ModelState;
pub use store::{read_checkpoint, write_checkpoint_atomic, CheckpointStore, MAGIC, VERSION};

//! Extending Υ to multiplex graphs — the paper's §6 future-work item.
//!
//! The single-layer Υ rewrites one self-supervision graph. On a multiplex
//! graph each relation type carries its own clustering-irrelevant links, so
//! the natural extension applies the drop rule **per layer** (an
//! inter-cluster link is noise in whatever layer it occurs) while adding the
//! centroid stars **once**, to a designated backbone layer — duplicating the
//! stars into every layer would double-count them in any aggregated filter.

use rgae_graph::MultiplexGraph;
use rgae_linalg::{Csr, Mat};

use crate::upsilon::{upsilon, UpsilonConfig, UpsilonOutcome};
use crate::Result;

/// Outcome of the multiplex Υ: rewritten layers plus per-layer bookkeeping.
#[derive(Clone, Debug)]
pub struct MultiplexUpsilonOutcome {
    /// The rewritten multiplex graph.
    pub graph: MultiplexGraph,
    /// Per-layer Υ outcomes (layer 0 carries the added stars).
    pub per_layer: Vec<UpsilonOutcome>,
}

/// Apply Υ to every layer of a multiplex graph.
///
/// * drop rule: applied on every layer;
/// * add rule: applied only on `backbone` (default layer 0).
pub fn upsilon_multiplex(
    graph: &MultiplexGraph,
    p_soft: &Mat,
    z: &Mat,
    omega: &[usize],
    cfg: &UpsilonConfig,
    backbone: usize,
) -> Result<MultiplexUpsilonOutcome> {
    let backbone = backbone.min(graph.num_layers() - 1);
    let mut rewritten = graph.clone();
    let mut per_layer = Vec::with_capacity(graph.num_layers());
    for (l, layer) in graph.layers().iter().enumerate() {
        let layer_cfg = UpsilonConfig {
            add_edges: cfg.add_edges && l == backbone,
            drop_edges: cfg.drop_edges,
        };
        let out = upsilon(layer, p_soft, z, omega, &layer_cfg)?;
        rewritten = rewritten
            .with_layer(l, out.graph.clone())
            .map_err(crate::Error::Graph)?;
        per_layer.push(out);
    }
    Ok(MultiplexUpsilonOutcome {
        graph: rewritten,
        per_layer,
    })
}

/// The multiplex self-supervision target: the union of the rewritten
/// layers (what the decoder reconstructs when training on a multiplex).
pub fn multiplex_self_supervision(outcome: &MultiplexUpsilonOutcome) -> Csr {
    outcome.graph.union_adjacency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgae_linalg::Mat;

    /// Two clusters over 6 nodes; layer 0 has a cross-link 2–3, layer 1 has
    /// a different cross-link 0–5.
    fn fixture() -> (MultiplexGraph, Mat, Mat) {
        let l0 = Csr::adjacency_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)]).unwrap();
        let l1 = Csr::adjacency_from_edges(6, &[(0, 2), (3, 5), (0, 5)]).unwrap();
        let x = Mat::eye(6);
        let g = MultiplexGraph::new("mx", vec![l0, l1], x, vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let z = Mat::from_rows(&[
            vec![0.0],
            vec![0.4],
            vec![0.8],
            vec![9.0],
            vec![9.5],
            vec![10.0],
        ])
        .unwrap();
        let p = Mat::from_rows(&[
            vec![0.9, 0.1],
            vec![0.9, 0.1],
            vec![0.8, 0.2],
            vec![0.1, 0.9],
            vec![0.1, 0.9],
            vec![0.2, 0.8],
        ])
        .unwrap();
        (g, p, z)
    }

    #[test]
    fn drops_cross_links_in_every_layer() {
        let (g, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let out = upsilon_multiplex(&g, &p, &z, &omega, &UpsilonConfig::default(), 0).unwrap();
        assert!(!out.graph.layers()[0].contains(2, 3), "layer 0 cross-link");
        assert!(!out.graph.layers()[1].contains(0, 5), "layer 1 cross-link");
        // Intra-cluster structure preserved.
        assert!(out.graph.layers()[1].contains(0, 2));
        assert!(out.graph.layers()[1].contains(3, 5));
    }

    #[test]
    fn stars_only_on_backbone() {
        let (g, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let out = upsilon_multiplex(&g, &p, &z, &omega, &UpsilonConfig::default(), 0).unwrap();
        assert!(out.per_layer[1].added.is_empty(), "layer 1 got stars");
        // Backbone gained any missing centroid links.
        for (c, ctr) in out.per_layer[0].centroids.iter().enumerate() {
            let ctr = ctr.unwrap();
            for i in 0..6 {
                if p.row_argmax()[i] == c && i != ctr {
                    assert!(
                        out.graph.layers()[0].contains(i, ctr),
                        "node {i} missing star to {ctr}"
                    );
                }
            }
        }
    }

    #[test]
    fn union_target_is_clustering_oriented() {
        let (g, p, z) = fixture();
        let labels = [0, 0, 0, 1, 1, 1];
        let omega: Vec<usize> = (0..6).collect();
        let before = rgae_graph::edge_homophily(&g.union_adjacency(), &labels);
        let out = upsilon_multiplex(&g, &p, &z, &omega, &UpsilonConfig::default(), 0).unwrap();
        let target = multiplex_self_supervision(&out);
        let after = rgae_graph::edge_homophily(&target, &labels);
        assert!(after > before, "homophily {before} -> {after}");
        assert!((after - 1.0).abs() < 1e-12, "all cross links dropped");
    }

    #[test]
    fn backbone_index_clamped() {
        let (g, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        // backbone = 99 clamps to the last layer instead of panicking.
        let out = upsilon_multiplex(&g, &p, &z, &omega, &UpsilonConfig::default(), 99).unwrap();
        assert!(out.per_layer[0].added.is_empty());
    }
}

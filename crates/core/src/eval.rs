//! Evaluation helpers shared by the trainer and the experiment harness.

use rgae_cluster::{
    accuracy, ari, gaussian_soft_assignments, gaussian_soft_assignments_tempered, kmeans_traced,
    nmi,
};
use rgae_linalg::{Mat, Rng64};
use rgae_models::{GaeModel, TrainData};
use rgae_obs::{Recorder, NOOP};

use crate::Result;

/// The paper's three clustering metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Hungarian-matched accuracy.
    pub acc: f64,
    /// Normalised mutual information.
    pub nmi: f64,
    /// Adjusted Rand index.
    pub ari: f64,
}

impl Metrics {
    /// Compute all three from predictions and ground truth.
    pub fn from_predictions(pred: &[usize], truth: &[usize]) -> Self {
        Metrics {
            acc: accuracy(pred, truth),
            nmi: nmi(pred, truth),
            ari: ari(pred, truth),
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ACC {:.1} NMI {:.1} ARI {:.1}",
            self.acc * 100.0,
            self.nmi * 100.0,
            self.ari * 100.0
        )
    }
}

/// Soft assignments for any model: the model's own head when it has one
/// (second group), otherwise k-means hard clusters turned soft through the
/// Ξ operator's Eq. 15 Gaussian kernel (the paper's recipe for hard
/// assignment matrices).
pub fn soft_assignments_or_kmeans(
    model: &dyn GaeModel,
    data: &TrainData,
    rng: &mut Rng64,
) -> Result<Mat> {
    soft_assignments_or_kmeans_traced(model, data, rng, &NOOP)
}

/// [`soft_assignments_or_kmeans`] reporting the k-means fallback (when the
/// model has no head of its own) into a run-log recorder.
pub fn soft_assignments_or_kmeans_traced(
    model: &dyn GaeModel,
    data: &TrainData,
    rng: &mut Rng64,
    rec: &dyn Recorder,
) -> Result<Mat> {
    if let Some(p) = model.soft_assignments(data)? {
        return Ok(p);
    }
    let z = model.embed(data);
    let km = kmeans_traced(&z, data.num_classes, 100, rng, rec)?;
    Ok(gaussian_soft_assignments(
        &z,
        &km.assignments,
        data.num_classes,
    )?)
}

/// Soft assignments as the Ξ operator should see them: the model's own
/// calibrated [`rgae_models::GaeModel::xi_assignments`] when available,
/// otherwise the dimension-tempered Eq. 15 kernel over k-means hard
/// clusters. Row argmax is identical to [`soft_assignments_or_kmeans`].
pub fn xi_assignments_or_kmeans(
    model: &dyn GaeModel,
    data: &TrainData,
    rng: &mut Rng64,
) -> Result<Mat> {
    xi_assignments_or_kmeans_traced(model, data, rng, &NOOP)
}

/// [`xi_assignments_or_kmeans`] reporting the k-means fallback into a
/// run-log recorder.
pub fn xi_assignments_or_kmeans_traced(
    model: &dyn GaeModel,
    data: &TrainData,
    rng: &mut Rng64,
    rec: &dyn Recorder,
) -> Result<Mat> {
    if let Some(p) = model.xi_assignments(data)? {
        return Ok(p);
    }
    let z = model.embed(data);
    let km = kmeans_traced(&z, data.num_classes, 100, rng, rec)?;
    Ok(gaussian_soft_assignments_tempered(
        &z,
        &km.assignments,
        data.num_classes,
        z.cols() as f64,
    )?)
}

/// Evaluate a model against ground truth: argmax of the soft assignments.
pub fn evaluate(
    model: &dyn GaeModel,
    data: &TrainData,
    truth: &[usize],
    rng: &mut Rng64,
) -> Result<Metrics> {
    evaluate_traced(model, data, truth, rng, &NOOP)
}

/// [`evaluate`] reporting any clustering fallback work into a run-log
/// recorder.
pub fn evaluate_traced(
    model: &dyn GaeModel,
    data: &TrainData,
    truth: &[usize],
    rng: &mut Rng64,
    rec: &dyn Recorder,
) -> Result<Metrics> {
    let p = soft_assignments_or_kmeans_traced(model, data, rng, rec)?;
    Ok(Metrics::from_predictions(&p.row_argmax(), truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_from_perfect_prediction() {
        let m = Metrics::from_predictions(&[1, 1, 0, 0], &[0, 0, 1, 1]);
        assert!((m.acc - 1.0).abs() < 1e-12);
        assert!((m.nmi - 1.0).abs() < 1e-12);
        assert!((m.ari - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_percentages() {
        let m = Metrics {
            acc: 0.767,
            nmi: 0.573,
            ari: 0.579,
        };
        assert_eq!(format!("{m}"), "ACC 76.7 NMI 57.3 ARI 57.9");
    }
}

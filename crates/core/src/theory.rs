//! Numerical verification of the paper's §3 theory.
//!
//! The paper's formal analysis rests on a handful of exact algebraic
//! identities (Propositions 1–4, Theorem 1) plus the local FR/FD metrics of
//! Definitions 1–2 and the filtering-impact predicate 𝒫 (Eq. 12). This
//! module implements each object *literally from its definition* so the
//! test-suite can check the identities numerically on random instances —
//! the Rust analogue of re-deriving the appendix proofs.
//!
//! Everything here works on plain matrices (no autodiff): the point is to
//! validate the closed forms the operators and diagnostics rely on.

use rgae_linalg::{gram_row_fold, gram_row_map, sigmoid, softplus, Csr, Mat};

/// The graph-weighted Laplacian loss
/// `L_C(Z, A′) = ½ Σ_{ij} a′_ij ‖z_i − z_j‖²`.
pub fn l_c(z: &Mat, a: &Csr) -> f64 {
    let mut total = 0.0;
    for (i, j, w) in a.iter() {
        let mut d2 = 0.0;
        for (&zi, &zj) in z.row(i).iter().zip(z.row(j)) {
            d2 += (zi - zj) * (zi - zj);
        }
        total += w * d2;
    }
    0.5 * total
}

/// Dense variant of [`l_c`] (the clustering graph is dense-ish).
pub fn l_c_dense(z: &Mat, a: &Mat) -> f64 {
    let n = z.rows();
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..n {
            let w = a[(i, j)];
            if w == 0.0 {
                continue;
            }
            let mut d2 = 0.0;
            for (&zi, &zj) in z.row(i).iter().zip(z.row(j)) {
                d2 += (zi - zj) * (zi - zj);
            }
            total += w * d2;
        }
    }
    0.5 * total
}

/// The Proposition-1 remainder
/// `L_R(Z, A^self) = Σ_{ij} [ log(1 + e^{z_iᵀz_j}) − ½ a_ij (‖z_i‖² + ‖z_j‖²) ]`.
pub fn l_r(z: &Mat, a: &Csr) -> f64 {
    // Tiled: each gram row is materialised transiently (O(B·N) peak memory
    // instead of a dense N×N gram) and consumed in the same pass.
    let sq = z.row_sq_norms();
    gram_row_fold(z, |i, row| {
        let mut acc = 0.0;
        for &x in row {
            acc += softplus(x);
        }
        for (j, w) in a.row_iter(i) {
            acc -= 0.5 * w * (sq[i] + sq[j]);
        }
        acc
    })
}

/// The full-sum binary cross-entropy of the inner-product decoder against a
/// (binary, possibly self-looped) target — the paper's `L_bce` in its
/// un-normalised Proposition-1 form:
/// `−Σ_{ij} [ a_ij log σ(z_iᵀz_j) + (1 − a_ij) log(1 − σ(z_iᵀz_j)) ]`.
pub fn l_bce(z: &Mat, a: &Csr) -> f64 {
    // Tiled like [`l_r`]: no dense N×N gram.
    gram_row_fold(z, |i, row| {
        // a_ij = 0 branch: −log(1 − σ(x)) = softplus(x).
        let mut acc = 0.0;
        for &x in row {
            acc += softplus(x);
        }
        // a_ij = 1 entries: replace softplus(x) with softplus(−x).
        for (j, w) in a.row_iter(i) {
            debug_assert_eq!(w, 1.0);
            let x = row[j];
            acc += softplus(-x) - softplus(x);
        }
        acc
    })
}

/// The embedded k-means loss `Σ_k Σ_{i ∈ C_k} ‖z_i − μ_k‖²` with centroids
/// as cluster means (Proposition 2's left-hand side).
pub fn l_kmeans(z: &Mat, assign: &[usize], k: usize) -> f64 {
    let d = z.cols();
    let mut means = Mat::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &c) in assign.iter().enumerate() {
        counts[c] += 1;
        for (m, &v) in means.row_mut(c).iter_mut().zip(z.row(i)) {
            *m += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for m in means.row_mut(c) {
                *m *= inv;
            }
        }
    }
    assign
        .iter()
        .enumerate()
        .map(|(i, &c)| z.row_sq_dist(i, means.row(c)))
        .sum()
}

/// Proposition 3's closed-form gradient of `L_bce` w.r.t. `z_i`:
/// `Σ_j (σ(z_iᵀz_j) − a_ij) z_j` (rows of the returned matrix).
pub fn bce_grad_z(z: &Mat, a: &Csr) -> Mat {
    let n = z.rows();
    // Tiled gram rows plus a CSR merge walk (instead of per-entry `a.get`
    // binary searches): O(B·N) memory, one pass, same values.
    gram_row_map(z, z.cols(), |i, row, out| {
        let mut nz = a.row_iter(i).peekable();
        for j in 0..n {
            let aij = match nz.peek() {
                Some(&(jj, w)) if jj == j => {
                    nz.next();
                    w
                }
                _ => 0.0,
            };
            let coeff = sigmoid(row[j]) - aij;
            for (g, &zj) in out.iter_mut().zip(z.row(j)) {
                *g += coeff * zj;
            }
        }
    })
}

/// Proposition 4's closed-form gradient of `L_C(Z, A^clus)` w.r.t. `z_i`:
/// `Σ_j a^clus_ij (z_i − z_j)`.
pub fn laplacian_grad_z(z: &Mat, a: &Csr) -> Mat {
    let n = z.rows();
    let d = z.cols();
    let mut grad = Mat::zeros(n, d);
    for i in 0..n {
        for (j, w) in a.row_iter(i) {
            for ((g, &zi), &zj) in grad.row_mut(i).iter_mut().zip(z.row(i)).zip(z.row(j)) {
                *g += w * (zi - zj);
            }
        }
    }
    grad
}

/// Numerical gradient of a scalar function of `Z` by central differences.
pub fn numeric_grad(z: &Mat, f: impl Fn(&Mat) -> f64) -> Mat {
    let h = 1e-5;
    let mut grad = Mat::zeros(z.rows(), z.cols());
    let mut zp = z.clone();
    for idx in 0..z.as_slice().len() {
        let orig = zp.as_slice()[idx];
        zp.as_mut_slice()[idx] = orig + h;
        let up = f(&zp);
        zp.as_mut_slice()[idx] = orig - h;
        let down = f(&zp);
        zp.as_mut_slice()[idx] = orig;
        grad.as_mut_slice()[idx] = (up - down) / (2.0 * h);
    }
    grad
}

/// Definition 1's elementary FR metric at node `i`:
/// `⟨ ∂L_C(Z, A^clus)/∂z_i , ∂L_C(Z, A^sup)/∂z_i ⟩`.
pub fn fr_metric_at(z: &Mat, a_clus: &Csr, a_sup: &Csr, i: usize) -> f64 {
    let gc = laplacian_grad_z(z, a_clus);
    let gs = laplacian_grad_z(z, a_sup);
    gc.row(i).iter().zip(gs.row(i)).map(|(&a, &b)| a * b).sum()
}

/// Definition 2's elementary FD metric at node `i`:
/// `⟨ ∂L_C(Z, Ã^self)/∂z_i , ∂L_C(Z, A^sup)/∂z_i ⟩`.
pub fn fd_metric_at(z: &Mat, a_self_norm: &Csr, a_sup: &Csr, i: usize) -> f64 {
    fr_metric_at(z, a_self_norm, a_sup, i)
}

/// The aggregation `h(x_i) = Σ_j ã_ij x_j` used by §3.3.
pub fn aggregate(x: &Mat, a_norm: &Csr, i: usize) -> Vec<f64> {
    let mut out = vec![0.0; x.cols()];
    for (j, w) in a_norm.row_iter(i) {
        for (o, &v) in out.iter_mut().zip(x.row(j)) {
            *o += w * v;
        }
    }
    out
}

/// Eq. 12's filtering-impact predicate:
/// `𝒫(x_i) = ‖x_i − h^sup(x_i)‖ − ‖h^self(x_i) − h^sup(x_i)‖`.
/// Positive values mean the graph filter moves `x_i` *towards* its true
/// cluster centre.
pub fn filtering_impact(x: &Mat, a_self_norm: &Csr, a_sup: &Csr, i: usize) -> f64 {
    let h_self = aggregate(x, a_self_norm, i);
    let h_sup = aggregate(x, a_sup, i);
    let xi: Vec<f64> = x.row(i).to_vec();
    rgae_linalg::euclidean(&xi, &h_sup) - rgae_linalg::euclidean(&h_self, &h_sup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgae_graph::membership_graph;
    use rgae_linalg::{standard_normal, Rng64};

    fn random_instance(seed: u64, n: usize, d: usize) -> (Mat, Csr, Vec<usize>, usize) {
        let mut rng = Rng64::seed_from_u64(seed);
        let z = standard_normal(n, d, &mut rng);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if rng.bernoulli(0.3) {
                    edges.push((i, j));
                }
            }
        }
        let a = Csr::adjacency_from_edges(n, &edges).unwrap();
        let k = 3;
        let assign: Vec<usize> = (0..n).map(|_| rng.index(k)).collect();
        (z, a, assign, k)
    }

    /// Proposition 1: `L_bce = L_C(Z, A^self) + L_R(Z, A^self)`.
    #[test]
    fn proposition_1_bce_decomposition() {
        for seed in 0..5 {
            let (z, a, _, _) = random_instance(seed, 8, 3);
            let lhs = l_bce(&z, &a);
            let rhs = l_c(&z, &a) + l_r(&z, &a);
            assert!(
                (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
                "seed {seed}: {lhs} vs {rhs}"
            );
        }
    }

    /// Proposition 2: embedded k-means (with mean centroids) equals
    /// `L_C(Z, A^clus)` with the 1/|C_k| membership graph.
    #[test]
    fn proposition_2_kmeans_is_laplacian() {
        for seed in 5..10 {
            let (z, _, assign, k) = random_instance(seed, 9, 3);
            let lhs = l_kmeans(&z, &assign, k);
            let a_clus = membership_graph(&assign, k);
            let rhs = l_c(&z, &a_clus);
            assert!(
                (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
                "seed {seed}: {lhs} vs {rhs}"
            );
        }
    }

    /// Theorem 1: the combined loss equals
    /// `L_C(Z, A^clus + γ A^self) + γ L_R(Z, A^self)`.
    #[test]
    fn theorem_1_combined_decomposition() {
        for seed in 10..15 {
            let (z, a, assign, k) = random_instance(seed, 8, 3);
            let gamma = 0.37;
            let lhs = l_kmeans(&z, &assign, k) + gamma * l_bce(&z, &a);
            let a_clus = membership_graph(&assign, k).to_dense();
            let combined = a_clus.add(&a.to_dense().scale(gamma)).unwrap();
            let rhs = l_c_dense(&z, &combined) + gamma * l_r(&z, &a);
            assert!(
                (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
                "seed {seed}: {lhs} vs {rhs}"
            );
        }
    }

    /// Proposition 3: the closed-form BCE gradient matches finite
    /// differences of `l_bce`.
    #[test]
    fn proposition_3_bce_gradient() {
        let (z, a, _, _) = random_instance(20, 6, 2);
        let analytic = bce_grad_z(&z, &a);
        let numeric = numeric_grad(&z, |zz| l_bce(zz, &a));
        // `l_bce` sums over ordered pairs, so by symmetry of Â and A the
        // full derivative is exactly twice Proposition 3's per-row form.
        assert!(
            analytic.scale(2.0).max_abs_diff(&numeric) < 1e-4,
            "max diff {}",
            analytic.scale(2.0).max_abs_diff(&numeric)
        );
    }

    /// Proposition 4: the closed-form Laplacian gradient matches finite
    /// differences of `l_c` for the (symmetric) clustering graph.
    #[test]
    fn proposition_4_laplacian_gradient() {
        let (z, _, assign, k) = random_instance(21, 7, 2);
        let a_clus = membership_graph(&assign, k);
        // Σ_j a_ij (z_i − z_j) is the gradient of the *symmetrised* ½ΣΣ form
        // at rate 2× when both (i,j) and (j,i) are present; l_c uses the
        // double sum, so numeric d l_c / d z_i = 2 · Σ_j a_ij (z_i − z_j) / 2
        // … verify directly:
        let analytic = laplacian_grad_z(&z, &a_clus);
        let numeric = numeric_grad(&z, |zz| l_c(zz, &a_clus));
        // For symmetric A, d/dz_i [½ Σ_{jl} a_jl ‖z_j − z_l‖²]
        //   = 2 Σ_j a_ij (z_i − z_j) · ½ · 2 = Σ_j 2a_ij(z_i−z_j)… the
        // factor works out to exactly 2× Proposition 4's per-row form.
        assert!(
            analytic.scale(2.0).max_abs_diff(&numeric) < 1e-4,
            "max diff {}",
            analytic.scale(2.0).max_abs_diff(&numeric)
        );
    }

    /// The FR/FD metrics are inner products of the Proposition-3/4 style
    /// row gradients; identical graphs give non-negative self-similarity.
    #[test]
    fn fr_fd_metrics_basic_properties() {
        let (z, a, assign, k) = random_instance(22, 8, 3);
        let a_clus = membership_graph(&assign, k);
        let a_norm = a.sym_normalized();
        for i in 0..z.rows() {
            // Self inner product is a squared norm.
            assert!(fr_metric_at(&z, &a_clus, &a_clus, i) >= -1e-12);
            let v = fd_metric_at(&z, &a_norm, &a_clus, i);
            assert!(v.is_finite());
        }
    }

    /// 𝒫 on a perfectly homophilous graph: filtering moves nodes towards
    /// their cluster centre, so 𝒫 ≥ 0 (Theorem 4's precondition holds).
    #[test]
    fn filtering_impact_positive_under_homophily() {
        let mut rng = Rng64::seed_from_u64(23);
        // Two tight clusters, edges only inside clusters.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..6 {
                rows.push(vec![
                    c as f64 * 10.0 + rng.normal_with(0.0, 0.5),
                    rng.normal_with(0.0, 0.5),
                ]);
                labels.push(c);
            }
        }
        let x = Mat::from_rows(&rows).unwrap();
        let mut edges = Vec::new();
        for c in 0..2 {
            for i in 0..6 {
                for j in i + 1..6 {
                    edges.push((c * 6 + i, c * 6 + j));
                }
            }
        }
        let a = Csr::adjacency_from_edges(12, &edges).unwrap();
        let a_norm = a.gcn_normalized().unwrap().row_normalized();
        let a_sup = membership_graph(&labels, 2);
        let mut positives = 0;
        for i in 0..12 {
            if filtering_impact(&x, &a_norm, &a_sup, i) >= 0.0 {
                positives += 1;
            }
        }
        assert!(positives >= 10, "only {positives}/12 nodes improved");
    }

    /// Theorem 1's qualitative content: as γ grows the combined graph tilts
    /// from the clustering graph towards the (normalised) input graph —
    /// check the convexity of the mixture directly.
    #[test]
    fn gamma_tradeoff_mixture() {
        let (z, a, assign, k) = random_instance(24, 8, 3);
        let a_clus = membership_graph(&assign, k).to_dense();
        let a_dense = a.to_dense();
        let low = a_clus.add(&a_dense.scale(0.01)).unwrap();
        let high = a_clus.add(&a_dense.scale(10.0)).unwrap();
        // The high-γ loss is dominated by the self-supervision part.
        let self_part = l_c_dense(&z, &a_dense);
        let clus_part = l_c_dense(&z, &a_clus);
        assert!(
            (l_c_dense(&z, &high) - (clus_part + 10.0 * self_part)).abs() < 1e-8,
            "additivity"
        );
        assert!(
            (l_c_dense(&z, &low) - (clus_part + 0.01 * self_part)).abs() < 1e-8,
            "additivity"
        );
    }
}

//! Crash-safe checkpoint/resume for the trainers.
//!
//! The byte format, CRC framing, and rotating store live in `rgae-ckpt`;
//! this module owns the trainer-level [`TrainerState`] (phase, Ω,
//! A^self_clus, epoch records, …) because those types belong to this crate.
//!
//! Resume contract: a run checkpointed at any epoch and resumed produces
//! **bit-identical** losses, Ω trajectories, and final metrics to the
//! uninterrupted run, because the state captures every mutable input of the
//! loop — model parameters, Adam moments, the RNG stream position, Ω,
//! A^self_clus, and the accumulated records — at an exact epoch boundary.
//! Corrupt or truncated checkpoints are detected by CRC (or by decode
//! validation) and the loader falls back to the previous good generation;
//! with no readable checkpoint the trainer silently starts fresh. Every
//! save/load/fallback/corrupt interaction is surfaced as an
//! [`Event::Checkpoint`] in the run log.

use std::path::{Path, PathBuf};
use std::rc::Rc;

use rgae_ckpt::codec::{ByteReader, ByteWriter};
use rgae_ckpt::state::{get_csr, get_mat, put_csr, put_mat};
use rgae_ckpt::{CheckpointStore, ModelState};
use rgae_graph::GraphStats;
use rgae_linalg::{Csr, Mat, Rng64};
use rgae_obs::{Event, Recorder};

use crate::eval::Metrics;
use crate::trainer::EpochRecord;
use crate::xi::Omega;
use crate::{Error, Result};

/// Trainer-state variant tag: plain (un-modified 𝒟) runs.
pub(crate) const VARIANT_PLAIN: u8 = 0;
/// Trainer-state variant tag: R-𝒟 runs.
pub(crate) const VARIANT_R: u8 = 1;

/// Where the trainer stands, and where a resume would re-enter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Mid-pretraining; resume runs pretrain epochs `next_epoch..`.
    Pretrain {
        /// First pretraining epoch still to run.
        next_epoch: usize,
    },
    /// Mid-clustering; resume runs clustering epochs `next_epoch..`.
    Clustering {
        /// First clustering epoch still to run.
        next_epoch: usize,
    },
    /// Training finished; resume replays the stored report.
    Done,
}

impl Phase {
    /// Stable name for run-log events.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Pretrain { .. } => "pretrain",
            Phase::Clustering { .. } => "clustering",
            Phase::Done => "done",
        }
    }

    /// The epoch a resume would continue at, when mid-phase.
    pub fn next_epoch(&self) -> Option<usize> {
        match self {
            Phase::Pretrain { next_epoch } | Phase::Clustering { next_epoch } => Some(*next_epoch),
            Phase::Done => None,
        }
    }
}

/// Checkpointing knobs for a trainer run.
#[derive(Clone, Debug)]
pub struct CheckpointOpts {
    /// Directory holding this run's checkpoint files (`state.rgck` +
    /// `state.prev.rgck`). One directory per (experiment, model, dataset,
    /// variant, seed) — the trainer rejects state from a different setup
    /// only by model architecture, not by provenance.
    pub dir: PathBuf,
    /// Save every `every` epochs (in both phases). `0` disables periodic
    /// saves; phase-boundary and end-of-run saves still happen.
    pub every: usize,
    /// Load and continue from the newest readable checkpoint in `dir`.
    /// When `false`, existing files are ignored (and overwritten).
    pub resume: bool,
    /// Testing hook: return [`Error::Halted`] right after the Nth
    /// successful save *of the current trainer entry* (pretrain and the
    /// clustering phase each count their own saves). Simulates a crash at a
    /// deterministic point.
    pub halt_after_saves: Option<usize>,
}

impl CheckpointOpts {
    /// Checkpoints in `dir`, saving every 25 epochs, no resume.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOpts {
            dir: dir.into(),
            every: 25,
            resume: false,
            halt_after_saves: None,
        }
    }

    /// Set the save period (epochs).
    pub fn every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }

    /// Enable resuming from the newest readable checkpoint.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Halt (with [`Error::Halted`]) after N saves — deterministic
    /// crash-injection for tests.
    pub fn halt_after_saves(mut self, n: usize) -> Self {
        self.halt_after_saves = Some(n);
        self
    }
}

/// Everything a trainer needs to re-enter its loop mid-phase.
#[derive(Clone, Debug)]
pub struct TrainerState {
    /// [`VARIANT_PLAIN`] or [`VARIANT_R`].
    pub(crate) variant: u8,
    /// Where to re-enter.
    pub(crate) phase: Phase,
    /// Model parameters + optimiser moments.
    pub(crate) model: ModelState,
    /// RNG stream position at the save point.
    pub(crate) rng_words: [u64; 4],
    /// Cached Box–Muller spare at the save point.
    pub(crate) rng_spare: Option<f64>,
    /// Current Ω (clustering phase only).
    pub(crate) omega: Option<Omega>,
    /// Current A^self_clus (clustering phase only).
    pub(crate) a_self: Option<Csr>,
    /// Convergence epoch, if already reached.
    pub(crate) converged_at: Option<usize>,
    /// Metrics after pretraining, once evaluated.
    pub(crate) pretrain_metrics: Option<Metrics>,
    /// Final metrics (phase `Done` only).
    pub(crate) final_metrics: Option<Metrics>,
    /// Epoch records accumulated so far.
    pub(crate) epochs: Vec<EpochRecord>,
    /// `(epoch, Z, A^self_clus)` snapshots so far (`None` graph for plain
    /// runs).
    pub(crate) snapshots: Vec<(usize, Mat, Option<Csr>)>,
    /// Clustering-phase wall-clock seconds accumulated before the save.
    pub(crate) elapsed_seconds: f64,
    /// The guard recovery policy ran out of retries and the run finished on
    /// last-good parameters (phase `Done` only).
    pub(crate) degraded: bool,
}

impl TrainerState {
    pub(crate) fn new(variant: u8, phase: Phase, model: ModelState, rng: &Rng64) -> Self {
        let (rng_words, rng_spare) = rng.state();
        TrainerState {
            variant,
            phase,
            model,
            rng_words,
            rng_spare,
            omega: None,
            a_self: None,
            converged_at: None,
            pretrain_metrics: None,
            final_metrics: None,
            epochs: Vec::new(),
            snapshots: Vec::new(),
            elapsed_seconds: 0.0,
            degraded: false,
        }
    }

    /// Rebuild the RNG at the saved stream position.
    pub(crate) fn rng(&self) -> Rng64 {
        Rng64::from_state(self.rng_words, self.rng_spare)
    }

    /// Serialise to checkpoint payload bytes.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(self.variant);
        match self.phase {
            Phase::Pretrain { next_epoch } => {
                w.put_u8(0);
                w.put_usize(next_epoch);
            }
            Phase::Clustering { next_epoch } => {
                w.put_u8(1);
                w.put_usize(next_epoch);
            }
            Phase::Done => w.put_u8(2),
        }
        self.model.encode(&mut w);
        for word in self.rng_words {
            w.put_u64(word);
        }
        w.put_opt_f64(self.rng_spare);
        match &self.omega {
            Some(o) => {
                w.put_bool(true);
                put_omega(&mut w, o);
            }
            None => w.put_bool(false),
        }
        match &self.a_self {
            Some(a) => {
                w.put_bool(true);
                put_csr(&mut w, a);
            }
            None => w.put_bool(false),
        }
        w.put_opt_usize(self.converged_at);
        put_opt_metrics(&mut w, self.pretrain_metrics.as_ref());
        put_opt_metrics(&mut w, self.final_metrics.as_ref());
        w.put_usize(self.epochs.len());
        for e in &self.epochs {
            put_epoch_record(&mut w, e);
        }
        w.put_usize(self.snapshots.len());
        for (epoch, z, a) in &self.snapshots {
            w.put_usize(*epoch);
            put_mat(&mut w, z);
            match a {
                Some(a) => {
                    w.put_bool(true);
                    put_csr(&mut w, a);
                }
                None => w.put_bool(false),
            }
        }
        w.put_f64(self.elapsed_seconds);
        w.put_bool(self.degraded);
        w.into_bytes()
    }

    /// Deserialise from checkpoint payload bytes.
    pub(crate) fn decode(bytes: &[u8]) -> rgae_ckpt::Result<TrainerState> {
        use rgae_ckpt::Error as CkptError;
        let r = &mut ByteReader::new(bytes);
        let variant = r.get_u8()?;
        if variant != VARIANT_PLAIN && variant != VARIANT_R {
            return Err(CkptError::Corrupt("unknown trainer variant"));
        }
        let phase = match r.get_u8()? {
            0 => Phase::Pretrain {
                next_epoch: r.get_usize()?,
            },
            1 => Phase::Clustering {
                next_epoch: r.get_usize()?,
            },
            2 => Phase::Done,
            _ => return Err(CkptError::Corrupt("unknown trainer phase")),
        };
        let model = ModelState::decode(r)?;
        let rng_words = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
        let rng_spare = r.get_opt_f64()?;
        let omega = if r.get_bool()? {
            Some(get_omega(r)?)
        } else {
            None
        };
        let a_self = if r.get_bool()? {
            Some(get_csr(r)?)
        } else {
            None
        };
        let converged_at = r.get_opt_usize()?;
        let pretrain_metrics = get_opt_metrics(r)?;
        let final_metrics = get_opt_metrics(r)?;
        let n = r.get_len(8)?;
        let mut epochs = Vec::with_capacity(n);
        for _ in 0..n {
            epochs.push(get_epoch_record(r)?);
        }
        let n = r.get_len(8)?;
        let mut snapshots = Vec::with_capacity(n);
        for _ in 0..n {
            let epoch = r.get_usize()?;
            let z = get_mat(r)?;
            let a = if r.get_bool()? {
                Some(get_csr(r)?)
            } else {
                None
            };
            snapshots.push((epoch, z, a));
        }
        let elapsed_seconds = r.get_f64()?;
        let degraded = r.get_bool()?;
        if !r.is_done() {
            return Err(CkptError::Corrupt("trailing bytes after trainer state"));
        }
        Ok(TrainerState {
            variant,
            phase,
            model,
            rng_words,
            rng_spare,
            omega,
            a_self,
            converged_at,
            pretrain_metrics,
            final_metrics,
            epochs,
            snapshots,
            elapsed_seconds,
            degraded,
        })
    }

    /// The stored snapshots in the R-report shape (graphs defaulting to
    /// `fallback` when a snapshot carries none).
    pub(crate) fn r_snapshots(&self, fallback: &Rc<Csr>) -> Vec<(usize, Mat, Rc<Csr>)> {
        self.snapshots
            .iter()
            .map(|(e, z, a)| {
                let graph = a
                    .as_ref()
                    .map_or_else(|| Rc::clone(fallback), |a| Rc::new(a.clone()));
                (*e, z.clone(), graph)
            })
            .collect()
    }

    /// The stored snapshots in the plain-report shape.
    pub(crate) fn plain_snapshots(&self) -> Vec<(usize, Mat)> {
        self.snapshots
            .iter()
            .map(|(e, z, _)| (*e, z.clone()))
            .collect()
    }
}

fn put_omega(w: &mut ByteWriter, o: &Omega) {
    w.put_usizes(&o.indices);
    w.put_f64s(&o.lambda1);
    w.put_f64s(&o.lambda2);
}

fn get_omega(r: &mut ByteReader) -> rgae_ckpt::Result<Omega> {
    Ok(Omega {
        indices: r.get_usizes()?,
        lambda1: r.get_f64s()?,
        lambda2: r.get_f64s()?,
    })
}

fn put_opt_metrics(w: &mut ByteWriter, m: Option<&Metrics>) {
    match m {
        Some(m) => {
            w.put_bool(true);
            w.put_f64(m.acc);
            w.put_f64(m.nmi);
            w.put_f64(m.ari);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_metrics(r: &mut ByteReader) -> rgae_ckpt::Result<Option<Metrics>> {
    Ok(if r.get_bool()? {
        Some(Metrics {
            acc: r.get_f64()?,
            nmi: r.get_f64()?,
            ari: r.get_f64()?,
        })
    } else {
        None
    })
}

fn put_opt_pair(w: &mut ByteWriter, p: Option<(usize, usize)>) {
    match p {
        Some((a, b)) => {
            w.put_bool(true);
            w.put_usize(a);
            w.put_usize(b);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_pair(r: &mut ByteReader) -> rgae_ckpt::Result<Option<(usize, usize)>> {
    Ok(if r.get_bool()? {
        Some((r.get_usize()?, r.get_usize()?))
    } else {
        None
    })
}

fn put_epoch_record(w: &mut ByteWriter, e: &EpochRecord) {
    w.put_usize(e.epoch);
    w.put_f64(e.loss);
    put_opt_metrics(w, e.metrics.as_ref());
    w.put_usize(e.omega_size);
    w.put_f64(e.omega_acc);
    w.put_f64(e.rest_acc);
    match &e.graph_stats {
        Some(s) => {
            w.put_bool(true);
            w.put_usize(s.num_edges);
            w.put_usize(s.true_links);
            w.put_usize(s.false_links);
            w.put_f64(s.mean_degree);
            w.put_usize(s.max_degree);
            w.put_usize(s.isolated);
        }
        None => w.put_bool(false),
    }
    put_opt_pair(w, e.added_links);
    put_opt_pair(w, e.dropped_links);
    w.put_opt_f64(e.lambda_fr_restricted);
    w.put_opt_f64(e.lambda_fr_full);
    w.put_opt_f64(e.lambda_fd_current);
    w.put_opt_f64(e.lambda_fd_vanilla);
}

fn get_epoch_record(r: &mut ByteReader) -> rgae_ckpt::Result<EpochRecord> {
    Ok(EpochRecord {
        epoch: r.get_usize()?,
        loss: r.get_f64()?,
        metrics: get_opt_metrics(r)?,
        omega_size: r.get_usize()?,
        omega_acc: r.get_f64()?,
        rest_acc: r.get_f64()?,
        graph_stats: if r.get_bool()? {
            Some(GraphStats {
                num_edges: r.get_usize()?,
                true_links: r.get_usize()?,
                false_links: r.get_usize()?,
                mean_degree: r.get_f64()?,
                max_degree: r.get_usize()?,
                isolated: r.get_usize()?,
            })
        } else {
            None
        },
        added_links: get_opt_pair(r)?,
        dropped_links: get_opt_pair(r)?,
        lambda_fr_restricted: r.get_opt_f64()?,
        lambda_fr_full: r.get_opt_f64()?,
        lambda_fd_current: r.get_opt_f64()?,
        lambda_fd_vanilla: r.get_opt_f64()?,
    })
}

/// The trainers' handle on a checkpoint directory: periodic saves with
/// rotation, resume loading with CRC fallback, and run-log events for every
/// interaction.
pub(crate) struct Saver<'a> {
    opts: &'a CheckpointOpts,
    store: CheckpointStore,
    rec: &'a dyn Recorder,
    saves: usize,
}

impl<'a> Saver<'a> {
    /// Open the store when checkpointing is configured.
    pub fn open(
        opts: Option<&'a CheckpointOpts>,
        rec: &'a dyn Recorder,
    ) -> Result<Option<Saver<'a>>> {
        let Some(opts) = opts else { return Ok(None) };
        let store = CheckpointStore::open(&opts.dir)
            .map_err(|e| Error::Checkpoint(format!("open {}: {e}", opts.dir.display())))?;
        Ok(Some(Saver {
            opts,
            store,
            rec,
            saves: 0,
        }))
    }

    /// Should a periodic save happen before running `next_epoch`?
    pub fn due(&self, next_epoch: usize) -> bool {
        self.opts.every > 0 && next_epoch.is_multiple_of(self.opts.every)
    }

    fn emit(&self, action: &str, path: &Path, phase: &str, epoch: Option<usize>) {
        if self.rec.enabled() {
            self.rec.record(&Event::Checkpoint {
                action: action.into(),
                path: path.display().to_string(),
                phase: phase.into(),
                epoch,
            });
        }
    }

    /// Save (rotating latest → prev). Returns [`Error::Halted`] right after
    /// the configured Nth save when crash injection is armed.
    pub fn save(&mut self, state: &TrainerState) -> Result<()> {
        let payload = state.encode();
        let path = self
            .store
            .save(&payload)
            .map_err(|e| Error::Checkpoint(format!("save: {e}")))?;
        self.emit("saved", &path, state.phase.name(), state.phase.next_epoch());
        self.saves += 1;
        if let Some(n) = self.opts.halt_after_saves {
            if self.saves >= n {
                return Err(Error::Halted);
            }
        }
        Ok(())
    }

    /// Load the newest readable checkpoint of the expected variant, falling
    /// back across generations on CRC or decode failure. `None` when resume
    /// is off, nothing is readable, or the stored variant does not match —
    /// the trainer then starts fresh. Never returns an error for corrupt
    /// data: corruption is survivable by design.
    pub fn load_for_resume(&self, variant: u8) -> Option<TrainerState> {
        if !self.opts.resume {
            return None;
        }
        self.load_candidates(&self.store.candidates(), variant, "loaded")
    }

    /// Tag the just-written latest generation as healthy: the guard layer
    /// verified the saved state before calling [`Saver::save`], so this copy
    /// survives later rotations as a rollback target even if newer saves are
    /// corrupted on disk.
    pub fn mark_healthy(&self, state: &TrainerState) -> Result<()> {
        let path = self
            .store
            .tag_healthy()
            .map_err(|e| Error::Checkpoint(format!("tag healthy: {e}")))?;
        self.emit(
            "healthy",
            &path,
            state.phase.name(),
            state.phase.next_epoch(),
        );
        Ok(())
    }

    /// Load the best state for a guard rollback, regardless of the resume
    /// flag: the latest save first (rollback targets are only ever written
    /// on healthy epochs), then the healthy-tagged generation, then the
    /// previous one. `None` when nothing usable is on disk — the trainer
    /// then falls back to its in-memory last-good snapshot.
    pub fn load_for_rollback(&self, variant: u8) -> Option<TrainerState> {
        self.load_candidates(&self.store.recovery_candidates(), variant, "rollback")
    }

    fn load_candidates(
        &self,
        candidates: &[PathBuf],
        variant: u8,
        first_action: &str,
    ) -> Option<TrainerState> {
        let mut rejected = 0;
        for path in candidates {
            if !path.exists() {
                continue;
            }
            let state =
                rgae_ckpt::read_checkpoint(path).and_then(|payload| TrainerState::decode(&payload));
            match state {
                Ok(st) if st.variant == variant => {
                    let action = if rejected == 0 {
                        first_action
                    } else {
                        "fallback"
                    };
                    self.emit(action, path, st.phase.name(), st.phase.next_epoch());
                    return Some(st);
                }
                Ok(_) | Err(_) => {
                    self.emit("corrupt", path, "unknown", None);
                    rejected += 1;
                }
            }
        }
        None
    }

    /// Fault injection: flip one byte of the latest on-disk generation, at
    /// an offset derived deterministically from `salt` via [`Rng64`].
    /// Returns whether a file was actually damaged (there may be none yet).
    pub fn corrupt_latest(&self, salt: u64) -> Result<bool> {
        let path = self.store.latest_path();
        if !path.exists() {
            return Ok(false);
        }
        let io = |e: std::io::Error| Error::Checkpoint(format!("corrupt fault: {e}"));
        let mut bytes = std::fs::read(&path).map_err(io)?;
        if bytes.is_empty() {
            return Ok(false);
        }
        let mut rng = Rng64::seed_from_u64(salt ^ 0xFA_17_FA_17);
        let offset = rng.index(bytes.len());
        bytes[offset] ^= 0xFF;
        // Deliberately a plain in-place write: this simulates bit rot on a
        // fully-written file, not a torn write.
        std::fs::write(&path, &bytes).map_err(io)?;
        Ok(true)
    }
}

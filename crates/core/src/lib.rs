//! The paper's contribution: the sampling operator **Ξ** (a protection
//! mechanism against Feature Randomness), the graph-transforming operator
//! **Υ** (a correction mechanism against Feature Drift), the generic
//! R-trainer that integrates both into any [`rgae_models::GaeModel`], the
//! Λ_FR / Λ_FD gradient-cosine diagnostics, and a numerical verification of
//! the paper's §3 theory.
//!
//! # Quick tour
//!
//! ```no_run
//! use rgae_core::{RConfig, RTrainer};
//! use rgae_datasets::presets::cora_like;
//! use rgae_linalg::Rng64;
//! use rgae_models::{Dgae, TrainData};
//!
//! let graph = cora_like(0.25, 7).unwrap();
//! let data = TrainData::from_graph(&graph);
//! let mut rng = Rng64::seed_from_u64(0);
//! let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
//! let report = RTrainer::new(RConfig::for_dataset("cora-like"))
//!     .train(&mut model, &graph, &mut rng)
//!     .unwrap();
//! println!("R-DGAE ACC = {:.3}", report.final_metrics.acc);
//! ```

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

mod checkpoint;
mod diagnostics;
mod eval;
mod multiplex;
pub mod theory;
mod trainer;
mod upsilon;
mod xi;

pub use checkpoint::{CheckpointOpts, Phase, TrainerState};
pub use diagnostics::{lambda_fd, lambda_fr, one_hot_targets, one_hot_targets_counted, q_prime};
pub use eval::{evaluate, soft_assignments_or_kmeans, xi_assignments_or_kmeans, Metrics};
pub use multiplex::{multiplex_self_supervision, upsilon_multiplex, MultiplexUpsilonOutcome};
pub use trainer::{
    train_plain, train_plain_ckpt, train_plain_traced, EpochRecord, FdMode, PlainReport, RConfig,
    RReport, RTrainer,
};
pub use upsilon::{upsilon, UpsilonConfig, UpsilonOutcome};
pub use xi::{xi, Omega, XiConfig};
// The guard layer's configuration surface, re-exported so trainer callers
// can fill `RConfig::guard` without depending on `rgae-guard` directly.
pub use rgae_guard::{FaultKind, FaultSpec, GuardConfig};

/// Errors from the R-GAE pipeline.
#[derive(Debug)]
pub enum Error {
    /// Model-layer failure.
    Model(rgae_models::Error),
    /// Clustering-layer failure.
    Cluster(rgae_cluster::Error),
    /// Graph-layer failure.
    Graph(rgae_graph::Error),
    /// Configuration invariant violated.
    Config(&'static str),
    /// Checkpoint store failure (I/O only — corrupt checkpoint *contents*
    /// never error; the loader falls back or starts fresh).
    Checkpoint(String),
    /// The crash-injection hook fired right after a checkpoint save
    /// (`CheckpointOpts::halt_after_saves`). Not a real failure: resuming
    /// from the checkpoint continues the run bit-identically.
    Halted,
}

impl From<rgae_models::Error> for Error {
    fn from(e: rgae_models::Error) -> Self {
        Error::Model(e)
    }
}

impl From<rgae_cluster::Error> for Error {
    fn from(e: rgae_cluster::Error) -> Self {
        Error::Cluster(e)
    }
}

impl From<rgae_graph::Error> for Error {
    fn from(e: rgae_graph::Error) -> Self {
        Error::Graph(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Model(e) => write!(f, "model: {e}"),
            Error::Cluster(e) => write!(f, "cluster: {e}"),
            Error::Graph(e) => write!(f, "graph: {e}"),
            Error::Config(m) => write!(f, "config: {m}"),
            Error::Checkpoint(m) => write!(f, "checkpoint: {m}"),
            Error::Halted => write!(f, "halted after checkpoint save (crash injection)"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

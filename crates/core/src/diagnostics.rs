//! The Λ_FR and Λ_FD gradient-cosine diagnostics (Eqs. 4 and 7).
//!
//! Both metrics compare the direction of a *pseudo-supervised* gradient with
//! the direction of its *supervised* counterpart, at the current parameters
//! θ, without updating anything:
//!
//! * **Λ_FR** (Eq. 4) — clustering loss driven by the model's own soft
//!   assignments (restricted to Ω under Ξ) versus driven by `Q′`, the
//!   Hungarian-mapped ground truth, over all nodes. Values near 1 mean the
//!   pseudo-labels push θ the same way the true labels would — little
//!   Feature Randomness.
//! * **Λ_FD** (Eq. 7) — reconstruction (BCE) loss against the
//!   pseudo-supervised graph `Υ(A, P(Ξ(Z)), Ω)` versus against the fully
//!   supervised clustering-oriented graph `Υ(A, Q′, 𝒱)`. Values near 1 mean
//!   the current self-supervision graph is already clustering-oriented —
//!   little Feature Drift.

use std::rc::Rc;

use rgae_linalg::{cosine, Csr, Mat};
use rgae_models::{GaeModel, TrainData};
use rgae_obs::Recorder;

use crate::{Error, Result};

/// `y(Q′)`: ground-truth labels expressed in the predicted clusters' id
/// space via the Hungarian algorithm (the paper's `𝔸_H(Q, P)`).
pub fn q_prime(pred: &[usize], truth: &[usize]) -> Vec<usize> {
    // `map_predictions_to_labels` returns predictions relabelled into truth
    // space; Λ needs truth relabelled into prediction space, which is the
    // inverse permutation. Build it from the same Hungarian mapping.
    let mapping = rgae_cluster::best_mapping(pred, truth);
    // mapping[pred_cluster] = label; invert. The Hungarian assignment is a
    // permutation over the padded label space, but guard the lookup anyway:
    // if a truth label has no pre-image (or lies outside the mapping, which
    // unequal pred/truth cluster counts can produce through upstream
    // padding bugs), fall back to the label itself instead of panicking.
    let k = mapping.len();
    let mut inverse: Vec<Option<usize>> = vec![None; k];
    for (p, &l) in mapping.iter().enumerate() {
        if let Some(slot) = inverse.get_mut(l) {
            *slot = Some(p);
        }
    }
    truth
        .iter()
        .map(|&t| inverse.get(t).copied().flatten().unwrap_or(t))
        .collect()
}

/// One-hot row-stochastic matrix from hard labels. Out-of-range labels are
/// clamped to the last class; [`one_hot_targets_counted`] reports how many
/// rows that affected.
pub fn one_hot_targets(labels: &[usize], k: usize) -> Mat {
    one_hot_targets_counted(labels, k).0
}

/// [`one_hot_targets`] plus the number of labels that were out of range and
/// had to be clamped to `k - 1`. A non-zero count means the supervised
/// branch of Λ_FR is being computed against a corrupted target — callers
/// surface it through the run log as the `label_clamp` counter.
pub fn one_hot_targets_counted(labels: &[usize], k: usize) -> (Mat, usize) {
    let mut m = Mat::zeros(labels.len(), k);
    let mut clamped = 0;
    for (i, &l) in labels.iter().enumerate() {
        if l >= k {
            clamped += 1;
        }
        m[(i, l.min(k - 1))] = 1.0;
    }
    (m, clamped)
}

/// Λ_FR at the current parameters.
///
/// * `pseudo_target` — the model's own clustering target (DEC `Q`, GMM
///   responsibilities), over all nodes;
/// * `omega` — optional Ξ restriction applied to the pseudo branch;
/// * `truth` — ground-truth labels;
/// * `rec` — run-log recorder; any Q′ labels that fall outside the model's
///   `k` clusters and get clamped are reported as the `label_clamp` counter
///   (pass [`rgae_obs::NOOP`] when not tracing).
///
/// Returns `None` for first-group models (no clustering head).
pub fn lambda_fr(
    model: &dyn GaeModel,
    data: &TrainData,
    pseudo_target: &Mat,
    omega: Option<&[usize]>,
    truth: &[usize],
    rec: &dyn Recorder,
) -> Result<Option<f64>> {
    let Some(grad_pseudo) = model.clustering_grad(data, pseudo_target, omega)? else {
        return Ok(None);
    };
    // Supervised branch: Q′ one-hot over all nodes.
    let pred = pseudo_target.row_argmax();
    let qp = q_prime(&pred, truth);
    let (supervised, clamped) = one_hot_targets_counted(&qp, pseudo_target.cols());
    rec.count("label_clamp", clamped as u64);
    let grad_sup = model
        .clustering_grad(data, &supervised, None)?
        .ok_or(Error::Config("model lost its clustering head mid-run"))?;
    Ok(Some(cosine(&grad_pseudo, &grad_sup)))
}

/// Λ_FD at the current parameters.
///
/// * `pseudo_graph` — the current self-supervision graph
///   `Υ(A, P(Ξ(Z)), Ω)` (or plain `A` for a vanilla model);
/// * `supervised_graph` — the fully supervised clustering-oriented graph
///   `Υ(A, Q′, 𝒱)`.
pub fn lambda_fd(
    model: &dyn GaeModel,
    data: &TrainData,
    pseudo_graph: &Rc<Csr>,
    supervised_graph: &Rc<Csr>,
) -> Result<f64> {
    let g_pseudo = model.recon_grad(data, pseudo_graph)?;
    let g_sup = model.recon_grad(data, supervised_graph)?;
    Ok(cosine(&g_pseudo, &g_sup))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_prime_is_truth_in_pred_space() {
        // Predictions systematically swap 0↔1 relative to truth.
        let pred = [1, 1, 0, 0];
        let truth = [0, 0, 1, 1];
        let qp = q_prime(&pred, &truth);
        assert_eq!(qp, vec![1, 1, 0, 0]);
        // A perfect (identity) predictor maps truth to itself.
        let qp2 = q_prime(&[0, 1, 2], &[0, 1, 2]);
        assert_eq!(qp2, vec![0, 1, 2]);
    }

    #[test]
    fn q_prime_matches_mapped_predictions_when_perfect() {
        let pred = [2, 0, 1, 2, 0];
        let truth = [0, 1, 2, 0, 1];
        // Perfect up to permutation → mapped predictions equal truth and
        // q_prime equals pred.
        assert_eq!(
            rgae_cluster::map_predictions_to_labels(&pred, &truth),
            truth.to_vec()
        );
        assert_eq!(q_prime(&pred, &truth), pred.to_vec());
    }

    #[test]
    fn one_hot_rows_are_valid() {
        let m = one_hot_targets(&[0, 2, 1], 3);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(2), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn one_hot_clamps_out_of_range() {
        let m = one_hot_targets(&[5], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn one_hot_counted_reports_clamped_rows() {
        let (m, clamped) = one_hot_targets_counted(&[0, 5, 2, 7], 3);
        assert_eq!(clamped, 2);
        assert_eq!(m.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(3), &[0.0, 0.0, 1.0]);
        let (_, none) = one_hot_targets_counted(&[0, 1, 2], 3);
        assert_eq!(none, 0);
    }

    #[test]
    fn q_prime_handles_fewer_predicted_clusters() {
        // Predictions collapse onto a single cluster while truth has three;
        // the padded Hungarian mapping leaves labels without a pre-image and
        // the lookup must fall back rather than panic.
        let pred = [0, 0, 0, 0, 0, 0];
        let truth = [0, 1, 2, 0, 1, 2];
        let qp = q_prime(&pred, &truth);
        assert_eq!(qp.len(), truth.len());
    }

    use proptest::prelude::*;

    proptest! {
        /// Unequal pred/truth cluster counts must never panic, and the
        /// output must stay aligned with the input.
        #[test]
        fn q_prime_total_on_unequal_cluster_counts(
            pred in proptest::collection::vec(0usize..4, 1..40),
            truth_k in 1usize..8,
            seed in 0u64..1000,
        ) {
            let mut s = seed;
            let truth: Vec<usize> = pred
                .iter()
                .map(|_| {
                    // Cheap deterministic stream, independent of `pred`.
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as usize) % truth_k
                })
                .collect();
            let qp = q_prime(&pred, &truth);
            prop_assert_eq!(qp.len(), truth.len());
            // Outputs live in the padded label space.
            let k = pred.iter().chain(truth.iter()).max().unwrap() + 1;
            prop_assert!(qp.iter().all(|&l| l < k));
        }
    }
}

//! The sampling operator Ξ (Algorithm 1): a protection mechanism against
//! Feature Randomness.
//!
//! Given soft clustering assignments `P′`, Ξ extracts for each node the
//! first and second high-confidence scores (Eqs. 16–17) and keeps the set Ω
//! of *decidable* nodes (Eq. 18): `λ¹ ≥ α₁` **and** `λ¹ − λ² ≥ α₂`, with
//! `α₂ = α₁ / 2` by default. Complexity O(N·K) given the soft assignments
//! (the paper's O(N·K²·d) includes building Eq. 15, which lives in
//! `rgae_cluster::gaussian_soft_assignments`).

use rgae_linalg::Mat;

use crate::{Error, Result};

/// Configuration of Ξ. The two `use_*` switches implement the Table 8
/// ablations.
#[derive(Clone, Debug)]
pub struct XiConfig {
    /// First confidence threshold α₁ ∈ [0, 1].
    pub alpha1: f64,
    /// Second (margin) threshold α₂; the paper fixes α₂ = α₁/2.
    pub alpha2: f64,
    /// Ablation switch: enforce the λ¹ ≥ α₁ criterion.
    pub use_alpha1: bool,
    /// Ablation switch: enforce the λ¹ − λ² ≥ α₂ criterion.
    pub use_alpha2: bool,
}

impl XiConfig {
    /// The paper's parameterisation: `α₂ = α₁ / 2`, both criteria on.
    pub fn new(alpha1: f64) -> Self {
        XiConfig {
            alpha1,
            alpha2: alpha1 / 2.0,
            use_alpha1: true,
            use_alpha2: true,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.alpha1) || !(0.0..=1.0).contains(&self.alpha2) {
            return Err(Error::Config("xi thresholds must lie in [0,1]"));
        }
        Ok(())
    }
}

/// The output of Ξ: the decidable set and the per-node confidence scores.
#[derive(Clone, Debug)]
pub struct Omega {
    /// Indices of decidable nodes, ascending.
    pub indices: Vec<usize>,
    /// λ¹ per node (first high-confidence score, Eq. 16).
    pub lambda1: Vec<f64>,
    /// λ² per node (second high-confidence score, Eq. 17); equals 0 when
    /// `K = 1`.
    pub lambda2: Vec<f64>,
}

impl Omega {
    /// |Ω|.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether Ω is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Fraction of decidable nodes |Ω| / N.
    pub fn coverage(&self, n: usize) -> f64 {
        self.indices.len() as f64 / n.max(1) as f64
    }

    /// Membership mask over all nodes.
    pub fn mask(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for &i in &self.indices {
            m[i] = true;
        }
        m
    }

    /// Complement 𝒱 − Ω.
    pub fn complement(&self, n: usize) -> Vec<usize> {
        let mask = self.mask(n);
        (0..n).filter(|&i| !mask[i]).collect()
    }
}

/// Apply Ξ to a row-stochastic soft-assignment matrix.
pub fn xi(p_soft: &Mat, cfg: &XiConfig) -> Result<Omega> {
    cfg.validate()?;
    let (n, k) = p_soft.shape();
    if k == 0 {
        return Err(Error::Config("xi: zero clusters"));
    }
    let mut lambda1 = Vec::with_capacity(n);
    let mut lambda2 = Vec::with_capacity(n);
    let mut indices = Vec::new();
    for i in 0..n {
        let row = p_soft.row(i);
        let mut best = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &v in row {
            if v > best {
                second = best;
                best = v;
            } else if v > second {
                second = v;
            }
        }
        if k == 1 {
            second = 0.0;
        }
        lambda1.push(best);
        lambda2.push(second);
        let pass1 = !cfg.use_alpha1 || best >= cfg.alpha1;
        let pass2 = !cfg.use_alpha2 || (best - second) >= cfg.alpha2;
        if pass1 && pass2 {
            indices.push(i);
        }
    }
    Ok(Omega {
        indices,
        lambda1,
        lambda2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Mat {
        Mat::from_rows(&[
            vec![0.90, 0.05, 0.05], // confident, wide margin
            vec![0.50, 0.45, 0.05], // confident-ish, narrow margin
            vec![0.40, 0.35, 0.25], // low confidence
            vec![0.34, 0.33, 0.33], // uniform
        ])
        .unwrap()
    }

    #[test]
    fn selects_confident_wide_margin_nodes() {
        let omega = xi(&p(), &XiConfig::new(0.5)).unwrap();
        // α₁ = 0.5, α₂ = 0.25: node 0 passes both, node 1 fails the margin,
        // nodes 2–3 fail α₁.
        assert_eq!(omega.indices, vec![0]);
    }

    #[test]
    fn alpha2_ablation_admits_narrow_margins() {
        let mut cfg = XiConfig::new(0.5);
        cfg.use_alpha2 = false;
        let omega = xi(&p(), &cfg).unwrap();
        assert_eq!(omega.indices, vec![0, 1]);
    }

    #[test]
    fn alpha1_ablation_admits_low_confidence_with_margin() {
        let q = Mat::from_rows(&[
            vec![0.30, 0.02, 0.68], // margin 0.38 ≥ 0.25 but λ¹ < α₁? λ¹=0.68 ≥ 0.5 actually
            vec![0.40, 0.35, 0.25], // λ¹=0.40 < 0.5, margin 0.05 < 0.25
            vec![0.45, 0.10, 0.45], // λ¹=0.45 < 0.5, margin 0.0
            vec![0.49, 0.17, 0.34], // λ¹=0.49 < 0.5, margin 0.15 < 0.25... use margin 0.25
        ])
        .unwrap();
        let mut cfg = XiConfig::new(0.5);
        cfg.use_alpha1 = false;
        let omega = xi(&q, &cfg).unwrap();
        // Only rows whose margin ≥ 0.25 pass: row 0 (0.68−0.30=0.38).
        assert_eq!(omega.indices, vec![0]);
    }

    #[test]
    fn both_ablated_selects_everything() {
        let mut cfg = XiConfig::new(0.9);
        cfg.use_alpha1 = false;
        cfg.use_alpha2 = false;
        let omega = xi(&p(), &cfg).unwrap();
        assert_eq!(omega.len(), 4);
    }

    #[test]
    fn lambda_scores_are_top_two() {
        let omega = xi(&p(), &XiConfig::new(0.3)).unwrap();
        assert!((omega.lambda1[0] - 0.90).abs() < 1e-12);
        assert!((omega.lambda2[0] - 0.05).abs() < 1e-12);
        assert!((omega.lambda1[1] - 0.50).abs() < 1e-12);
        assert!((omega.lambda2[1] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn high_alpha_gives_empty_omega() {
        let omega = xi(&p(), &XiConfig::new(0.99)).unwrap();
        assert!(omega.is_empty());
        assert_eq!(omega.coverage(4), 0.0);
    }

    #[test]
    fn mask_and_complement_partition() {
        let omega = xi(&p(), &XiConfig::new(0.5)).unwrap();
        let mask = omega.mask(4);
        let comp = omega.complement(4);
        assert_eq!(mask.iter().filter(|&&b| b).count() + comp.len(), 4);
        assert!(comp.iter().all(|&i| !mask[i]));
    }

    #[test]
    fn single_cluster_margin_is_lambda1() {
        let q = Mat::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let omega = xi(&q, &XiConfig::new(0.5)).unwrap();
        // λ² defined as 0 when K = 1 → margin = λ¹ = 1 passes.
        assert_eq!(omega.len(), 2);
    }

    #[test]
    fn rejects_bad_thresholds() {
        assert!(xi(&p(), &XiConfig::new(1.5)).is_err());
        let mut cfg = XiConfig::new(0.5);
        cfg.alpha2 = -0.1;
        assert!(xi(&p(), &cfg).is_err());
    }

    #[test]
    fn monotone_in_alpha1() {
        // Raising α₁ can only shrink Ω.
        let mut prev = usize::MAX;
        for a in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let omega = xi(&p(), &XiConfig::new(a)).unwrap();
            assert!(omega.len() <= prev);
            prev = omega.len();
        }
    }
}

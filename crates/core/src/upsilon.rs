//! The graph-transforming operator Υ (Algorithm 2): a correction mechanism
//! against Feature Drift.
//!
//! Υ rewrites the self-supervision graph `A` into a clustering-oriented
//! graph `A^self_clus`:
//!
//! 1. for each cluster, average the embeddings of its *reliable* members
//!    (nodes in Ω whose top assignment is that cluster) and find the
//!    reliable node nearest that mean — the cluster's **centroid node**
//!    (the list Π);
//! 2. connect every node of Ω to its cluster's centroid node, provided the
//!    centroid itself agrees about its own cluster (`k₁ = k₂` in Alg. 2);
//! 3. drop every edge between two Ω nodes assigned to different clusters.
//!
//! At convergence (`Ω → 𝒱`) the result is K star-shaped sub-graphs. Applying
//! Υ with `Ω = 𝒱` in one shot is the paper's *protection* variant (Table 7).

use rgae_graph::{apply_edits, EditSet};
use rgae_linalg::{Csr, Mat};

use crate::{Error, Result};

/// Configuration of Υ. The switches implement the Table 9 ablations.
#[derive(Clone, Debug)]
pub struct UpsilonConfig {
    /// Enable the "add_edge" operation (centroid links).
    pub add_edges: bool,
    /// Enable the "drop_edge" operation (inter-cluster pruning).
    pub drop_edges: bool,
}

impl Default for UpsilonConfig {
    fn default() -> Self {
        UpsilonConfig {
            add_edges: true,
            drop_edges: true,
        }
    }
}

/// The output of Υ: the rewritten graph plus bookkeeping for Figs. 4/9.
#[derive(Clone, Debug)]
pub struct UpsilonOutcome {
    /// The clustering-oriented self-supervision graph `A^self_clus`.
    pub graph: Csr,
    /// The centroid node per cluster (Π); `None` for clusters with no
    /// reliable members.
    pub centroids: Vec<Option<usize>>,
    /// Undirected edges added (centroid links).
    pub added: Vec<(usize, usize)>,
    /// Undirected edges dropped (inter-cluster links inside Ω).
    pub dropped: Vec<(usize, usize)>,
}

/// Apply Υ.
///
/// * `a` — the original graph `A` (binary symmetric CSR);
/// * `p_soft` — row-stochastic soft assignments `P` over all nodes;
/// * `z` — embeddings (for the 1-NN centroid search);
/// * `omega` — indices of decidable nodes (ascending, in range).
pub fn upsilon(
    a: &Csr,
    p_soft: &Mat,
    z: &Mat,
    omega: &[usize],
    cfg: &UpsilonConfig,
) -> Result<UpsilonOutcome> {
    let n = a.rows();
    let k = p_soft.cols();
    if a.cols() != n || p_soft.rows() != n || z.rows() != n {
        return Err(Error::Config("upsilon: inconsistent input sizes"));
    }
    if omega.iter().any(|&i| i >= n) {
        return Err(Error::Config("upsilon: omega index out of range"));
    }
    let assign = p_soft.row_argmax();

    // --- Guideline 1: centroid nodes Π ------------------------------------
    // μ̃_j = mean embedding of reliable nodes assigned to cluster j; then
    // Π[j] = 1-NN(μ̃_j, Ω) — nearest among *all* reliable nodes, matching
    // Algorithm 2's `1-NN(μ̃_j, Ω)`.
    let d = z.cols();
    let mut sums = Mat::zeros(k, d);
    let mut counts = vec![0usize; k];
    for &i in omega {
        let c = assign[i];
        counts[c] += 1;
        for (s, &v) in sums.row_mut(c).iter_mut().zip(z.row(i)) {
            *s += v;
        }
    }
    let mut centroids: Vec<Option<usize>> = vec![None; k];
    for c in 0..k {
        if counts[c] == 0 {
            continue;
        }
        let inv = 1.0 / counts[c] as f64;
        let mean: Vec<f64> = sums.row(c).iter().map(|&s| s * inv).collect();
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for &i in omega {
            let dist = z.row_sq_dist(i, &mean);
            if dist < best_d {
                best_d = dist;
                best = Some(i);
            }
        }
        centroids[c] = best;
    }

    // --- Guideline 2: rewrite the graph ------------------------------------
    let omega_mask = {
        let mut m = vec![false; n];
        for &i in omega {
            m[i] = true;
        }
        m
    };
    let mut edits = EditSet::new();
    let mut added = Vec::new();
    let mut dropped = Vec::new();
    for &i in omega {
        let k1 = assign[i];
        if cfg.add_edges {
            if let Some(j) = centroids[k1] {
                // Alg. 2 line 9: link i to its centroid when absent and the
                // centroid's own top cluster agrees (k₁ = k₂).
                if j != i && !a.contains(i, j) && assign[j] == k1 && edits.add_edge(i, j).is_ok() {
                    added.push(if i < j { (i, j) } else { (j, i) });
                }
            }
        }
        if cfg.drop_edges {
            for (l, _) in a.row_iter(i) {
                // Count each undirected drop once.
                if l <= i {
                    continue;
                }
                if omega_mask[l] && assign[l] != k1 {
                    edits
                        .drop_edge(i, l)
                        .map_err(|_| Error::Config("upsilon: unexpected self-loop in adjacency"))?;
                    dropped.push((i, l));
                }
            }
        }
    }
    added.sort_unstable();
    added.dedup();
    let graph = apply_edits(a, &edits)?;
    Ok(UpsilonOutcome {
        graph,
        centroids,
        added,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clusters: nodes 0–2 near the origin, nodes 3–5 near (10, 0).
    /// Edges: a path inside each cluster plus one cross-link 2–3.
    fn fixture() -> (Csr, Mat, Mat) {
        let a = Csr::adjacency_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)]).unwrap();
        let z = Mat::from_rows(&[
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
            vec![9.0, 0.0],
            vec![9.5, 0.0],
            vec![10.0, 0.0],
        ])
        .unwrap();
        let p = Mat::from_rows(&[
            vec![0.95, 0.05],
            vec![0.90, 0.10],
            vec![0.85, 0.15],
            vec![0.10, 0.90],
            vec![0.05, 0.95],
            vec![0.10, 0.90],
        ])
        .unwrap();
        (a, p, z)
    }

    #[test]
    fn full_omega_builds_stars_and_prunes_cross_links() {
        let (a, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let out = upsilon(&a, &p, &z, &omega, &UpsilonConfig::default()).unwrap();
        // Centroid of cluster 0 is the node nearest (0.5, 0) → node 1;
        // cluster 1 → node 4.
        assert_eq!(out.centroids, vec![Some(1), Some(4)]);
        // The cross-link 2–3 is dropped.
        assert!(!out.graph.contains(2, 3));
        assert_eq!(out.dropped, vec![(2, 3)]);
        // Every cluster member links to its centroid.
        assert!(out.graph.contains(0, 1));
        assert!(out.graph.contains(2, 1));
        assert!(out.graph.contains(3, 4));
        assert!(out.graph.contains(5, 4));
        // Added: 2–1? 2 was not linked to 1? It was (path 1-2) — so only
        // 0–1 exists, 2–1 exists... path edges are (0,1),(1,2): both
        // centroid links pre-exist for cluster 0. Cluster 1: (3,4),(4,5)
        // pre-exist. So no additions.
        assert!(out.added.is_empty());
    }

    #[test]
    fn adds_missing_centroid_links() {
        // Star-less cluster: 0-1-2-3 path all one cluster, centroid ends up
        // mid-path; far nodes gain links.
        let a = Csr::adjacency_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let z = Mat::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let p = Mat::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let omega = vec![0, 1, 2, 3];
        let out = upsilon(&a, &p, &z, &omega, &UpsilonConfig::default()).unwrap();
        // Mean 1.5 → nearest is node 1 or 2 (tie broken by scan order → 1).
        let c = out.centroids[0].unwrap();
        assert!(c == 1 || c == 2);
        // Node 3 is not adjacent to node 1 → a link is added.
        assert!(out.graph.contains(3, c) || a.contains(3, c));
        assert!(!out.added.is_empty());
    }

    #[test]
    fn restricted_omega_leaves_outside_untouched() {
        let (a, p, z) = fixture();
        // Only cluster-0 nodes are reliable.
        let omega = vec![0, 1, 2];
        let out = upsilon(&a, &p, &z, &omega, &UpsilonConfig::default()).unwrap();
        // Cross-link 2–3 survives: node 3 is not in Ω.
        assert!(out.graph.contains(2, 3));
        // Cluster-1 structure untouched.
        assert!(out.graph.contains(3, 4));
        assert!(out.graph.contains(4, 5));
        // Cluster 1 has no reliable members → no centroid.
        assert_eq!(out.centroids[1], None);
    }

    #[test]
    fn add_edges_ablation() {
        let (a, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let cfg = UpsilonConfig {
            add_edges: false,
            drop_edges: true,
        };
        let out = upsilon(&a, &p, &z, &omega, &cfg).unwrap();
        assert!(out.added.is_empty());
        assert!(!out.graph.contains(2, 3));
    }

    #[test]
    fn drop_edges_ablation() {
        let (a, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let cfg = UpsilonConfig {
            add_edges: true,
            drop_edges: false,
        };
        let out = upsilon(&a, &p, &z, &omega, &cfg).unwrap();
        assert!(out.dropped.is_empty());
        assert!(out.graph.contains(2, 3), "cross link kept");
    }

    #[test]
    fn both_ablated_is_identity() {
        let (a, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let cfg = UpsilonConfig {
            add_edges: false,
            drop_edges: false,
        };
        let out = upsilon(&a, &p, &z, &omega, &cfg).unwrap();
        assert_eq!(out.graph, a);
    }

    #[test]
    fn empty_omega_is_identity() {
        let (a, p, z) = fixture();
        let out = upsilon(&a, &p, &z, &[], &UpsilonConfig::default()).unwrap();
        assert_eq!(out.graph, a);
        assert!(out.centroids.iter().all(Option::is_none));
    }

    #[test]
    fn output_stays_symmetric_binary_loopless() {
        let (a, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let out = upsilon(&a, &p, &z, &omega, &UpsilonConfig::default()).unwrap();
        for (i, j, v) in out.graph.iter() {
            assert_eq!(v, 1.0);
            assert_ne!(i, j);
            assert!(out.graph.contains(j, i));
        }
    }

    #[test]
    fn rejects_inconsistent_inputs() {
        let (a, p, z) = fixture();
        assert!(upsilon(&a, &p, &z, &[99], &UpsilonConfig::default()).is_err());
        let p_bad = Mat::zeros(5, 2);
        assert!(upsilon(&a, &p_bad, &z, &[0], &UpsilonConfig::default()).is_err());
    }

    #[test]
    fn converged_omega_yields_star_subgraphs() {
        // With Ω = 𝒱 and perfectly separated assignments, every node ends up
        // within one hop of its centroid and no inter-cluster edge survives.
        let (a, p, z) = fixture();
        let omega: Vec<usize> = (0..6).collect();
        let out = upsilon(&a, &p, &z, &omega, &UpsilonConfig::default()).unwrap();
        let assign = p.row_argmax();
        for (i, j, _) in out.graph.iter() {
            assert_eq!(assign[i], assign[j], "inter-cluster edge {i}-{j} survived");
        }
        for (c, ctr) in out.centroids.iter().enumerate() {
            let ctr = ctr.unwrap();
            for i in 0..6 {
                if assign[i] == c && i != ctr {
                    assert!(
                        out.graph.contains(i, ctr),
                        "node {i} not linked to centroid {ctr}"
                    );
                }
            }
        }
    }
}

//! The R-trainer: integrates Ξ and Υ into any [`GaeModel`] (the paper's
//! "R-𝒟" recipe), plus the plain trainer used for the un-modified baselines.
//!
//! Training loop (Section 5.1):
//!
//! 1. pretrain with vanilla reconstruction;
//! 2. initialise the clustering head (k-means / GMM on the embeddings);
//! 3. every `M₁` epochs recompute Ω = Ξ(P′); every `M₂` epochs rebuild the
//!    self-supervision graph `A^self_clus = Υ(A, P, Ω)`;
//! 4. optimise `L_clus(P(Ξ(Z)))` + γ·BCE(Â, A^self_clus) until the
//!    convergence criterion `|Ω| ≥ 0.9·|𝒱|`.
//!
//! The [`RConfig`] switches expose every protocol variation the paper
//! evaluates: Ξ delays (Table 6), single-step protection against FD
//! (Table 7), the α ablations (Table 8), and the add/drop ablations
//! (Table 9).
//!
//! Both trainers report into a [`Recorder`] (default: the no-op recorder):
//! phase spans (`pretrain`, `init_head`, `clustering` with nested
//! `xi`/`upsilon`/`step`/`record` scopes), one [`rgae_obs::Event::Epoch`]
//! per clustering epoch, the `omega_size` gauge, `edges_added`/
//! `edges_dropped`/`label_clamp` counters, a convergence event, and a
//! closing run summary. Wall-clock `train_seconds` comes from the
//! `clustering` span, which measures even when tracing is off.

use std::rc::Rc;

use rgae_autodiff::{arm_grad_poison, disarm_grad_poison};
use rgae_cluster::accuracy;
use rgae_graph::{AttributedGraph, GraphStats};
use rgae_guard::{
    emit_finding, FaultKind, FaultPlan, Finding, GuardConfig, HealthMonitor, RecoveryPolicy,
    RetryPlan, Severity,
};
use rgae_linalg::{Csr, Rng64};
use rgae_models::{ClusterStep, GaeModel, ModelState, StepSpec, TrainData};
use rgae_obs::{span, EpochEvent, Event, Recorder, RunSummary, NOOP};

use crate::checkpoint::{CheckpointOpts, Phase, Saver, TrainerState, VARIANT_PLAIN, VARIANT_R};
use crate::diagnostics::{lambda_fd, lambda_fr, one_hot_targets_counted, q_prime};
use crate::eval::{
    evaluate_traced, soft_assignments_or_kmeans_traced, xi_assignments_or_kmeans_traced, Metrics,
};
use crate::upsilon::{upsilon, UpsilonConfig};
use crate::xi::{xi, Omega, XiConfig};
use crate::Result;

/// How Υ counters Feature Drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdMode {
    /// The paper's proposal: gradually rewrite `A` every `M₂` epochs using
    /// the current Ω (a *correction* mechanism).
    GradualCorrection,
    /// Table 7's alternative: transform `A` once, with `Ω = 𝒱`, before the
    /// clustering phase (a *protection* mechanism).
    SingleStepProtection,
}

/// Full configuration of an R-𝒟 run.
#[derive(Clone, Debug)]
pub struct RConfig {
    /// Ξ configuration (α₁, α₂ and their ablation switches).
    pub xi: XiConfig,
    /// Υ configuration (add/drop ablation switches).
    pub upsilon: UpsilonConfig,
    /// Ω refresh period M₁ (epochs).
    pub m1: usize,
    /// A^self_clus refresh period M₂ (epochs).
    pub m2: usize,
    /// Reconstruction weight γ.
    pub gamma: f64,
    /// Pretraining epochs (vanilla reconstruction).
    pub pretrain_epochs: usize,
    /// Maximum clustering-phase epochs.
    pub max_epochs: usize,
    /// Minimum clustering-phase epochs before the convergence check.
    pub min_epochs: usize,
    /// Convergence threshold on |Ω| / N (paper: 0.9).
    pub convergence: f64,
    /// Delay (epochs) before Ξ activates; 0 is the paper's protection
    /// strategy, larger values reproduce Table 6's correction variants.
    pub delay_xi: usize,
    /// Disable Ξ entirely (Table 8 "ablation of both": Ω = 𝒱 always).
    pub use_xi: bool,
    /// Disable Υ entirely (Table 9 "ablation of both": A^self = A always).
    pub use_upsilon: bool,
    /// FD strategy (Table 7).
    pub fd_mode: FdMode,
    /// Record the Λ_FR / Λ_FD diagnostics each epoch (extra backward
    /// passes; needed for Figs. 5–6).
    pub track_diagnostics: bool,
    /// Evaluate clustering metrics every this many epochs (1 = every epoch).
    pub eval_every: usize,
    /// Clustering-phase epochs at which to snapshot the embeddings and the
    /// current self-supervision graph (Figs. 4 and 10).
    pub snapshot_epochs: Vec<usize>,
    /// Worker threads for the `rgae-par` kernels. `None` keeps the process
    /// default (the `RGAE_THREADS` env var, else available parallelism);
    /// `Some(1)` forces the exact serial path. Results are bit-identical at
    /// any setting — this knob trades wall time only.
    pub threads: Option<usize>,
    /// Row-tile height for the fused gram+BCE decoder kernel. `None` keeps
    /// the process default (the `RGAE_DECODER_TILE` env var, else
    /// [`rgae_linalg::DEFAULT_DECODER_TILE`]). Results are bit-identical at
    /// any setting — the tile bounds peak decoder memory (O(B·N)) only.
    pub decoder_tile: Option<usize>,
    /// Numerical-health monitoring + checkpoint-rollback recovery. `None`
    /// (the default) disables the guard layer entirely; with it enabled a
    /// fault-free run is still bit-identical to a guards-off run — the
    /// checks never consume the RNG stream or reorder any computation.
    pub guard: Option<GuardConfig>,
}

impl Default for RConfig {
    fn default() -> Self {
        RConfig {
            xi: XiConfig::new(0.3),
            upsilon: UpsilonConfig::default(),
            m1: 20,
            m2: 10,
            gamma: 0.001,
            pretrain_epochs: 200,
            max_epochs: 200,
            min_epochs: 30,
            convergence: 0.9,
            delay_xi: 0,
            use_xi: true,
            use_upsilon: true,
            fd_mode: FdMode::GradualCorrection,
            track_diagnostics: false,
            eval_every: 1,
            snapshot_epochs: Vec::new(),
            threads: None,
            decoder_tile: None,
            guard: None,
        }
    }
}

impl RConfig {
    /// Appendix-C hyper-parameters (the R-GMM-VGAE rows; per-model
    /// overrides are applied by the experiment harness where they differ).
    pub fn for_dataset(name: &str) -> Self {
        let mut cfg = RConfig::default();
        match name {
            "cora-like" => {
                cfg.xi = XiConfig::new(0.3);
                cfg.m1 = 20;
                cfg.m2 = 10;
            }
            "citeseer-like" => {
                cfg.xi = XiConfig::new(0.2);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            "pubmed-like" => {
                cfg.xi = XiConfig::new(0.4);
                cfg.m1 = 50;
                cfg.m2 = 5;
            }
            "usa-air-like" => {
                cfg.xi = XiConfig::new(0.3);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            "europe-air-like" => {
                cfg.xi = XiConfig::new(0.05);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            "brazil-air-like" => {
                cfg.xi = XiConfig::new(0.25);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            _ => {}
        }
        cfg
    }

    /// The full configuration as JSON, for the run manifest. Every switch
    /// the trainer consults appears here so a run log alone is enough to
    /// reproduce the protocol variant.
    pub fn to_json(&self) -> rgae_obs::Json {
        use rgae_obs::Json;
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        obj(vec![
            (
                "xi",
                obj(vec![
                    ("alpha1", Json::Num(self.xi.alpha1)),
                    ("alpha2", Json::Num(self.xi.alpha2)),
                    ("use_alpha1", Json::Bool(self.xi.use_alpha1)),
                    ("use_alpha2", Json::Bool(self.xi.use_alpha2)),
                ]),
            ),
            (
                "upsilon",
                obj(vec![
                    ("add_edges", Json::Bool(self.upsilon.add_edges)),
                    ("drop_edges", Json::Bool(self.upsilon.drop_edges)),
                ]),
            ),
            ("m1", Json::Int(self.m1 as i64)),
            ("m2", Json::Int(self.m2 as i64)),
            ("gamma", Json::Num(self.gamma)),
            ("pretrain_epochs", Json::Int(self.pretrain_epochs as i64)),
            ("max_epochs", Json::Int(self.max_epochs as i64)),
            ("min_epochs", Json::Int(self.min_epochs as i64)),
            ("convergence", Json::Num(self.convergence)),
            ("delay_xi", Json::Int(self.delay_xi as i64)),
            ("use_xi", Json::Bool(self.use_xi)),
            ("use_upsilon", Json::Bool(self.use_upsilon)),
            (
                "fd_mode",
                Json::Str(
                    match self.fd_mode {
                        FdMode::GradualCorrection => "gradual_correction",
                        FdMode::SingleStepProtection => "single_step_protection",
                    }
                    .to_owned(),
                ),
            ),
            ("track_diagnostics", Json::Bool(self.track_diagnostics)),
            ("eval_every", Json::Int(self.eval_every as i64)),
            (
                "snapshot_epochs",
                Json::Arr(
                    self.snapshot_epochs
                        .iter()
                        .map(|&e| Json::Int(e as i64))
                        .collect(),
                ),
            ),
            (
                "threads",
                self.threads.map_or(Json::Null, |t| Json::Int(t as i64)),
            ),
            (
                "decoder_tile",
                self.decoder_tile
                    .map_or(Json::Null, |t| Json::Int(t as i64)),
            ),
            (
                "guard",
                self.guard.as_ref().map_or(Json::Null, |g| {
                    obj(vec![
                        ("spike_factor", Json::Num(g.spike_factor)),
                        ("spike_window", Json::Int(g.spike_window as i64)),
                        ("spike_min_history", Json::Int(g.spike_min_history as i64)),
                        ("collapse_floor", Json::Num(g.collapse_floor)),
                        ("omega_floor", Json::Num(g.omega_floor)),
                        ("check_params", Json::Bool(g.check_params)),
                        ("snapshot_every", Json::Int(g.snapshot_every as i64)),
                        ("max_retries", Json::Int(g.max_retries as i64)),
                        ("lr_backoff", Json::Num(g.lr_backoff)),
                        (
                            "faults",
                            Json::Arr(g.faults.iter().map(|f| Json::Str(f.to_string())).collect()),
                        ),
                    ])
                }),
            ),
        ])
    }

    /// Shrink epoch counts for smoke tests and `--quick` harness runs.
    pub fn quick(mut self) -> Self {
        self.pretrain_epochs = self.pretrain_epochs.min(60);
        self.max_epochs = self.max_epochs.min(60);
        self.min_epochs = self.min_epochs.min(10);
        self.m1 = self.m1.min(10);
        self.m2 = self.m2.min(5);
        self
    }
}

/// Per-epoch trace of an R run (drives Figs. 4–6 and 9).
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Clustering-phase epoch index.
    pub epoch: usize,
    /// Training loss at this step.
    pub loss: f64,
    /// Clustering metrics over all nodes (only filled on eval epochs).
    pub metrics: Option<Metrics>,
    /// |Ω|.
    pub omega_size: usize,
    /// Accuracy restricted to Ω.
    pub omega_acc: f64,
    /// Accuracy over 𝒱 − Ω.
    pub rest_acc: f64,
    /// Statistics of the current self-supervision graph. Computed only on
    /// eval epochs (and always on the final one) — the O(|E|) scans are
    /// skipped in between.
    pub graph_stats: Option<GraphStats>,
    /// Links present in `A^self_clus` but not in `A`, split by label
    /// agreement: `(true_links, false_links)`. Eval epochs only.
    pub added_links: Option<(usize, usize)>,
    /// Links of `A` missing from `A^self_clus`, split the same way. Eval
    /// epochs only.
    pub dropped_links: Option<(usize, usize)>,
    /// Λ_FR with the Ξ restriction (the R-model's own value).
    pub lambda_fr_restricted: Option<f64>,
    /// Λ_FR without the restriction (the plain model's value at the same θ).
    pub lambda_fr_full: Option<f64>,
    /// Λ_FD of the current self-supervision graph vs Υ(A, Q′, 𝒱).
    pub lambda_fd_current: Option<f64>,
    /// Λ_FD of the vanilla graph `A` vs Υ(A, Q′, 𝒱).
    pub lambda_fd_vanilla: Option<f64>,
}

impl EpochRecord {
    /// The run-log view of this record.
    pub fn to_event(&self) -> EpochEvent {
        EpochEvent {
            epoch: self.epoch,
            loss: self.loss,
            omega_size: self.omega_size,
            omega_acc: self.omega_acc,
            rest_acc: self.rest_acc,
            added_links: self.added_links,
            dropped_links: self.dropped_links,
            acc: self.metrics.as_ref().map(|m| m.acc),
            nmi: self.metrics.as_ref().map(|m| m.nmi),
            ari: self.metrics.as_ref().map(|m| m.ari),
            lambda_fr_restricted: self.lambda_fr_restricted,
            lambda_fr_full: self.lambda_fr_full,
            lambda_fd_current: self.lambda_fd_current,
            lambda_fd_vanilla: self.lambda_fd_vanilla,
        }
    }
}

/// Outcome of an R run.
#[derive(Clone, Debug)]
pub struct RReport {
    /// Metrics after pretraining + head initialisation (the shared starting
    /// point of 𝒟 and R-𝒟).
    pub pretrain_metrics: Metrics,
    /// Final metrics.
    pub final_metrics: Metrics,
    /// Clustering-phase epoch at which |Ω| ≥ 0.9N was reached.
    pub converged_at: Option<usize>,
    /// Per-epoch trace.
    pub epochs: Vec<EpochRecord>,
    /// Wall-clock seconds for the clustering phase (excludes pretraining).
    pub train_seconds: f64,
    /// Final self-supervision graph (for Fig. 4 snapshots).
    pub final_graph: Rc<Csr>,
    /// `(epoch, Z, A^self_clus)` snapshots taken at `snapshot_epochs`.
    pub snapshots: Vec<(usize, rgae_linalg::Mat, Rc<Csr>)>,
    /// The guard layer exhausted its retries and the run finished on the
    /// last-good parameters instead of fully recovering.
    pub degraded: bool,
}

/// Outcome of a plain (un-modified 𝒟) run.
#[derive(Clone, Debug)]
pub struct PlainReport {
    /// Metrics after pretraining + head initialisation.
    pub pretrain_metrics: Metrics,
    /// Final metrics.
    pub final_metrics: Metrics,
    /// Per-epoch trace (Λ diagnostics only when requested).
    pub epochs: Vec<EpochRecord>,
    /// Wall-clock seconds for the clustering phase.
    pub train_seconds: f64,
    /// `(epoch, Z)` snapshots taken at `snapshot_epochs`.
    pub snapshots: Vec<(usize, rgae_linalg::Mat)>,
    /// The guard layer exhausted its retries and the run finished on the
    /// last-good parameters instead of fully recovering.
    pub degraded: bool,
}

/// Split links into (same-label, cross-label) counts.
fn split_links(links: &[(usize, usize)], labels: &[usize]) -> (usize, usize) {
    let mut t = 0;
    let mut f = 0;
    for &(u, v) in links {
        if labels[u] == labels[v] {
            t += 1;
        } else {
            f += 1;
        }
    }
    (t, f)
}

/// Links in `b` missing from `a` (upper triangle).
fn edge_diff(a: &Csr, b: &Csr) -> Vec<(usize, usize)> {
    b.upper_edges()
        .into_iter()
        .filter(|&(u, v)| !a.contains(u, v))
        .collect()
}

/// The supervised clustering-oriented graph `Υ(A, Q′, 𝒱)` used by Λ_FD.
fn supervised_graph(
    data: &TrainData,
    z: &rgae_linalg::Mat,
    p: &rgae_linalg::Mat,
    truth: &[usize],
    rec: &dyn Recorder,
) -> Result<Rc<Csr>> {
    let pred = p.row_argmax();
    let qp = q_prime(&pred, truth);
    let k = data
        .num_classes
        .max(qp.iter().copied().max().unwrap_or(0) + 1);
    let (one_hot, clamped) = one_hot_targets_counted(&qp, k);
    rec.count("label_clamp", clamped as u64);
    let all: Vec<usize> = (0..data.num_nodes).collect();
    let out = upsilon(
        &data.adjacency,
        &one_hot,
        z,
        &all,
        &UpsilonConfig::default(),
    )?;
    Ok(Rc::new(out.graph))
}

/// Outcome of a guard recovery decision.
enum Recovery {
    /// Roll back to this state, apply the retry plan, and re-enter the loop.
    Retry(Box<TrainerState>, RetryPlan),
    /// Retries exhausted (or nothing to restore): finish degraded, on the
    /// carried state's parameters when one is available.
    Degrade(Option<Box<TrainerState>>),
}

/// Per-phase driver for the guard layer: owns the health monitor, the
/// retry/backoff policy, the fault-injection schedule, and an in-memory
/// last-good snapshot (the rollback source when no checkpoint directory is
/// configured). Constructed only when [`RConfig::guard`] is set; no method
/// ever touches the RNG stream or reorders trainer computation, which is
/// what keeps a fault-free guarded run bit-identical to an unguarded one.
struct GuardDriver<'r> {
    cfg: GuardConfig,
    monitor: HealthMonitor,
    policy: RecoveryPolicy,
    faults: FaultPlan,
    rec: &'r dyn Recorder,
    /// `nonfinite_grad_steps` baseline; the per-epoch delta is what trips.
    grad_base: u64,
    last_good: Option<TrainerState>,
}

impl<'r> GuardDriver<'r> {
    /// `None` when the config has no guard section. Fault injection is only
    /// armed for the clustering phase (`RGAE_FAULT` epochs are clustering
    /// epochs); the pretrain driver still runs the health checks.
    fn new(
        cfg: Option<&GuardConfig>,
        rec: &'r dyn Recorder,
        model: &dyn GaeModel,
        arm_faults: bool,
    ) -> Option<Self> {
        let cfg = cfg?.clone();
        let specs = if arm_faults {
            cfg.faults.clone()
        } else {
            Vec::new()
        };
        Some(GuardDriver {
            monitor: HealthMonitor::new(cfg.clone()),
            policy: RecoveryPolicy::new(cfg.max_retries, cfg.lr_backoff),
            faults: FaultPlan::new(specs),
            rec,
            grad_base: model.nonfinite_grad_steps(),
            last_good: None,
            cfg,
        })
    }

    /// Fire the fault injections scheduled for `epoch`, logging one event
    /// per fault. Each spec fires at most once — the fired flags live in
    /// this driver, outside the retry loop, so a rollback past the fault
    /// epoch does not re-inject it.
    fn faults_due(&mut self, phase: &str, epoch: usize) -> Vec<FaultKind> {
        let due = self.faults.take_due(epoch);
        for kind in &due {
            emit_finding(
                self.rec,
                phase,
                Some(epoch),
                &Finding {
                    kind: "fault_injected",
                    severity: Severity::Info,
                    value: None,
                    threshold: None,
                    detail: format!("injecting {} at epoch {epoch}", kind.as_str()),
                },
            );
        }
        due
    }

    /// The per-epoch trip checks: loss health and the skipped-gradient
    /// delta (both O(1)), plus — on snapshot epochs (`scan`) — the O(model)
    /// parameter scan. Returns the exported parameter state when the scan
    /// ran (the caller reuses it for checkpointing) and whether any check
    /// tripped. Every state that later becomes a rollback target passes
    /// through the scan first, so a healthy snapshot is never poisoned.
    fn check_core(
        &mut self,
        phase: &str,
        epoch: usize,
        loss: f64,
        model: &dyn GaeModel,
        scan: bool,
    ) -> (Option<ModelState>, bool) {
        let mut tripped = false;
        if let Some(f) = self.monitor.observe_loss(loss) {
            tripped |= f.is_trip();
            emit_finding(self.rec, phase, Some(epoch), &f);
        }
        let now = model.nonfinite_grad_steps();
        let delta = now.saturating_sub(self.grad_base);
        self.grad_base = now;
        if let Some(f) = self.monitor.observe_grad_skips(delta) {
            tripped |= f.is_trip();
            emit_finding(self.rec, phase, Some(epoch), &f);
        }
        if !scan {
            return (None, tripped);
        }
        let exported = model.export_params();
        let all_finite = !self.cfg.check_params || exported.all_finite();
        if let Some(f) = self.monitor.observe_param_scan(all_finite) {
            tripped |= f.is_trip();
            emit_finding(self.rec, phase, Some(epoch), &f);
        }
        (Some(exported), tripped)
    }

    /// Whether this epoch does the O(model) guard work — the parameter scan
    /// and the rollback-snapshot refresh: the configured cadence, or a
    /// pending checkpoint save.
    fn snapshot_due(&self, epoch: usize, due_save: bool) -> bool {
        due_save || (epoch + 1).is_multiple_of(self.cfg.snapshot_every.max(1))
    }

    /// The advisory (warn-level) checks: soft-assignment cluster collapse
    /// and a degenerate |Ω|. Never trip — they only annotate the run log.
    fn warn_checks(
        &mut self,
        phase: &str,
        epoch: usize,
        p: Option<&rgae_linalg::Mat>,
        omega: Option<(usize, usize)>,
    ) {
        if let Some(p) = p {
            if let Some(f) = self.monitor.observe_assignments(p) {
                emit_finding(self.rec, phase, Some(epoch), &f);
            }
        }
        if let Some((len, n)) = omega {
            if let Some(f) = self.monitor.observe_omega(len, n) {
                emit_finding(self.rec, phase, Some(epoch), &f);
            }
        }
    }

    /// Remember a healthy epoch's state as the in-memory rollback fallback
    /// (used when no checkpoint store is configured, or when every on-disk
    /// generation turns out unreadable).
    fn note_healthy(&mut self, st: TrainerState) {
        self.last_good = Some(st);
    }

    fn emit_recovery(
        &self,
        action: &str,
        phase: &str,
        epoch: usize,
        attempt: usize,
        lr_scale: f64,
        detail: String,
    ) {
        if self.rec.enabled() {
            self.rec.record(&Event::Recovery {
                action: action.into(),
                phase: phase.into(),
                epoch: Some(epoch),
                attempt,
                lr_scale,
                detail,
            });
        }
    }

    /// Decide what to do about a tripped epoch: pick a rollback source (the
    /// newest readable on-disk generation of the matching phase, else the
    /// in-memory last-good), consume a retry from the policy, and log the
    /// decision. The caller restores the returned state and re-enters its
    /// loop (`Retry`) or finishes on the last-good parameters (`Degrade`).
    fn recover(
        &mut self,
        saver: Option<&Saver<'_>>,
        variant: u8,
        clustering: bool,
        phase: &str,
        epoch: usize,
    ) -> Recovery {
        let from_disk = saver
            .and_then(|s| s.load_for_rollback(variant))
            .filter(|st| matches!(st.phase, Phase::Clustering { .. }) == clustering);
        let source = if from_disk.is_some() {
            "checkpoint"
        } else {
            "memory"
        };
        let Some(state) = from_disk.or_else(|| self.last_good.clone()) else {
            self.emit_recovery(
                "degraded",
                phase,
                epoch,
                self.policy.attempts(),
                self.policy.lr_scale(),
                "no healthy state to roll back to; finishing on current parameters".to_owned(),
            );
            return Recovery::Degrade(None);
        };
        match self.policy.next_retry() {
            Some(plan) => {
                let resume_at = state.phase.next_epoch().unwrap_or(0);
                self.emit_recovery(
                    "rollback",
                    phase,
                    epoch,
                    plan.attempt,
                    self.policy.lr_scale(),
                    format!(
                        "rolled back to {source} state at {} epoch {resume_at}",
                        state.phase.name()
                    ),
                );
                self.emit_recovery(
                    "retry",
                    phase,
                    epoch,
                    plan.attempt,
                    self.policy.lr_scale(),
                    format!(
                        "retrying from epoch {resume_at}: lr scaled to {:.3e} of base, RNG reseeded",
                        self.policy.lr_scale()
                    ),
                );
                self.monitor.reset();
                Recovery::Retry(Box::new(state), plan)
            }
            None => {
                self.emit_recovery(
                    "degraded",
                    phase,
                    epoch,
                    self.policy.attempts(),
                    self.policy.lr_scale(),
                    format!("retries exhausted; finishing on last-good {source} state"),
                );
                Recovery::Degrade(Some(Box::new(state)))
            }
        }
    }
}

/// Log an Ω-degeneracy guard event. Emitted whether or not the guard layer
/// is enabled — these are structural conditions of the Ξ operator, and
/// logging them does not perturb any computation.
fn emit_omega_guard(rec: &dyn Recorder, kind: &str, epoch: usize, detail: &str) {
    if rec.enabled() {
        rec.record(&Event::Guard {
            kind: kind.to_owned(),
            severity: "warn".to_owned(),
            phase: "clustering".to_owned(),
            epoch: Some(epoch),
            value: Some(0.0),
            threshold: None,
            detail: detail.to_owned(),
        });
    }
}

/// The generic R-𝒟 trainer.
pub struct RTrainer<'a> {
    cfg: RConfig,
    rec: &'a dyn Recorder,
    ckpt: Option<CheckpointOpts>,
}

impl RTrainer<'static> {
    /// Build from a configuration, with the no-op recorder.
    pub fn new(cfg: RConfig) -> Self {
        RTrainer {
            cfg,
            rec: &NOOP,
            ckpt: None,
        }
    }
}

impl<'a> RTrainer<'a> {
    /// Build from a configuration and a run-log recorder.
    pub fn with_recorder(cfg: RConfig, rec: &'a dyn Recorder) -> Self {
        RTrainer {
            cfg,
            rec,
            ckpt: None,
        }
    }

    /// Enable crash-safe checkpointing. Saves land in `opts.dir` every
    /// `opts.every` epochs (plus at phase boundaries and at the end); with
    /// `opts.resume` the trainer re-enters mid-phase from the newest
    /// readable checkpoint and finishes bit-identically to an uninterrupted
    /// run.
    pub fn with_checkpoints(mut self, opts: CheckpointOpts) -> Self {
        self.ckpt = Some(opts);
        self
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &RConfig {
        &self.cfg
    }

    /// The recorder this trainer reports into.
    pub fn recorder(&self) -> &'a dyn Recorder {
        self.rec
    }

    /// Pretrain only (vanilla reconstruction + head initialisation). Useful
    /// when several variants must share the same pretrained weights.
    // `mut_range_bound`: the guard rollback updates the loop's start epoch
    // and re-enters it via `continue 'attempts`, where the bound IS re-read.
    #[allow(clippy::mut_range_bound)]
    pub fn pretrain(
        &self,
        model: &mut dyn GaeModel,
        data: &TrainData,
        rng: &mut Rng64,
    ) -> Result<()> {
        apply_thread_config(&self.cfg);
        let mut saver = Saver::open(self.ckpt.as_ref(), self.rec)?;
        let mut start = 0usize;
        if let Some(s) = saver.as_ref() {
            if let Some(st) = s.load_for_resume(VARIANT_R) {
                match st.phase {
                    Phase::Pretrain { next_epoch } => {
                        model.import_params(&st.model)?;
                        *rng = st.rng();
                        start = next_epoch;
                    }
                    // Pretraining (and head init) already finished; the
                    // clustering phase restores itself from the same store.
                    Phase::Clustering { .. } | Phase::Done => return Ok(()),
                }
            }
        }
        let spec = StepSpec::pretrain(Rc::clone(&data.adjacency));
        let mut guard = GuardDriver::new(self.cfg.guard.as_ref(), self.rec, model, false);
        // Phase-entry seed: a trip before the first snapshot-cadence epoch
        // rolls back to the initial weights instead of degrading.
        if let Some(g) = guard.as_mut() {
            g.note_healthy(TrainerState::new(
                VARIANT_R,
                Phase::Pretrain { next_epoch: start },
                model.export_params(),
                rng,
            ));
        }
        {
            let _pretrain = span(self.rec, "pretrain");
            'attempts: loop {
                for epoch in start..self.cfg.pretrain_epochs {
                    let loss = model.train_step(data, &spec, rng)?;
                    let mut exported: Option<ModelState> = None;
                    let mut snap = false;
                    if let Some(g) = guard.as_mut() {
                        let next = epoch + 1;
                        snap = g.snapshot_due(
                            epoch,
                            saver
                                .as_ref()
                                .is_some_and(|s| s.due(next) && next < self.cfg.pretrain_epochs),
                        );
                        let (state, tripped) = g.check_core("pretrain", epoch, loss, model, snap);
                        exported = state;
                        if tripped {
                            match g.recover(saver.as_ref(), VARIANT_R, false, "pretrain", epoch) {
                                Recovery::Retry(st, plan) => {
                                    model.import_params(&st.model)?;
                                    model.scale_lr(plan.lr_scale);
                                    *rng = st.rng();
                                    rng.reseed_with(plan.reseed_salt);
                                    start = st.phase.next_epoch().unwrap_or(0);
                                    continue 'attempts;
                                }
                                Recovery::Degrade(st) => {
                                    // Pretrain degradation is not terminal for
                                    // the run: restore the last-good weights
                                    // (when any) and proceed to head init —
                                    // the clustering phase may still recover.
                                    if let Some(st) = st {
                                        model.import_params(&st.model)?;
                                        *rng = st.rng();
                                    }
                                    break 'attempts;
                                }
                            }
                        }
                    }
                    let next = epoch + 1;
                    let due_save = saver
                        .as_ref()
                        .is_some_and(|s| s.due(next) && next < self.cfg.pretrain_epochs);
                    if snap || due_save {
                        let st = TrainerState::new(
                            VARIANT_R,
                            Phase::Pretrain { next_epoch: next },
                            exported.take().unwrap_or_else(|| model.export_params()),
                            rng,
                        );
                        if due_save {
                            if let Some(s) = saver.as_mut() {
                                s.save(&st)?;
                                if guard.is_some() {
                                    s.mark_healthy(&st)?;
                                }
                            }
                        }
                        if let Some(g) = guard.as_mut() {
                            g.note_healthy(st);
                        }
                    }
                }
                break 'attempts;
            }
        }
        {
            let _init = span(self.rec, "init_head");
            model.init_clustering(data, rng)?;
        }
        // Phase-boundary save: pretraining + head init are the expensive
        // prefix shared by every resume, so always persist them.
        if let Some(s) = saver.as_mut() {
            let st = TrainerState::new(
                VARIANT_R,
                Phase::Clustering { next_epoch: 0 },
                model.export_params(),
                rng,
            );
            s.save(&st)?;
        }
        Ok(())
    }

    /// Full R run: pretraining, then the Ξ/Υ clustering phase.
    pub fn train(
        &self,
        model: &mut dyn GaeModel,
        graph: &AttributedGraph,
        rng: &mut Rng64,
    ) -> Result<RReport> {
        let data = TrainData::from_graph(graph);
        self.pretrain(model, &data, rng)?;
        self.train_clustering_phase(model, graph, &data, rng)
    }

    /// The clustering phase alone (assumes pretraining already ran).
    // `mut_range_bound`: the guard rollback updates the loop's start epoch
    // and re-enters it via `continue 'attempts`, where the bound IS re-read.
    #[allow(clippy::too_many_lines, clippy::mut_range_bound)]
    pub fn train_clustering_phase(
        &self,
        model: &mut dyn GaeModel,
        graph: &AttributedGraph,
        data: &TrainData,
        rng: &mut Rng64,
    ) -> Result<RReport> {
        let cfg = &self.cfg;
        let rec = self.rec;
        apply_thread_config(cfg);
        if rec.enabled() {
            // Scope the kernel timing table to this run.
            let _ = rgae_par::take_kernel_stats();
        }
        let truth = graph.labels();
        let n = data.num_nodes;
        let all_nodes: Vec<usize> = (0..n).collect();

        let mut saver = Saver::open(self.ckpt.as_ref(), rec)?;
        let mut resumed = saver.as_ref().and_then(|s| s.load_for_resume(VARIANT_R));
        if resumed
            .as_ref()
            .is_some_and(|st| matches!(st.phase, Phase::Pretrain { .. }))
        {
            // Mid-pretraining state belongs to `pretrain`; reaching here
            // without it means the caller chose to skip resuming that phase,
            // so the clustering phase starts fresh.
            resumed = None;
        }

        // Fast-forward: the stored run already finished. Rebuild its report
        // and replay its events so a resumed log is still complete.
        if resumed.as_ref().is_some_and(|st| st.phase == Phase::Done) {
            let st = resumed.take().unwrap();
            if let (Some(pm), Some(fm)) = (st.pretrain_metrics, st.final_metrics) {
                model.import_params(&st.model)?;
                *rng = st.rng();
                let final_graph = st
                    .a_self
                    .as_ref()
                    .map_or_else(|| Rc::clone(&data.adjacency), |a| Rc::new(a.clone()));
                let snapshots = st.r_snapshots(&final_graph);
                if rec.enabled() {
                    for e in &st.epochs {
                        rec.record(&Event::Epoch(e.to_event()));
                        rec.gauge("omega_size", Some(e.epoch), e.omega_size as f64);
                    }
                    if let Some(epoch) = st.converged_at {
                        rec.record(&Event::Convergence { epoch });
                    }
                    rec.record(&Event::RunEnd(RunSummary {
                        train_seconds: st.elapsed_seconds,
                        converged_at: st.converged_at,
                        epochs_run: st.epochs.len(),
                        final_acc: fm.acc,
                        final_nmi: fm.nmi,
                        final_ari: fm.ari,
                        degraded: st.degraded,
                    }));
                }
                return Ok(RReport {
                    pretrain_metrics: pm,
                    final_metrics: fm,
                    converged_at: st.converged_at,
                    epochs: st.epochs,
                    train_seconds: st.elapsed_seconds,
                    final_graph,
                    snapshots,
                    degraded: st.degraded,
                });
            }
            // A finished state missing its metrics is unusable: run fresh.
        }

        let mut a_self: Rc<Csr> = Rc::clone(&data.adjacency);
        let mut omega = Omega {
            indices: all_nodes.clone(),
            lambda1: vec![1.0; n],
            lambda2: vec![0.0; n],
        };
        let mut epochs: Vec<EpochRecord> = Vec::new();
        let mut snapshots: Vec<(usize, rgae_linalg::Mat, Rc<Csr>)> = Vec::new();
        let mut converged_at = None;
        let mut start_epoch = 0usize;
        let mut elapsed_base = 0.0;
        let mut restored_pretrain_metrics: Option<Metrics> = None;

        if let Some(st) = resumed {
            // Mid-clustering resume: restore every mutable input of the loop
            // at the saved epoch boundary, then replay the stored epoch
            // events (a fresh run log starts empty).
            model.import_params(&st.model)?;
            *rng = st.rng();
            if let Some(a) = st.a_self.clone() {
                a_self = Rc::new(a);
            }
            snapshots = st.r_snapshots(&a_self);
            if let Some(o) = st.omega {
                omega = o;
            }
            converged_at = st.converged_at;
            restored_pretrain_metrics = st.pretrain_metrics;
            elapsed_base = st.elapsed_seconds;
            if rec.enabled() {
                for e in &st.epochs {
                    rec.record(&Event::Epoch(e.to_event()));
                    rec.gauge("omega_size", Some(e.epoch), e.omega_size as f64);
                }
            }
            epochs = st.epochs;
            start_epoch = st.phase.next_epoch().unwrap_or(0);
        }

        // The phase-boundary checkpoint precedes this evaluation, so a
        // resume from it re-consumes the RNG stream exactly like a fresh
        // run; mid-clustering checkpoints carry the metrics instead.
        let pretrain_metrics = match restored_pretrain_metrics {
            Some(m) => m,
            None => {
                let _eval = span(rec, "eval");
                evaluate_traced(model, data, truth, rng, rec)?
            }
        };

        let clustering = span(rec, "clustering");
        let phase_start = std::time::Instant::now();
        let mut guard = GuardDriver::new(cfg.guard.as_ref(), rec, model, true);
        let mut degraded = false;

        // Table 7 protection variant: one-shot Υ(A, P, 𝒱) before training.
        // Mid-clustering resumes restore the transformed graph instead.
        if start_epoch == 0 && cfg.use_upsilon && cfg.fd_mode == FdMode::SingleStepProtection {
            let _upsilon = span(rec, "upsilon");
            let p = soft_assignments_or_kmeans_traced(model, data, rng, rec)?;
            let z = model.embed(data);
            let out = upsilon(&data.adjacency, &p, &z, &all_nodes, &cfg.upsilon)?;
            rec.count("edges_added", out.added.len() as u64);
            rec.count("edges_dropped", out.dropped.len() as u64);
            a_self = Rc::new(out.graph);
        }

        // Seed the in-memory rollback target with the phase-entry state so
        // a guard tripped before the first snapshot-cadence epoch still has
        // somewhere safe to land. (Placed after the one-shot Υ above: that
        // transform runs once per run, so a rollback must not precede it.)
        if let Some(g) = guard.as_mut() {
            let mut st = TrainerState::new(
                VARIANT_R,
                Phase::Clustering {
                    next_epoch: start_epoch,
                },
                model.export_params(),
                rng,
            );
            st.omega = Some(omega.clone());
            st.a_self = Some((*a_self).clone());
            st.converged_at = converged_at;
            st.pretrain_metrics = Some(pretrain_metrics);
            st.epochs = epochs.clone();
            st.snapshots = snapshots
                .iter()
                .map(|(e, z, a)| (*e, z.clone(), Some((**a).clone())))
                .collect();
            st.elapsed_seconds = elapsed_base;
            g.note_healthy(st);
        }

        'attempts: loop {
            for epoch in start_epoch..cfg.max_epochs {
                if cfg.snapshot_epochs.contains(&epoch) {
                    snapshots.push((epoch, model.embed(data), Rc::clone(&a_self)));
                }
                let xi_active = cfg.use_xi && epoch >= cfg.delay_xi;

                // Refresh Ω every M₁ epochs (Ω = 𝒱 while Ξ is inactive).
                if epoch % cfg.m1 == 0 {
                    if xi_active {
                        let _xi = span(rec, "xi");
                        let p = xi_assignments_or_kmeans_traced(model, data, rng, rec)?;
                        let candidate = xi(&p, &cfg.xi)?;
                        if candidate.is_empty() {
                            emit_omega_guard(
                                rec,
                                "degenerate_omega",
                                epoch,
                                "Xi returned an empty Omega; keeping the previous one",
                            );
                        } else {
                            omega = candidate;
                        }
                    } else {
                        omega = Omega {
                            indices: all_nodes.clone(),
                            lambda1: vec![1.0; n],
                            lambda2: vec![0.0; n],
                        };
                    }
                }

                // Refresh A^self_clus every M₂ epochs (gradual correction).
                if cfg.use_upsilon
                    && cfg.fd_mode == FdMode::GradualCorrection
                    && epoch % cfg.m2 == 0
                {
                    let _upsilon = span(rec, "upsilon");
                    let p = soft_assignments_or_kmeans_traced(model, data, rng, rec)?;
                    let z = model.embed(data);
                    let out = upsilon(&data.adjacency, &p, &z, &omega.indices, &cfg.upsilon)?;
                    rec.count("edges_added", out.added.len() as u64);
                    rec.count("edges_dropped", out.dropped.len() as u64);
                    a_self = Rc::new(out.graph);
                }

                // One optimisation step, with any scheduled fault injections.
                let due_faults = guard
                    .as_mut()
                    .map_or_else(Vec::new, |g| g.faults_due("clustering", epoch));
                let step_t = span(rec, "step");
                let cluster = match model.cluster_target(data)? {
                    // |Ω| = 0 would make the clustering loss an empty-set
                    // reduction; skip the term this epoch instead.
                    Some(_) if omega.is_empty() => {
                        emit_omega_guard(
                            rec,
                            "empty_omega",
                            epoch,
                            "|Omega| = 0: skipping the clustering-loss term this epoch",
                        );
                        None
                    }
                    Some(target) => Some(ClusterStep {
                        target,
                        omega: if omega.len() < n {
                            Some(omega.indices.clone())
                        } else {
                            None
                        },
                    }),
                    None => None,
                };
                let spec = StepSpec {
                    recon_target: Some(Rc::clone(&a_self)),
                    gamma: cfg.gamma,
                    cluster,
                };
                let poison = due_faults.contains(&FaultKind::NanGrad);
                if poison {
                    arm_grad_poison();
                }
                let step_result = model.train_step(data, &spec, rng);
                if poison {
                    disarm_grad_poison();
                }
                let mut loss = step_result?;
                step_t.stop();
                for kind in &due_faults {
                    match kind {
                        FaultKind::InfLoss => loss = f64::INFINITY,
                        FaultKind::NanLoss => loss = f64::NAN,
                        FaultKind::CorruptCkpt => {
                            if let Some(s) = saver.as_ref() {
                                s.corrupt_latest(epoch as u64)?;
                            }
                        }
                        FaultKind::NanGrad => {}
                    }
                }

                // Trip checks run before any bookkeeping: a tripped epoch
                // contributes no record, no convergence, and no save.
                let mut exported: Option<ModelState> = None;
                let mut snap = false;
                if let Some(g) = guard.as_mut() {
                    snap = g.snapshot_due(epoch, saver.as_ref().is_some_and(|s| s.due(epoch + 1)));
                    let (state, tripped) = g.check_core("clustering", epoch, loss, model, snap);
                    exported = state;
                    if tripped {
                        match g.recover(saver.as_ref(), VARIANT_R, true, "clustering", epoch) {
                            Recovery::Retry(st, plan) => {
                                model.import_params(&st.model)?;
                                model.scale_lr(plan.lr_scale);
                                *rng = st.rng();
                                rng.reseed_with(plan.reseed_salt);
                                a_self = st.a_self.as_ref().map_or_else(
                                    || Rc::clone(&data.adjacency),
                                    |a| Rc::new(a.clone()),
                                );
                                snapshots = st.r_snapshots(&a_self);
                                omega = st.omega.clone().unwrap_or_else(|| Omega {
                                    indices: all_nodes.clone(),
                                    lambda1: vec![1.0; n],
                                    lambda2: vec![0.0; n],
                                });
                                converged_at = st.converged_at;
                                epochs = st.epochs.clone();
                                start_epoch = st.phase.next_epoch().unwrap_or(0);
                                continue 'attempts;
                            }
                            Recovery::Degrade(st) => {
                                if let Some(st) = st {
                                    model.import_params(&st.model)?;
                                    *rng = st.rng();
                                    a_self = st.a_self.as_ref().map_or_else(
                                        || Rc::clone(&data.adjacency),
                                        |a| Rc::new(a.clone()),
                                    );
                                    snapshots = st.r_snapshots(&a_self);
                                    converged_at = st.converged_at;
                                    epochs = st.epochs.clone();
                                }
                                degraded = true;
                                break 'attempts;
                            }
                        }
                    }
                }

                // This epoch ends the run either by convergence (|Ω| ≥ 0.9N,
                // checked on the Ω that drove the step) or by exhausting the
                // budget; both force a full evaluation so the last record
                // always carries metrics regardless of `eval_every`.
                let converging = converged_at.is_none()
                    && epoch >= cfg.min_epochs
                    && omega.coverage(n) >= cfg.convergence;
                let last_epoch = converging || epoch + 1 == cfg.max_epochs;

                // Bookkeeping.
                let (record, p) = {
                    let _record = span(rec, "record");
                    self.record_epoch(
                        model, data, graph, epoch, loss, &omega, &a_self, rng, last_epoch,
                    )?
                };
                if rec.enabled() {
                    rec.record(&Event::Epoch(record.to_event()));
                    rec.gauge("omega_size", Some(epoch), omega.len() as f64);
                }
                epochs.push(record);
                if let Some(g) = guard.as_mut() {
                    g.warn_checks("clustering", epoch, Some(&p), Some((omega.len(), n)));
                }

                if converging {
                    converged_at = Some(epoch);
                    if rec.enabled() {
                        rec.record(&Event::Convergence { epoch });
                    }
                }

                let due_save = saver
                    .as_ref()
                    .is_some_and(|s| !last_epoch && s.due(epoch + 1));
                if snap || due_save {
                    let mut st = TrainerState::new(
                        VARIANT_R,
                        Phase::Clustering {
                            next_epoch: epoch + 1,
                        },
                        exported.take().unwrap_or_else(|| model.export_params()),
                        rng,
                    );
                    st.omega = Some(omega.clone());
                    st.a_self = Some((*a_self).clone());
                    st.converged_at = converged_at;
                    st.pretrain_metrics = Some(pretrain_metrics);
                    st.epochs = epochs.clone();
                    st.snapshots = snapshots
                        .iter()
                        .map(|(e, z, a)| (*e, z.clone(), Some((**a).clone())))
                        .collect();
                    st.elapsed_seconds = elapsed_base + phase_start.elapsed().as_secs_f64();
                    if due_save {
                        if let Some(s) = saver.as_mut() {
                            s.save(&st)?;
                            if guard.is_some() {
                                s.mark_healthy(&st)?;
                            }
                        }
                    }
                    if let Some(g) = guard.as_mut() {
                        g.note_healthy(st);
                    }
                }

                if converging {
                    break;
                }
            }
            break 'attempts;
        }
        let train_seconds = elapsed_base + clustering.stop();
        // Requested snapshots at or past the end of the run collapse into
        // one final snapshot labelled with the actual epoch count — on early
        // convergence that is the convergence epoch + 1, not `max_epochs`.
        let end_epoch = epochs.last().map_or(0, |e| e.epoch + 1);
        if cfg.snapshot_epochs.iter().any(|&e| e >= end_epoch)
            && !snapshots.iter().any(|s| s.0 == end_epoch)
        {
            snapshots.push((end_epoch, model.embed(data), Rc::clone(&a_self)));
        }
        let final_metrics = {
            let _eval = span(rec, "eval");
            evaluate_traced(model, data, truth, rng, rec)?
        };
        if rec.enabled() {
            rec.record(&Event::RunEnd(RunSummary {
                train_seconds,
                converged_at,
                epochs_run: epochs.len(),
                final_acc: final_metrics.acc,
                final_nmi: final_metrics.nmi,
                final_ari: final_metrics.ari,
                degraded,
            }));
            flush_kernel_stats(rec);
        }
        if let Some(s) = saver.as_mut() {
            let mut st = TrainerState::new(VARIANT_R, Phase::Done, model.export_params(), rng);
            st.a_self = Some((*a_self).clone());
            st.converged_at = converged_at;
            st.pretrain_metrics = Some(pretrain_metrics);
            st.final_metrics = Some(final_metrics);
            st.epochs = epochs.clone();
            st.snapshots = snapshots
                .iter()
                .map(|(e, z, a)| (*e, z.clone(), Some((**a).clone())))
                .collect();
            st.elapsed_seconds = train_seconds;
            st.degraded = degraded;
            s.save(&st)?;
        }
        Ok(RReport {
            pretrain_metrics,
            final_metrics,
            converged_at,
            epochs,
            train_seconds,
            final_graph: a_self,
            snapshots,
            degraded,
        })
    }

    /// Per-epoch bookkeeping. Also returns the soft assignments `P` it
    /// computed (the epoch's only RNG consumer), so the guard layer can run
    /// its cluster-collapse check without consuming the stream again.
    #[allow(clippy::too_many_arguments)]
    fn record_epoch(
        &self,
        model: &dyn GaeModel,
        data: &TrainData,
        graph: &AttributedGraph,
        epoch: usize,
        loss: f64,
        omega: &Omega,
        a_self: &Rc<Csr>,
        rng: &mut Rng64,
        force_eval: bool,
    ) -> Result<(EpochRecord, rgae_linalg::Mat)> {
        let cfg = &self.cfg;
        let truth = graph.labels();
        let n = data.num_nodes;

        let eval_t = span(self.rec, "eval");
        let p = soft_assignments_or_kmeans_traced(model, data, rng, self.rec)?;
        let pred = p.row_argmax();

        let eval_now = force_eval || epoch.is_multiple_of(cfg.eval_every);
        let metrics = eval_now.then(|| Metrics::from_predictions(&pred, truth));

        let omega_pred: Vec<usize> = omega.indices.iter().map(|&i| pred[i]).collect();
        let omega_truth: Vec<usize> = omega.indices.iter().map(|&i| truth[i]).collect();
        let omega_acc = if omega.is_empty() {
            0.0
        } else {
            accuracy(&omega_pred, &omega_truth)
        };
        let rest: Vec<usize> = omega.complement(n);
        let rest_pred: Vec<usize> = rest.iter().map(|&i| pred[i]).collect();
        let rest_truth: Vec<usize> = rest.iter().map(|&i| truth[i]).collect();
        let rest_acc = if rest.is_empty() {
            1.0
        } else {
            accuracy(&rest_pred, &rest_truth)
        };

        // The graph scans are O(|E|) and purely diagnostic; skip them on
        // non-eval epochs (none of this consumes the RNG stream).
        let (graph_stats, added_links, dropped_links) = if eval_now {
            let added = edge_diff(&data.adjacency, a_self);
            let dropped = edge_diff(a_self, &data.adjacency);
            (
                Some(GraphStats::compute(a_self, truth)),
                Some(split_links(&added, truth)),
                Some(split_links(&dropped, truth)),
            )
        } else {
            (None, None, None)
        };
        eval_t.stop();

        let (mut fr_r, mut fr_full, mut fd_cur, mut fd_van) = (None, None, None, None);
        if cfg.track_diagnostics {
            let _diag = span(self.rec, "diagnostics");
            let z = model.embed(data);
            if let Some(target) = model.cluster_target(data)? {
                fr_r = lambda_fr(model, data, &target, Some(&omega.indices), truth, self.rec)?;
                fr_full = lambda_fr(model, data, &target, None, truth, self.rec)?;
            }
            let sup = supervised_graph(data, &z, &p, truth, self.rec)?;
            fd_cur = Some(lambda_fd(model, data, a_self, &sup)?);
            fd_van = Some(lambda_fd(model, data, &data.adjacency, &sup)?);
        }

        Ok((
            EpochRecord {
                epoch,
                loss,
                metrics,
                omega_size: omega.len(),
                omega_acc,
                rest_acc,
                graph_stats,
                added_links,
                dropped_links,
                lambda_fr_restricted: fr_r,
                lambda_fr_full: fr_full,
                lambda_fd_current: fd_cur,
                lambda_fd_vanilla: fd_van,
            },
            p,
        ))
    }
}

/// Apply the run's thread override to the `rgae-par` pool and its decoder
/// tile override to the fused gram+BCE kernel (no-op when the config leaves
/// the process defaults in place).
fn apply_thread_config(cfg: &RConfig) {
    if let Some(t) = cfg.threads {
        rgae_par::set_threads(Some(t));
    }
    if cfg.decoder_tile.is_some() {
        rgae_linalg::set_decoder_tile(cfg.decoder_tile);
    }
}

/// Drain the `rgae-par` per-kernel timing registry into the recorder:
/// `par_<kernel>_calls` counters and `par_<kernel>_seconds` gauges, plus the
/// effective `par_threads` count. Timings are inclusive — a kernel invoked
/// from inside another timed kernel is charged to both.
fn flush_kernel_stats(rec: &dyn Recorder) {
    for (name, stat) in rgae_par::take_kernel_stats() {
        rec.count(&format!("par_{name}_calls"), stat.calls);
        rec.gauge(&format!("par_{name}_seconds"), None, stat.seconds);
    }
    rec.gauge("par_threads", None, rgae_par::threads() as f64);
    let reuses = rgae_autodiff::take_constant_reuse_count();
    if reuses > 0 {
        rec.count("constant_shared_reuses", reuses);
    }
}

/// Train the un-modified model 𝒟: pretraining, head initialisation, then
/// `train_epochs` of its own joint loss against the static graph `A` (or
/// pure reconstruction for first-group models). Diagnostics are recorded
/// when `track_diagnostics` is set (using `xi_cfg` only to compute the
/// hypothetical Ω for the Λ comparisons).
pub fn train_plain(
    model: &mut dyn GaeModel,
    graph: &AttributedGraph,
    cfg: &RConfig,
    rng: &mut Rng64,
) -> Result<PlainReport> {
    train_plain_traced(model, graph, cfg, rng, &NOOP)
}

/// [`train_plain`] with a run-log recorder (spans, epoch events, and the
/// closing run summary, mirroring the R trainer's trace).
pub fn train_plain_traced(
    model: &mut dyn GaeModel,
    graph: &AttributedGraph,
    cfg: &RConfig,
    rng: &mut Rng64,
    rec: &dyn Recorder,
) -> Result<PlainReport> {
    train_plain_ckpt(model, graph, cfg, rng, rec, None)
}

/// [`train_plain_traced`] with crash-safe checkpointing: periodic saves in
/// both phases plus phase-boundary and end-of-run saves, and (with
/// `opts.resume`) bit-identical mid-phase re-entry — the plain counterpart
/// of [`RTrainer::with_checkpoints`].
// `mut_range_bound`: the guard rollback updates a loop's start epoch and
// re-enters it via `continue 'attempts`, where the bound IS re-read.
#[allow(clippy::too_many_lines, clippy::mut_range_bound)]
pub fn train_plain_ckpt(
    model: &mut dyn GaeModel,
    graph: &AttributedGraph,
    cfg: &RConfig,
    rng: &mut Rng64,
    rec: &dyn Recorder,
    ckpt: Option<&CheckpointOpts>,
) -> Result<PlainReport> {
    apply_thread_config(cfg);
    if rec.enabled() {
        // Scope the kernel timing table to this run.
        let _ = rgae_par::take_kernel_stats();
    }
    let data = TrainData::from_graph(graph);
    let truth = graph.labels();

    let mut saver = Saver::open(ckpt, rec)?;
    let mut resumed = saver
        .as_ref()
        .and_then(|s| s.load_for_resume(VARIANT_PLAIN));

    // Fast-forward: the stored run already finished. Rebuild its report and
    // replay its events so a resumed log is still complete.
    if resumed.as_ref().is_some_and(|st| st.phase == Phase::Done) {
        let st = resumed.take().unwrap();
        if let (Some(pm), Some(fm)) = (st.pretrain_metrics, st.final_metrics) {
            model.import_params(&st.model)?;
            *rng = st.rng();
            let snapshots = st.plain_snapshots();
            if rec.enabled() {
                for e in &st.epochs {
                    rec.record(&Event::Epoch(e.to_event()));
                    rec.gauge("omega_size", Some(e.epoch), e.omega_size as f64);
                }
                rec.record(&Event::RunEnd(RunSummary {
                    train_seconds: st.elapsed_seconds,
                    converged_at: None,
                    epochs_run: st.epochs.len(),
                    final_acc: fm.acc,
                    final_nmi: fm.nmi,
                    final_ari: fm.ari,
                    degraded: st.degraded,
                }));
            }
            return Ok(PlainReport {
                pretrain_metrics: pm,
                final_metrics: fm,
                epochs: st.epochs,
                train_seconds: st.elapsed_seconds,
                snapshots,
                degraded: st.degraded,
            });
        }
        // A finished state missing its metrics is unusable: run fresh.
    }

    let mut clustering_resume: Option<TrainerState> = None;
    let mut pretrain_start = 0usize;
    if let Some(st) = resumed {
        match st.phase {
            Phase::Pretrain { next_epoch } => {
                model.import_params(&st.model)?;
                *rng = st.rng();
                pretrain_start = next_epoch;
            }
            Phase::Clustering { .. } => clustering_resume = Some(st),
            // Handled (or discarded) above.
            Phase::Done => {}
        }
    }

    if clustering_resume.is_none() {
        let spec_pre = StepSpec::pretrain(Rc::clone(&data.adjacency));
        let mut guard = GuardDriver::new(cfg.guard.as_ref(), rec, model, false);
        // Phase-entry seed: a trip before the first snapshot-cadence epoch
        // rolls back to the initial weights instead of degrading.
        if let Some(g) = guard.as_mut() {
            g.note_healthy(TrainerState::new(
                VARIANT_PLAIN,
                Phase::Pretrain {
                    next_epoch: pretrain_start,
                },
                model.export_params(),
                rng,
            ));
        }
        {
            let _pretrain = span(rec, "pretrain");
            'attempts: loop {
                for epoch in pretrain_start..cfg.pretrain_epochs {
                    let loss = model.train_step(&data, &spec_pre, rng)?;
                    let mut exported: Option<ModelState> = None;
                    let mut snap = false;
                    if let Some(g) = guard.as_mut() {
                        let next = epoch + 1;
                        snap = g.snapshot_due(
                            epoch,
                            saver
                                .as_ref()
                                .is_some_and(|s| s.due(next) && next < cfg.pretrain_epochs),
                        );
                        let (state, tripped) = g.check_core("pretrain", epoch, loss, model, snap);
                        exported = state;
                        if tripped {
                            match g.recover(saver.as_ref(), VARIANT_PLAIN, false, "pretrain", epoch)
                            {
                                Recovery::Retry(st, plan) => {
                                    model.import_params(&st.model)?;
                                    model.scale_lr(plan.lr_scale);
                                    *rng = st.rng();
                                    rng.reseed_with(plan.reseed_salt);
                                    pretrain_start = st.phase.next_epoch().unwrap_or(0);
                                    continue 'attempts;
                                }
                                Recovery::Degrade(st) => {
                                    // Not terminal for the run: restore the
                                    // last-good weights (when any) and move
                                    // on to head init — the clustering phase
                                    // may still recover.
                                    if let Some(st) = st {
                                        model.import_params(&st.model)?;
                                        *rng = st.rng();
                                    }
                                    break 'attempts;
                                }
                            }
                        }
                    }
                    let next = epoch + 1;
                    let due_save = saver
                        .as_ref()
                        .is_some_and(|s| s.due(next) && next < cfg.pretrain_epochs);
                    if snap || due_save {
                        let st = TrainerState::new(
                            VARIANT_PLAIN,
                            Phase::Pretrain { next_epoch: next },
                            exported.take().unwrap_or_else(|| model.export_params()),
                            rng,
                        );
                        if due_save {
                            if let Some(s) = saver.as_mut() {
                                s.save(&st)?;
                                if guard.is_some() {
                                    s.mark_healthy(&st)?;
                                }
                            }
                        }
                        if let Some(g) = guard.as_mut() {
                            g.note_healthy(st);
                        }
                    }
                }
                break 'attempts;
            }
        }
        {
            let _init = span(rec, "init_head");
            model.init_clustering(&data, rng)?;
        }
        // Phase-boundary save: pretraining + head init are the expensive
        // prefix shared by every resume, so always persist them.
        if let Some(s) = saver.as_mut() {
            let st = TrainerState::new(
                VARIANT_PLAIN,
                Phase::Clustering { next_epoch: 0 },
                model.export_params(),
                rng,
            );
            s.save(&st)?;
        }
    }

    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut snapshots: Vec<(usize, rgae_linalg::Mat)> = Vec::new();
    let mut start_epoch = 0usize;
    let mut elapsed_base = 0.0;
    let mut restored_pretrain_metrics: Option<Metrics> = None;
    if let Some(st) = clustering_resume {
        model.import_params(&st.model)?;
        *rng = st.rng();
        snapshots = st.plain_snapshots();
        restored_pretrain_metrics = st.pretrain_metrics;
        elapsed_base = st.elapsed_seconds;
        if rec.enabled() {
            for e in &st.epochs {
                rec.record(&Event::Epoch(e.to_event()));
                rec.gauge("omega_size", Some(e.epoch), e.omega_size as f64);
            }
        }
        epochs = st.epochs;
        start_epoch = st.phase.next_epoch().unwrap_or(0);
    }

    // The phase-boundary checkpoint precedes this evaluation, so a resume
    // from it re-consumes the RNG stream exactly like a fresh run;
    // mid-clustering checkpoints carry the metrics instead.
    let pretrain_metrics = match restored_pretrain_metrics {
        Some(m) => m,
        None => {
            let _eval = span(rec, "eval");
            evaluate_traced(model, &data, truth, rng, rec)?
        }
    };

    let clustering = span(rec, "clustering");
    let phase_start = std::time::Instant::now();
    let mut guard = GuardDriver::new(cfg.guard.as_ref(), rec, model, true);
    let mut degraded = false;
    // Seed the in-memory rollback target with the phase-entry state so a
    // guard tripped before the first snapshot-cadence epoch still has
    // somewhere safe to land.
    if let Some(g) = guard.as_mut() {
        let mut st = TrainerState::new(
            VARIANT_PLAIN,
            Phase::Clustering {
                next_epoch: start_epoch,
            },
            model.export_params(),
            rng,
        );
        st.pretrain_metrics = Some(pretrain_metrics);
        st.epochs = epochs.clone();
        st.snapshots = snapshots
            .iter()
            .map(|(e, z)| (*e, z.clone(), None))
            .collect();
        st.elapsed_seconds = elapsed_base;
        g.note_healthy(st);
    }
    'attempts: loop {
        for epoch in start_epoch..cfg.max_epochs {
            if cfg.snapshot_epochs.contains(&epoch) {
                snapshots.push((epoch, model.embed(&data)));
            }
            // One optimisation step, with any scheduled fault injections.
            let due_faults = guard
                .as_mut()
                .map_or_else(Vec::new, |g| g.faults_due("clustering", epoch));
            let step_t = span(rec, "step");
            let cluster = model.cluster_target(&data)?.map(|target| ClusterStep {
                target,
                omega: None,
            });
            let spec = StepSpec {
                recon_target: Some(Rc::clone(&data.adjacency)),
                gamma: cfg.gamma,
                cluster,
            };
            let poison = due_faults.contains(&FaultKind::NanGrad);
            if poison {
                arm_grad_poison();
            }
            let step_result = model.train_step(&data, &spec, rng);
            if poison {
                disarm_grad_poison();
            }
            let mut loss = step_result?;
            step_t.stop();
            for kind in &due_faults {
                match kind {
                    FaultKind::InfLoss => loss = f64::INFINITY,
                    FaultKind::NanLoss => loss = f64::NAN,
                    FaultKind::CorruptCkpt => {
                        if let Some(s) = saver.as_ref() {
                            s.corrupt_latest(epoch as u64)?;
                        }
                    }
                    FaultKind::NanGrad => {}
                }
            }

            // Trip checks run before any bookkeeping: a tripped epoch
            // contributes no record and no save.
            let mut exported: Option<ModelState> = None;
            let mut snap = false;
            if let Some(g) = guard.as_mut() {
                snap = g.snapshot_due(epoch, saver.as_ref().is_some_and(|s| s.due(epoch + 1)));
                let (state, tripped) = g.check_core("clustering", epoch, loss, model, snap);
                exported = state;
                if tripped {
                    match g.recover(saver.as_ref(), VARIANT_PLAIN, true, "clustering", epoch) {
                        Recovery::Retry(st, plan) => {
                            model.import_params(&st.model)?;
                            model.scale_lr(plan.lr_scale);
                            *rng = st.rng();
                            rng.reseed_with(plan.reseed_salt);
                            snapshots = st.plain_snapshots();
                            epochs = st.epochs.clone();
                            start_epoch = st.phase.next_epoch().unwrap_or(0);
                            continue 'attempts;
                        }
                        Recovery::Degrade(st) => {
                            if let Some(st) = st {
                                model.import_params(&st.model)?;
                                *rng = st.rng();
                                snapshots = st.plain_snapshots();
                                epochs = st.epochs.clone();
                            }
                            degraded = true;
                            break 'attempts;
                        }
                    }
                }
            }

            // The final epoch always gets a full evaluation, whatever
            // `eval_every` says — the closing record must carry metrics.
            let last_epoch = epoch + 1 == cfg.max_epochs;
            let record_t = span(rec, "record");
            let eval_t = span(rec, "eval");
            let p = soft_assignments_or_kmeans_traced(model, &data, rng, rec)?;
            let pred = p.row_argmax();
            let eval_now = last_epoch || epoch.is_multiple_of(cfg.eval_every);
            let metrics = eval_now.then(|| Metrics::from_predictions(&pred, truth));
            eval_t.stop();
            let (mut fr_r, mut fr_full, mut fd_cur, mut fd_van) = (None, None, None, None);
            let mut omega_size = data.num_nodes;
            if cfg.track_diagnostics {
                let _diag = span(rec, "diagnostics");
                let p_xi = xi_assignments_or_kmeans_traced(model, &data, rng, rec)?;
                let omega = xi(&p_xi, &cfg.xi)?;
                omega_size = omega.len();
                let z = model.embed(&data);
                if let Some(target) = model.cluster_target(&data)? {
                    if !omega.is_empty() {
                        fr_r = lambda_fr(model, &data, &target, Some(&omega.indices), truth, rec)?;
                    }
                    fr_full = lambda_fr(model, &data, &target, None, truth, rec)?;
                }
                let sup = supervised_graph(&data, &z, &p, truth, rec)?;
                // "R value at the plain model's θ": the Υ-transformed graph the
                // R-model would use right now.
                if !omega.is_empty() {
                    let out = upsilon(&data.adjacency, &p, &z, &omega.indices, &cfg.upsilon)?;
                    fd_cur = Some(lambda_fd(model, &data, &Rc::new(out.graph), &sup)?);
                }
                fd_van = Some(lambda_fd(model, &data, &data.adjacency, &sup)?);
            }
            let record = EpochRecord {
                epoch,
                loss,
                metrics,
                omega_size,
                omega_acc: 0.0,
                rest_acc: 0.0,
                graph_stats: eval_now.then(|| GraphStats::compute(&data.adjacency, truth)),
                added_links: eval_now.then_some((0, 0)),
                dropped_links: eval_now.then_some((0, 0)),
                lambda_fr_restricted: fr_r,
                lambda_fr_full: fr_full,
                lambda_fd_current: fd_cur,
                lambda_fd_vanilla: fd_van,
            };
            record_t.stop();
            if rec.enabled() {
                rec.record(&Event::Epoch(record.to_event()));
                rec.gauge("omega_size", Some(epoch), omega_size as f64);
            }
            epochs.push(record);
            if let Some(g) = guard.as_mut() {
                g.warn_checks("clustering", epoch, Some(&p), None);
            }

            let due_save = saver
                .as_ref()
                .is_some_and(|s| !last_epoch && s.due(epoch + 1));
            if snap || due_save {
                let mut st = TrainerState::new(
                    VARIANT_PLAIN,
                    Phase::Clustering {
                        next_epoch: epoch + 1,
                    },
                    exported.take().unwrap_or_else(|| model.export_params()),
                    rng,
                );
                st.pretrain_metrics = Some(pretrain_metrics);
                st.epochs = epochs.clone();
                st.snapshots = snapshots
                    .iter()
                    .map(|(e, z)| (*e, z.clone(), None))
                    .collect();
                st.elapsed_seconds = elapsed_base + phase_start.elapsed().as_secs_f64();
                if due_save {
                    if let Some(s) = saver.as_mut() {
                        s.save(&st)?;
                        if guard.is_some() {
                            s.mark_healthy(&st)?;
                        }
                    }
                }
                if let Some(g) = guard.as_mut() {
                    g.note_healthy(st);
                }
            }
        }
        break 'attempts;
    }
    let train_seconds = elapsed_base + clustering.stop();
    // Requested snapshots at or past the end of the run collapse into one
    // final snapshot labelled with the actual epoch count.
    let end_epoch = epochs.last().map_or(0, |e| e.epoch + 1);
    if cfg.snapshot_epochs.iter().any(|&e| e >= end_epoch)
        && !snapshots.iter().any(|s| s.0 == end_epoch)
    {
        snapshots.push((end_epoch, model.embed(&data)));
    }
    let final_metrics = {
        let _eval = span(rec, "eval");
        evaluate_traced(model, &data, truth, rng, rec)?
    };
    if rec.enabled() {
        rec.record(&Event::RunEnd(RunSummary {
            train_seconds,
            converged_at: None,
            epochs_run: epochs.len(),
            final_acc: final_metrics.acc,
            final_nmi: final_metrics.nmi,
            final_ari: final_metrics.ari,
            degraded,
        }));
        flush_kernel_stats(rec);
    }
    if let Some(s) = saver.as_mut() {
        let mut st = TrainerState::new(VARIANT_PLAIN, Phase::Done, model.export_params(), rng);
        st.pretrain_metrics = Some(pretrain_metrics);
        st.final_metrics = Some(final_metrics);
        st.epochs = epochs.clone();
        st.snapshots = snapshots
            .iter()
            .map(|(e, z)| (*e, z.clone(), None))
            .collect();
        st.elapsed_seconds = train_seconds;
        st.degraded = degraded;
        s.save(&st)?;
    }
    Ok(PlainReport {
        pretrain_metrics,
        final_metrics,
        epochs,
        train_seconds,
        snapshots,
        degraded,
    })
}

//! The R-trainer: integrates Ξ and Υ into any [`GaeModel`] (the paper's
//! "R-𝒟" recipe), plus the plain trainer used for the un-modified baselines.
//!
//! Training loop (Section 5.1):
//!
//! 1. pretrain with vanilla reconstruction;
//! 2. initialise the clustering head (k-means / GMM on the embeddings);
//! 3. every `M₁` epochs recompute Ω = Ξ(P′); every `M₂` epochs rebuild the
//!    self-supervision graph `A^self_clus = Υ(A, P, Ω)`;
//! 4. optimise `L_clus(P(Ξ(Z)))` + γ·BCE(Â, A^self_clus) until the
//!    convergence criterion `|Ω| ≥ 0.9·|𝒱|`.
//!
//! The [`RConfig`] switches expose every protocol variation the paper
//! evaluates: Ξ delays (Table 6), single-step protection against FD
//! (Table 7), the α ablations (Table 8), and the add/drop ablations
//! (Table 9).

use std::rc::Rc;
use std::time::Instant;

use rgae_cluster::accuracy;
use rgae_graph::{AttributedGraph, GraphStats};
use rgae_linalg::{Csr, Rng64};
use rgae_models::{ClusterStep, GaeModel, StepSpec, TrainData};

use crate::diagnostics::{lambda_fd, lambda_fr, one_hot_targets, q_prime};
use crate::eval::{evaluate, soft_assignments_or_kmeans, xi_assignments_or_kmeans, Metrics};
use crate::upsilon::{upsilon, UpsilonConfig};
use crate::xi::{xi, Omega, XiConfig};
use crate::Result;

/// How Υ counters Feature Drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdMode {
    /// The paper's proposal: gradually rewrite `A` every `M₂` epochs using
    /// the current Ω (a *correction* mechanism).
    GradualCorrection,
    /// Table 7's alternative: transform `A` once, with `Ω = 𝒱`, before the
    /// clustering phase (a *protection* mechanism).
    SingleStepProtection,
}

/// Full configuration of an R-𝒟 run.
#[derive(Clone, Debug)]
pub struct RConfig {
    /// Ξ configuration (α₁, α₂ and their ablation switches).
    pub xi: XiConfig,
    /// Υ configuration (add/drop ablation switches).
    pub upsilon: UpsilonConfig,
    /// Ω refresh period M₁ (epochs).
    pub m1: usize,
    /// A^self_clus refresh period M₂ (epochs).
    pub m2: usize,
    /// Reconstruction weight γ.
    pub gamma: f64,
    /// Pretraining epochs (vanilla reconstruction).
    pub pretrain_epochs: usize,
    /// Maximum clustering-phase epochs.
    pub max_epochs: usize,
    /// Minimum clustering-phase epochs before the convergence check.
    pub min_epochs: usize,
    /// Convergence threshold on |Ω| / N (paper: 0.9).
    pub convergence: f64,
    /// Delay (epochs) before Ξ activates; 0 is the paper's protection
    /// strategy, larger values reproduce Table 6's correction variants.
    pub delay_xi: usize,
    /// Disable Ξ entirely (Table 8 "ablation of both": Ω = 𝒱 always).
    pub use_xi: bool,
    /// Disable Υ entirely (Table 9 "ablation of both": A^self = A always).
    pub use_upsilon: bool,
    /// FD strategy (Table 7).
    pub fd_mode: FdMode,
    /// Record the Λ_FR / Λ_FD diagnostics each epoch (extra backward
    /// passes; needed for Figs. 5–6).
    pub track_diagnostics: bool,
    /// Evaluate clustering metrics every this many epochs (1 = every epoch).
    pub eval_every: usize,
    /// Clustering-phase epochs at which to snapshot the embeddings and the
    /// current self-supervision graph (Figs. 4 and 10).
    pub snapshot_epochs: Vec<usize>,
}

impl Default for RConfig {
    fn default() -> Self {
        RConfig {
            xi: XiConfig::new(0.3),
            upsilon: UpsilonConfig::default(),
            m1: 20,
            m2: 10,
            gamma: 0.001,
            pretrain_epochs: 200,
            max_epochs: 200,
            min_epochs: 30,
            convergence: 0.9,
            delay_xi: 0,
            use_xi: true,
            use_upsilon: true,
            fd_mode: FdMode::GradualCorrection,
            track_diagnostics: false,
            eval_every: 1,
            snapshot_epochs: Vec::new(),
        }
    }
}

impl RConfig {
    /// Appendix-C hyper-parameters (the R-GMM-VGAE rows; per-model
    /// overrides are applied by the experiment harness where they differ).
    pub fn for_dataset(name: &str) -> Self {
        let mut cfg = RConfig::default();
        match name {
            "cora-like" => {
                cfg.xi = XiConfig::new(0.3);
                cfg.m1 = 20;
                cfg.m2 = 10;
            }
            "citeseer-like" => {
                cfg.xi = XiConfig::new(0.2);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            "pubmed-like" => {
                cfg.xi = XiConfig::new(0.4);
                cfg.m1 = 50;
                cfg.m2 = 5;
            }
            "usa-air-like" => {
                cfg.xi = XiConfig::new(0.3);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            "europe-air-like" => {
                cfg.xi = XiConfig::new(0.05);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            "brazil-air-like" => {
                cfg.xi = XiConfig::new(0.25);
                cfg.m1 = 50;
                cfg.m2 = 1;
            }
            _ => {}
        }
        cfg
    }

    /// Shrink epoch counts for smoke tests and `--quick` harness runs.
    pub fn quick(mut self) -> Self {
        self.pretrain_epochs = self.pretrain_epochs.min(60);
        self.max_epochs = self.max_epochs.min(60);
        self.min_epochs = self.min_epochs.min(10);
        self.m1 = self.m1.min(10);
        self.m2 = self.m2.min(5);
        self
    }
}

/// Per-epoch trace of an R run (drives Figs. 4–6 and 9).
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Clustering-phase epoch index.
    pub epoch: usize,
    /// Training loss at this step.
    pub loss: f64,
    /// Clustering metrics over all nodes (only filled on eval epochs).
    pub metrics: Option<Metrics>,
    /// |Ω|.
    pub omega_size: usize,
    /// Accuracy restricted to Ω.
    pub omega_acc: f64,
    /// Accuracy over 𝒱 − Ω.
    pub rest_acc: f64,
    /// Statistics of the current self-supervision graph.
    pub graph_stats: GraphStats,
    /// Links present in `A^self_clus` but not in `A`, split by label
    /// agreement: `(true_links, false_links)`.
    pub added_links: (usize, usize),
    /// Links of `A` missing from `A^self_clus`, split the same way.
    pub dropped_links: (usize, usize),
    /// Λ_FR with the Ξ restriction (the R-model's own value).
    pub lambda_fr_restricted: Option<f64>,
    /// Λ_FR without the restriction (the plain model's value at the same θ).
    pub lambda_fr_full: Option<f64>,
    /// Λ_FD of the current self-supervision graph vs Υ(A, Q′, 𝒱).
    pub lambda_fd_current: Option<f64>,
    /// Λ_FD of the vanilla graph `A` vs Υ(A, Q′, 𝒱).
    pub lambda_fd_vanilla: Option<f64>,
}

/// Outcome of an R run.
#[derive(Clone, Debug)]
pub struct RReport {
    /// Metrics after pretraining + head initialisation (the shared starting
    /// point of 𝒟 and R-𝒟).
    pub pretrain_metrics: Metrics,
    /// Final metrics.
    pub final_metrics: Metrics,
    /// Clustering-phase epoch at which |Ω| ≥ 0.9N was reached.
    pub converged_at: Option<usize>,
    /// Per-epoch trace.
    pub epochs: Vec<EpochRecord>,
    /// Wall-clock seconds for the clustering phase (excludes pretraining).
    pub train_seconds: f64,
    /// Final self-supervision graph (for Fig. 4 snapshots).
    pub final_graph: Rc<Csr>,
    /// `(epoch, Z, A^self_clus)` snapshots taken at `snapshot_epochs`.
    pub snapshots: Vec<(usize, rgae_linalg::Mat, Rc<Csr>)>,
}

/// Outcome of a plain (un-modified 𝒟) run.
#[derive(Clone, Debug)]
pub struct PlainReport {
    /// Metrics after pretraining + head initialisation.
    pub pretrain_metrics: Metrics,
    /// Final metrics.
    pub final_metrics: Metrics,
    /// Per-epoch trace (Λ diagnostics only when requested).
    pub epochs: Vec<EpochRecord>,
    /// Wall-clock seconds for the clustering phase.
    pub train_seconds: f64,
    /// `(epoch, Z)` snapshots taken at `snapshot_epochs`.
    pub snapshots: Vec<(usize, rgae_linalg::Mat)>,
}

/// Split links into (same-label, cross-label) counts.
fn split_links(links: &[(usize, usize)], labels: &[usize]) -> (usize, usize) {
    let mut t = 0;
    let mut f = 0;
    for &(u, v) in links {
        if labels[u] == labels[v] {
            t += 1;
        } else {
            f += 1;
        }
    }
    (t, f)
}

/// Links in `b` missing from `a` (upper triangle).
fn edge_diff(a: &Csr, b: &Csr) -> Vec<(usize, usize)> {
    b.upper_edges()
        .into_iter()
        .filter(|&(u, v)| !a.contains(u, v))
        .collect()
}

/// The supervised clustering-oriented graph `Υ(A, Q′, 𝒱)` used by Λ_FD.
fn supervised_graph(
    data: &TrainData,
    z: &rgae_linalg::Mat,
    p: &rgae_linalg::Mat,
    truth: &[usize],
) -> Result<Rc<Csr>> {
    let pred = p.row_argmax();
    let qp = q_prime(&pred, truth);
    let k = data.num_classes.max(qp.iter().copied().max().unwrap_or(0) + 1);
    let one_hot = one_hot_targets(&qp, k);
    let all: Vec<usize> = (0..data.num_nodes).collect();
    let out = upsilon(
        &data.adjacency,
        &one_hot,
        z,
        &all,
        &UpsilonConfig::default(),
    )?;
    Ok(Rc::new(out.graph))
}

/// The generic R-𝒟 trainer.
pub struct RTrainer {
    cfg: RConfig,
}

impl RTrainer {
    /// Build from a configuration.
    pub fn new(cfg: RConfig) -> Self {
        RTrainer { cfg }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &RConfig {
        &self.cfg
    }

    /// Pretrain only (vanilla reconstruction + head initialisation). Useful
    /// when several variants must share the same pretrained weights.
    pub fn pretrain(
        &self,
        model: &mut dyn GaeModel,
        data: &TrainData,
        rng: &mut Rng64,
    ) -> Result<()> {
        let spec = StepSpec::pretrain(Rc::clone(&data.adjacency));
        for _ in 0..self.cfg.pretrain_epochs {
            model.train_step(data, &spec, rng)?;
        }
        model.init_clustering(data, rng)?;
        Ok(())
    }

    /// Full R run: pretraining, then the Ξ/Υ clustering phase.
    pub fn train(
        &self,
        model: &mut dyn GaeModel,
        graph: &AttributedGraph,
        rng: &mut Rng64,
    ) -> Result<RReport> {
        let data = TrainData::from_graph(graph);
        self.pretrain(model, &data, rng)?;
        self.train_clustering_phase(model, graph, &data, rng)
    }

    /// The clustering phase alone (assumes pretraining already ran).
    #[allow(clippy::too_many_lines)]
    pub fn train_clustering_phase(
        &self,
        model: &mut dyn GaeModel,
        graph: &AttributedGraph,
        data: &TrainData,
        rng: &mut Rng64,
    ) -> Result<RReport> {
        let cfg = &self.cfg;
        let truth = graph.labels();
        let n = data.num_nodes;
        let all_nodes: Vec<usize> = (0..n).collect();
        let pretrain_metrics = evaluate(model, data, truth, rng)?;

        let mut a_self: Rc<Csr> = Rc::clone(&data.adjacency);
        let mut omega = Omega {
            indices: all_nodes.clone(),
            lambda1: vec![1.0; n],
            lambda2: vec![0.0; n],
        };
        let mut epochs = Vec::new();
        let mut snapshots = Vec::new();
        let mut converged_at = None;
        let start = Instant::now();

        // Table 7 protection variant: one-shot Υ(A, P, 𝒱) before training.
        if cfg.use_upsilon && cfg.fd_mode == FdMode::SingleStepProtection {
            let p = soft_assignments_or_kmeans(model, data, rng)?;
            let z = model.embed(data);
            let out = upsilon(&data.adjacency, &p, &z, &all_nodes, &cfg.upsilon)?;
            a_self = Rc::new(out.graph);
        }

        for epoch in 0..cfg.max_epochs {
            if cfg.snapshot_epochs.contains(&epoch) {
                snapshots.push((epoch, model.embed(data), Rc::clone(&a_self)));
            }
            let xi_active = cfg.use_xi && epoch >= cfg.delay_xi;

            // Refresh Ω every M₁ epochs (Ω = 𝒱 while Ξ is inactive).
            if epoch % cfg.m1 == 0 {
                if xi_active {
                    let p = xi_assignments_or_kmeans(model, data, rng)?;
                    let candidate = xi(&p, &cfg.xi)?;
                    if !candidate.is_empty() {
                        omega = candidate;
                    }
                } else {
                    omega = Omega {
                        indices: all_nodes.clone(),
                        lambda1: vec![1.0; n],
                        lambda2: vec![0.0; n],
                    };
                }
            }

            // Refresh A^self_clus every M₂ epochs (gradual correction mode).
            if cfg.use_upsilon
                && cfg.fd_mode == FdMode::GradualCorrection
                && epoch % cfg.m2 == 0
            {
                let p = soft_assignments_or_kmeans(model, data, rng)?;
                let z = model.embed(data);
                let out = upsilon(&data.adjacency, &p, &z, &omega.indices, &cfg.upsilon)?;
                a_self = Rc::new(out.graph);
            }

            // One optimisation step.
            let cluster = match model.cluster_target(data)? {
                Some(target) => Some(ClusterStep {
                    target,
                    omega: if omega.len() < n {
                        Some(omega.indices.clone())
                    } else {
                        None
                    },
                }),
                None => None,
            };
            let spec = StepSpec {
                recon_target: Some(Rc::clone(&a_self)),
                gamma: cfg.gamma,
                cluster,
            };
            let loss = model.train_step(data, &spec, rng)?;

            // Bookkeeping.
            let record = self.record_epoch(
                model, data, graph, epoch, loss, &omega, &a_self, rng,
            )?;
            epochs.push(record);

            if converged_at.is_none()
                && epoch >= cfg.min_epochs
                && omega.coverage(n) >= cfg.convergence
            {
                converged_at = Some(epoch);
                break;
            }
        }
        let train_seconds = start.elapsed().as_secs_f64();
        if cfg.snapshot_epochs.iter().any(|&e| e >= cfg.max_epochs) {
            snapshots.push((cfg.max_epochs, model.embed(data), Rc::clone(&a_self)));
        }
        let final_metrics = evaluate(model, data, truth, rng)?;
        Ok(RReport {
            pretrain_metrics,
            final_metrics,
            converged_at,
            epochs,
            train_seconds,
            final_graph: a_self,
            snapshots,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn record_epoch(
        &self,
        model: &dyn GaeModel,
        data: &TrainData,
        graph: &AttributedGraph,
        epoch: usize,
        loss: f64,
        omega: &Omega,
        a_self: &Rc<Csr>,
        rng: &mut Rng64,
    ) -> Result<EpochRecord> {
        let cfg = &self.cfg;
        let truth = graph.labels();
        let n = data.num_nodes;
        let p = soft_assignments_or_kmeans(model, data, rng)?;
        let pred = p.row_argmax();

        let eval_now = epoch.is_multiple_of(cfg.eval_every);
        let metrics = eval_now.then(|| Metrics::from_predictions(&pred, truth));

        let omega_pred: Vec<usize> = omega.indices.iter().map(|&i| pred[i]).collect();
        let omega_truth: Vec<usize> = omega.indices.iter().map(|&i| truth[i]).collect();
        let omega_acc = if omega.is_empty() {
            0.0
        } else {
            accuracy(&omega_pred, &omega_truth)
        };
        let rest: Vec<usize> = omega.complement(n);
        let rest_pred: Vec<usize> = rest.iter().map(|&i| pred[i]).collect();
        let rest_truth: Vec<usize> = rest.iter().map(|&i| truth[i]).collect();
        let rest_acc = if rest.is_empty() {
            1.0
        } else {
            accuracy(&rest_pred, &rest_truth)
        };

        let graph_stats = GraphStats::compute(a_self, truth);
        let added = edge_diff(&data.adjacency, a_self);
        let dropped = edge_diff(a_self, &data.adjacency);
        let added_links = split_links(&added, truth);
        let dropped_links = split_links(&dropped, truth);

        let (mut fr_r, mut fr_full, mut fd_cur, mut fd_van) = (None, None, None, None);
        if cfg.track_diagnostics {
            let z = model.embed(data);
            if let Some(target) = model.cluster_target(data)? {
                fr_r = lambda_fr(model, data, &target, Some(&omega.indices), truth)?;
                fr_full = lambda_fr(model, data, &target, None, truth)?;
            }
            let sup = supervised_graph(data, &z, &p, truth)?;
            fd_cur = Some(lambda_fd(model, data, a_self, &sup)?);
            fd_van = Some(lambda_fd(model, data, &data.adjacency, &sup)?);
        }

        Ok(EpochRecord {
            epoch,
            loss,
            metrics,
            omega_size: omega.len(),
            omega_acc,
            rest_acc,
            graph_stats,
            added_links,
            dropped_links,
            lambda_fr_restricted: fr_r,
            lambda_fr_full: fr_full,
            lambda_fd_current: fd_cur,
            lambda_fd_vanilla: fd_van,
        })
    }
}

/// Train the un-modified model 𝒟: pretraining, head initialisation, then
/// `train_epochs` of its own joint loss against the static graph `A` (or
/// pure reconstruction for first-group models). Diagnostics are recorded
/// when `track_diagnostics` is set (using `xi_cfg` only to compute the
/// hypothetical Ω for the Λ comparisons).
pub fn train_plain(
    model: &mut dyn GaeModel,
    graph: &AttributedGraph,
    cfg: &RConfig,
    rng: &mut Rng64,
) -> Result<PlainReport> {
    let data = TrainData::from_graph(graph);
    let truth = graph.labels();
    let spec_pre = StepSpec::pretrain(Rc::clone(&data.adjacency));
    for _ in 0..cfg.pretrain_epochs {
        model.train_step(&data, &spec_pre, rng)?;
    }
    model.init_clustering(&data, rng)?;
    let pretrain_metrics = evaluate(model, &data, truth, rng)?;

    let mut epochs = Vec::new();
    let mut snapshots = Vec::new();
    let start = Instant::now();
    for epoch in 0..cfg.max_epochs {
        if cfg.snapshot_epochs.contains(&epoch) {
            snapshots.push((epoch, model.embed(&data)));
        }
        let cluster = model.cluster_target(&data)?.map(|target| ClusterStep {
            target,
            omega: None,
        });
        let spec = StepSpec {
            recon_target: Some(Rc::clone(&data.adjacency)),
            gamma: cfg.gamma,
            cluster,
        };
        let loss = model.train_step(&data, &spec, rng)?;

        let p = soft_assignments_or_kmeans(model, &data, rng)?;
        let pred = p.row_argmax();
        let metrics = epoch.is_multiple_of(cfg.eval_every)
            .then(|| Metrics::from_predictions(&pred, truth));
        let (mut fr_r, mut fr_full, mut fd_cur, mut fd_van) = (None, None, None, None);
        let mut omega_size = data.num_nodes;
        if cfg.track_diagnostics {
            let p_xi = xi_assignments_or_kmeans(model, &data, rng)?;
            let omega = xi(&p_xi, &cfg.xi)?;
            omega_size = omega.len();
            let z = model.embed(&data);
            if let Some(target) = model.cluster_target(&data)? {
                if !omega.is_empty() {
                    fr_r = lambda_fr(model, &data, &target, Some(&omega.indices), truth)?;
                }
                fr_full = lambda_fr(model, &data, &target, None, truth)?;
            }
            let sup = supervised_graph(&data, &z, &p, truth)?;
            // "R value at the plain model's θ": the Υ-transformed graph the
            // R-model would use right now.
            if !omega.is_empty() {
                let out = upsilon(&data.adjacency, &p, &z, &omega.indices, &cfg.upsilon)?;
                fd_cur = Some(lambda_fd(model, &data, &Rc::new(out.graph), &sup)?);
            }
            fd_van = Some(lambda_fd(model, &data, &data.adjacency, &sup)?);
        }
        epochs.push(EpochRecord {
            epoch,
            loss,
            metrics,
            omega_size,
            omega_acc: 0.0,
            rest_acc: 0.0,
            graph_stats: GraphStats::compute(&data.adjacency, truth),
            added_links: (0, 0),
            dropped_links: (0, 0),
            lambda_fr_restricted: fr_r,
            lambda_fr_full: fr_full,
            lambda_fd_current: fd_cur,
            lambda_fd_vanilla: fd_van,
        });
    }
    let train_seconds = start.elapsed().as_secs_f64();
    if cfg.snapshot_epochs.iter().any(|&e| e >= cfg.max_epochs) {
        snapshots.push((cfg.max_epochs, model.embed(&data)));
    }
    let final_metrics = evaluate(model, &data, truth, rng)?;
    Ok(PlainReport {
        pretrain_metrics,
        final_metrics,
        epochs,
        train_seconds,
        snapshots,
    })
}

//! Crash-safety contract of the checkpoint layer: a run killed right after
//! any save and resumed from disk finishes **bit-identically** to an
//! uninterrupted run (losses, Ω trajectory, metrics, snapshots), at any
//! thread count; corrupt checkpoints never crash — the loader falls back to
//! the previous good generation or starts fresh.

use std::path::PathBuf;

use rgae_core::{
    train_plain, train_plain_ckpt, CheckpointOpts, Error, PlainReport, RConfig, RReport, RTrainer,
};
use rgae_datasets::{citation_like, CitationSpec};
use rgae_graph::AttributedGraph;
use rgae_linalg::Rng64;
use rgae_models::{Dgae, TrainData};
use rgae_obs::{Event, MemorySink, Recorder, NOOP};

fn test_graph(seed: u64) -> AttributedGraph {
    citation_like(
        &CitationSpec {
            name: "cora-like".into(),
            num_nodes: 160,
            num_classes: 3,
            num_features: 80,
            avg_degree: 5.0,
            homophily: 0.82,
            degree_power: 2.6,
            words_per_node: 12,
            topic_purity: 0.8,
            class_proportions: vec![],
        },
        seed,
    )
    .unwrap()
}

/// Short run with a deterministic save schedule: no early convergence
/// (min = max), sparse eval epochs so `Option` fields round-trip both ways,
/// and one in-range + one past-the-end snapshot request.
fn ckpt_cfg(threads: Option<usize>) -> RConfig {
    let mut cfg = RConfig::for_dataset("cora-like").quick();
    cfg.pretrain_epochs = 20;
    cfg.max_epochs = 30;
    cfg.min_epochs = 30;
    cfg.eval_every = 5;
    cfg.snapshot_epochs = vec![15, 99];
    cfg.threads = threads;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rgae-ckpt-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SEED: u64 = 17;

fn run_r(
    cfg: &RConfig,
    ckpt: Option<CheckpointOpts>,
    rec: &dyn Recorder,
) -> Result<RReport, Error> {
    let graph = test_graph(SEED);
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    let mut trainer = RTrainer::with_recorder(cfg.clone(), rec);
    if let Some(opts) = ckpt {
        trainer = trainer.with_checkpoints(opts);
    }
    trainer.train(&mut model, &graph, &mut rng)
}

fn run_plain(cfg: &RConfig, ckpt: Option<&CheckpointOpts>) -> Result<PlainReport, Error> {
    let graph = test_graph(SEED);
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    train_plain_ckpt(&mut model, &graph, cfg, &mut rng, &NOOP, ckpt)
}

fn assert_metrics_bits_eq(a: &rgae_core::Metrics, b: &rgae_core::Metrics, what: &str) {
    assert_eq!(a.acc.to_bits(), b.acc.to_bits(), "{what} acc");
    assert_eq!(a.nmi.to_bits(), b.nmi.to_bits(), "{what} nmi");
    assert_eq!(a.ari.to_bits(), b.ari.to_bits(), "{what} ari");
}

fn assert_epochs_eq(a: &[rgae_core::EpochRecord], b: &[rgae_core::EpochRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: epoch count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.epoch, y.epoch, "{what}: epoch index");
        assert_eq!(
            x.loss.to_bits(),
            y.loss.to_bits(),
            "{what}: loss at epoch {}",
            x.epoch
        );
        assert_eq!(x.omega_size, y.omega_size, "{what}: |Ω| at {}", x.epoch);
        assert_eq!(
            x.omega_acc.to_bits(),
            y.omega_acc.to_bits(),
            "{what}: Ω acc at {}",
            x.epoch
        );
        match (&x.metrics, &y.metrics) {
            (Some(mx), Some(my)) => assert_metrics_bits_eq(mx, my, what),
            (None, None) => {}
            _ => panic!("{what}: metrics presence differs at epoch {}", x.epoch),
        }
        assert_eq!(x.added_links, y.added_links, "{what}: added at {}", x.epoch);
        assert_eq!(
            x.dropped_links, y.dropped_links,
            "{what}: dropped at {}",
            x.epoch
        );
    }
}

fn assert_r_reports_eq(a: &RReport, b: &RReport, what: &str) {
    assert_epochs_eq(&a.epochs, &b.epochs, what);
    assert_eq!(a.converged_at, b.converged_at, "{what}: converged_at");
    assert_metrics_bits_eq(&a.pretrain_metrics, &b.pretrain_metrics, what);
    assert_metrics_bits_eq(&a.final_metrics, &b.final_metrics, what);
    assert_eq!(a.final_graph.indptr(), b.final_graph.indptr(), "{what}");
    assert_eq!(a.final_graph.indices(), b.final_graph.indices(), "{what}");
    let se_a: Vec<usize> = a.snapshots.iter().map(|s| s.0).collect();
    let se_b: Vec<usize> = b.snapshots.iter().map(|s| s.0).collect();
    assert_eq!(se_a, se_b, "{what}: snapshot epochs");
    for ((_, za, _), (_, zb, _)) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(za.rows(), zb.rows(), "{what}: snapshot shape");
        for (va, vb) in za.as_slice().iter().zip(zb.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}: snapshot Z bits");
        }
    }
}

fn assert_plain_reports_eq(a: &PlainReport, b: &PlainReport, what: &str) {
    assert_epochs_eq(&a.epochs, &b.epochs, what);
    assert_metrics_bits_eq(&a.pretrain_metrics, &b.pretrain_metrics, what);
    assert_metrics_bits_eq(&a.final_metrics, &b.final_metrics, what);
    let se_a: Vec<usize> = a.snapshots.iter().map(|s| s.0).collect();
    let se_b: Vec<usize> = b.snapshots.iter().map(|s| s.0).collect();
    assert_eq!(se_a, se_b, "{what}: snapshot epochs");
}

/// Kill the R run right after its Nth checkpoint save — for every reachable
/// N, covering mid-pretraining, the phase boundary, mid-clustering, and the
/// end-of-run save — then resume from disk and demand a bit-identical
/// report.
#[test]
fn r_halt_and_resume_matches_uninterrupted() {
    let cfg = ckpt_cfg(Some(1));
    let reference = run_r(&cfg, None, &NOOP).unwrap();
    let mut halts = 0;
    for n in 1..=6 {
        let dir = temp_dir(&format!("r-halt-{n}"));
        let crashed = run_r(
            &cfg,
            Some(CheckpointOpts::new(&dir).every(7).halt_after_saves(n)),
            &NOOP,
        );
        match crashed {
            Err(Error::Halted) => {
                halts += 1;
                let resumed = run_r(
                    &cfg,
                    Some(CheckpointOpts::new(&dir).every(7).resume(true)),
                    &NOOP,
                )
                .unwrap();
                assert_r_reports_eq(&reference, &resumed, &format!("halt after save {n}"));
            }
            Ok(report) => {
                // N exceeded the save count of every phase: the run simply
                // finished, and must still match the checkpoint-free run.
                assert_r_reports_eq(&reference, &report, &format!("no halt at {n}"));
            }
            Err(e) => panic!("unexpected error at halt {n}: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The schedule must actually have exercised crash points in both phases
    // (pretraining saves at 7/14 + boundary; clustering at 7/14/21/28 + end).
    assert!(halts >= 5, "only {halts} halt points reached");
}

/// The same contract holds on the parallel path.
#[test]
fn r_halt_and_resume_matches_at_four_threads() {
    let cfg = ckpt_cfg(Some(4));
    let reference = run_r(&cfg, None, &NOOP).unwrap();
    for n in [2, 4] {
        let dir = temp_dir(&format!("r-halt4-{n}"));
        let crashed = run_r(
            &cfg,
            Some(CheckpointOpts::new(&dir).every(7).halt_after_saves(n)),
            &NOOP,
        );
        assert!(matches!(crashed, Err(Error::Halted)));
        let resumed = run_r(
            &cfg,
            Some(CheckpointOpts::new(&dir).every(7).resume(true)),
            &NOOP,
        )
        .unwrap();
        assert_r_reports_eq(&reference, &resumed, &format!("threads=4 halt {n}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Serial and 4-thread references agree bit-for-bit (the rgae-par
/// determinism contract extends through the checkpoint layer).
#[test]
fn r_reference_is_thread_invariant() {
    let a = run_r(&ckpt_cfg(Some(1)), None, &NOOP).unwrap();
    let b = run_r(&ckpt_cfg(Some(4)), None, &NOOP).unwrap();
    assert_r_reports_eq(&a, &b, "threads 1 vs 4");
}

/// Kill/resume equivalence for the plain trainer (one saver spans both
/// phases there, so N walks pretraining, boundary, clustering, and end
/// saves in one sequence).
#[test]
fn plain_halt_and_resume_matches_uninterrupted() {
    let cfg = ckpt_cfg(Some(1));
    let reference = {
        let graph = test_graph(SEED);
        let data = TrainData::from_graph(&graph);
        let mut rng = Rng64::seed_from_u64(SEED);
        let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
        train_plain(&mut model, &graph, &cfg, &mut rng).unwrap()
    };
    let mut halts = 0;
    for n in 1..=9 {
        let dir = temp_dir(&format!("plain-halt-{n}"));
        let crashed = run_plain(
            &cfg,
            Some(&CheckpointOpts::new(&dir).every(7).halt_after_saves(n)),
        );
        match crashed {
            Err(Error::Halted) => {
                halts += 1;
                let resumed =
                    run_plain(&cfg, Some(&CheckpointOpts::new(&dir).every(7).resume(true)))
                        .unwrap();
                assert_plain_reports_eq(&reference, &resumed, &format!("plain halt {n}"));
            }
            Ok(report) => {
                assert_plain_reports_eq(&reference, &report, &format!("plain no halt {n}"));
            }
            Err(e) => panic!("unexpected error at halt {n}: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(halts >= 7, "only {halts} halt points reached");
}

/// A resumed run's log replays the pre-crash epoch events, so the JSONL
/// trace of a resumed run is indistinguishable in structure from an
/// uninterrupted one (plus the checkpoint bookkeeping events).
#[test]
fn resume_replays_full_event_log() {
    let cfg = ckpt_cfg(Some(1));
    let dir = temp_dir("r-events");
    let crashed = run_r(
        &cfg,
        Some(CheckpointOpts::new(&dir).every(7).halt_after_saves(4)),
        &NOOP,
    );
    assert!(matches!(crashed, Err(Error::Halted)));

    let sink = MemorySink::new();
    let resumed = run_r(
        &cfg,
        Some(CheckpointOpts::new(&dir).every(7).resume(true)),
        &sink,
    )
    .unwrap();

    let epoch_events = sink.of_kind("epoch");
    assert_eq!(
        epoch_events.len(),
        resumed.epochs.len(),
        "replayed + live epoch events must cover the whole run"
    );
    let ckpt_events = sink.of_kind("checkpoint");
    let loaded: Vec<&Event> = ckpt_events
        .iter()
        .filter(|e| matches!(e, Event::Checkpoint { action, .. } if action == "loaded"))
        .collect();
    assert!(!loaded.is_empty(), "resume must log a 'loaded' event");
    assert!(
        ckpt_events
            .iter()
            .any(|e| matches!(e, Event::Checkpoint { action, .. } if action == "saved")),
        "the resumed run keeps checkpointing"
    );
    assert_eq!(sink.of_kind("run_end").len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

fn corrupt_file(path: &std::path::Path, mode: &str) {
    let mut bytes = std::fs::read(path).unwrap();
    match mode {
        "flip" => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        "truncate" => bytes.truncate(bytes.len() / 3),
        _ => unreachable!(),
    }
    std::fs::write(path, bytes).unwrap();
}

/// CRC catches a bit flip (or truncation) in the newest checkpoint; the
/// loader falls back to the previous generation and the run still finishes
/// bit-identically. Never a crash.
#[test]
fn corrupt_latest_falls_back_to_previous() {
    let cfg = ckpt_cfg(Some(1));
    let reference = run_r(&cfg, None, &NOOP).unwrap();
    for mode in ["flip", "truncate"] {
        let dir = temp_dir(&format!("r-corrupt-{mode}"));
        // Crash mid-clustering so both generations exist on disk.
        let crashed = run_r(
            &cfg,
            Some(CheckpointOpts::new(&dir).every(7).halt_after_saves(4)),
            &NOOP,
        );
        assert!(matches!(crashed, Err(Error::Halted)));
        corrupt_file(&dir.join("state.rgck"), mode);

        let sink = MemorySink::new();
        let resumed = run_r(
            &cfg,
            Some(CheckpointOpts::new(&dir).every(7).resume(true)),
            &sink,
        )
        .unwrap();
        assert_r_reports_eq(&reference, &resumed, &format!("corrupt {mode}"));

        let ckpt_events = sink.of_kind("checkpoint");
        assert!(
            ckpt_events
                .iter()
                .any(|e| matches!(e, Event::Checkpoint { action, .. } if action == "corrupt")),
            "{mode}: corruption must be surfaced in the run log"
        );
        assert!(
            ckpt_events
                .iter()
                .any(|e| matches!(e, Event::Checkpoint { action, .. } if action == "fallback")),
            "{mode}: fallback load must be surfaced in the run log"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// With every generation corrupt the trainer silently starts fresh — the
/// result still matches the reference, just without the saved time.
#[test]
fn both_checkpoints_corrupt_starts_fresh() {
    let cfg = ckpt_cfg(Some(1));
    let reference = run_r(&cfg, None, &NOOP).unwrap();
    let dir = temp_dir("r-corrupt-both");
    let crashed = run_r(
        &cfg,
        Some(CheckpointOpts::new(&dir).every(7).halt_after_saves(4)),
        &NOOP,
    );
    assert!(matches!(crashed, Err(Error::Halted)));
    corrupt_file(&dir.join("state.rgck"), "flip");
    corrupt_file(&dir.join("state.prev.rgck"), "truncate");

    let sink = MemorySink::new();
    let resumed = run_r(
        &cfg,
        Some(CheckpointOpts::new(&dir).every(7).resume(true)),
        &sink,
    )
    .unwrap();
    assert_r_reports_eq(&reference, &resumed, "both corrupt");
    // Both generations are rejected up front. (Later "loaded" events are
    // fine — the fresh pretraining pass writes new checkpoints, and the
    // clustering phase picks up its phase-boundary save.)
    let ckpt_events = sink.of_kind("checkpoint");
    let leading_corrupt = ckpt_events
        .iter()
        .take_while(|e| matches!(e, Event::Checkpoint { action, .. } if action == "corrupt"))
        .count();
    assert!(
        leading_corrupt >= 2,
        "both generations must be rejected before anything else"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming an already-finished run fast-forwards: the stored report comes
/// back instantly (and bit-identically), with the full event log replayed.
#[test]
fn resume_of_finished_run_fast_forwards() {
    let cfg = ckpt_cfg(Some(1));
    let reference = run_r(&cfg, None, &NOOP).unwrap();
    let dir = temp_dir("r-done");
    let completed = run_r(&cfg, Some(CheckpointOpts::new(&dir).every(7)), &NOOP).unwrap();
    assert_r_reports_eq(&reference, &completed, "checkpointing changes nothing");

    let sink = MemorySink::new();
    let replayed = run_r(
        &cfg,
        Some(CheckpointOpts::new(&dir).every(7).resume(true)),
        &sink,
    )
    .unwrap();
    assert_r_reports_eq(&reference, &replayed, "done replay");
    assert_eq!(sink.of_kind("epoch").len(), replayed.epochs.len());
    assert_eq!(sink.of_kind("run_end").len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fused decoder's tile size is a pure memory knob: a run checkpointed
/// under one tile setting and resumed under a different one still finishes
/// bit-identically to the uninterrupted reference. (Every train step here
/// goes through `gram_bce_logits_sparse`, so this is the kill/resume
/// contract stated for the fused path specifically.)
#[test]
fn resume_is_tile_invariant_through_fused_decoder() {
    let mut cfg = ckpt_cfg(Some(1));
    cfg.decoder_tile = Some(64);
    let reference = run_r(&cfg, None, &NOOP).unwrap();
    let dir = temp_dir("r-tile");
    let crashed = run_r(
        &cfg,
        Some(CheckpointOpts::new(&dir).every(7).halt_after_saves(3)),
        &NOOP,
    );
    assert!(matches!(crashed, Err(Error::Halted)));
    let mut resume_cfg = cfg.clone();
    resume_cfg.decoder_tile = Some(512);
    let resumed = run_r(
        &resume_cfg,
        Some(CheckpointOpts::new(&dir).every(7).resume(true)),
        &NOOP,
    )
    .unwrap();
    assert_r_reports_eq(&reference, &resumed, "tile 64 → 512 resume");
    let _ = std::fs::remove_dir_all(&dir);
    rgae_linalg::set_decoder_tile(None);
}

/// The bookkeeping bugfixes: the final (or convergence) epoch always
/// carries metrics whatever `eval_every` says; intermediate non-eval epochs
/// skip the O(|E|) graph scans; the end-of-run snapshot is labelled with
/// the epoch count actually run.
#[test]
fn final_epoch_is_always_evaluated_and_snapshot_labelled() {
    let mut cfg = ckpt_cfg(Some(1));
    cfg.eval_every = 7;
    let report = run_r(&cfg, None, &NOOP).unwrap();
    let last = report.epochs.last().unwrap();
    assert_eq!(last.epoch, 29);
    assert!(last.metrics.is_some(), "final epoch must be evaluated");
    assert!(last.graph_stats.is_some());
    // Satellite: non-eval epochs carry no graph scans at all.
    let skipped = report
        .epochs
        .iter()
        .filter(|e| !e.epoch.is_multiple_of(7) && e.epoch != 29)
        .all(|e| e.metrics.is_none() && e.graph_stats.is_none() && e.added_links.is_none());
    assert!(skipped, "non-eval epochs must skip metrics and graph scans");
    // The past-the-end snapshot request (99) collapses onto the real end.
    assert_eq!(
        report.snapshots.iter().map(|s| s.0).collect::<Vec<_>>(),
        vec![15, 30]
    );
}

/// When the run converges early, the convergence epoch is the last record,
/// it is fully evaluated, and the end snapshot is labelled with the actual
/// final epoch — not `max_epochs`.
#[test]
fn convergence_epoch_is_evaluated_and_labelled() {
    let mut cfg = ckpt_cfg(Some(1));
    cfg.min_epochs = 5;
    cfg.max_epochs = 60;
    cfg.eval_every = 50; // only epoch 0 would be evaluated without the fix
    cfg.snapshot_epochs = vec![99];
    let report = run_r(&cfg, None, &NOOP).unwrap();
    let last = report.epochs.last().unwrap();
    assert!(
        last.metrics.is_some(),
        "last epoch {} must be evaluated",
        last.epoch
    );
    if let Some(c) = report.converged_at {
        assert_eq!(last.epoch, c, "convergence ends the run");
        assert!(c + 1 < 60, "test graph should converge early");
        assert_eq!(
            report.snapshots.iter().map(|s| s.0).collect::<Vec<_>>(),
            vec![c + 1],
            "end snapshot labelled with the actual epoch count"
        );
    }
    // And the checkpointed + resumed path preserves all of this.
    let dir = temp_dir("r-converge");
    let crashed = run_r(
        &cfg,
        Some(CheckpointOpts::new(&dir).every(7).halt_after_saves(4)),
        &NOOP,
    );
    if matches!(crashed, Err(Error::Halted)) {
        let resumed = run_r(
            &cfg,
            Some(CheckpointOpts::new(&dir).every(7).resume(true)),
            &NOOP,
        )
        .unwrap();
        assert_r_reports_eq(&report, &resumed, "converged resume");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

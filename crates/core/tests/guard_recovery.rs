//! The rgae-guard contract on the real trainers: a fault-free guarded run is
//! **bit-identical** to an unguarded one (the monitor never touches the RNG
//! stream or the epoch loop), an injected fault mid-clustering recovers via
//! rollback to the last healthy checkpoint — visible in the run log as
//! `fault_injected → guard trip → rollback → retry` — and when retries are
//! exhausted the run still finishes, on last-good parameters, marked
//! degraded.

use std::path::PathBuf;

use rgae_core::{
    train_plain_ckpt, CheckpointOpts, Error, FaultSpec, GuardConfig, PlainReport, RConfig, RReport,
    RTrainer,
};
use rgae_datasets::{citation_like, CitationSpec};
use rgae_graph::AttributedGraph;
use rgae_linalg::Rng64;
use rgae_models::{Dgae, TrainData};
use rgae_obs::{Event, MemorySink, Recorder, NOOP};

fn test_graph(seed: u64) -> AttributedGraph {
    citation_like(
        &CitationSpec {
            name: "cora-like".into(),
            num_nodes: 160,
            num_classes: 3,
            num_features: 80,
            avg_degree: 5.0,
            homophily: 0.82,
            degree_power: 2.6,
            words_per_node: 12,
            topic_purity: 0.8,
            class_proportions: vec![],
        },
        seed,
    )
    .unwrap()
}

/// Same deterministic schedule as the checkpoint tests: no early convergence
/// races (min = max), a mid-run snapshot, sparse evals.
fn base_cfg(threads: Option<usize>) -> RConfig {
    let mut cfg = RConfig::for_dataset("cora-like").quick();
    cfg.pretrain_epochs = 20;
    cfg.max_epochs = 30;
    cfg.min_epochs = 30;
    cfg.eval_every = 5;
    cfg.snapshot_epochs = vec![15];
    cfg.threads = threads;
    cfg
}

/// Guard with `max_retries` and a fault schedule in `RGAE_FAULT` syntax.
fn guard(faults: &str, max_retries: usize) -> GuardConfig {
    GuardConfig {
        faults: FaultSpec::parse_list(faults).unwrap(),
        max_retries,
        ..GuardConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rgae-guard-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SEED: u64 = 17;

fn run_r(
    cfg: &RConfig,
    ckpt: Option<CheckpointOpts>,
    rec: &dyn Recorder,
) -> Result<RReport, Error> {
    let graph = test_graph(SEED);
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    let mut trainer = RTrainer::with_recorder(cfg.clone(), rec);
    if let Some(opts) = ckpt {
        trainer = trainer.with_checkpoints(opts);
    }
    trainer.train(&mut model, &graph, &mut rng)
}

fn run_plain(
    cfg: &RConfig,
    ckpt: Option<&CheckpointOpts>,
    rec: &dyn Recorder,
) -> Result<PlainReport, Error> {
    let graph = test_graph(SEED);
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    train_plain_ckpt(&mut model, &graph, cfg, &mut rng, rec, ckpt)
}

fn assert_metrics_bits_eq(a: &rgae_core::Metrics, b: &rgae_core::Metrics, what: &str) {
    assert_eq!(a.acc.to_bits(), b.acc.to_bits(), "{what} acc");
    assert_eq!(a.nmi.to_bits(), b.nmi.to_bits(), "{what} nmi");
    assert_eq!(a.ari.to_bits(), b.ari.to_bits(), "{what} ari");
}

fn assert_epochs_eq(a: &[rgae_core::EpochRecord], b: &[rgae_core::EpochRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: epoch count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.epoch, y.epoch, "{what}: epoch index");
        assert_eq!(
            x.loss.to_bits(),
            y.loss.to_bits(),
            "{what}: loss at epoch {}",
            x.epoch
        );
        assert_eq!(x.omega_size, y.omega_size, "{what}: |Ω| at {}", x.epoch);
        match (&x.metrics, &y.metrics) {
            (Some(mx), Some(my)) => assert_metrics_bits_eq(mx, my, what),
            (None, None) => {}
            _ => panic!("{what}: metrics presence differs at epoch {}", x.epoch),
        }
    }
}

fn assert_r_reports_eq(a: &RReport, b: &RReport, what: &str) {
    assert_epochs_eq(&a.epochs, &b.epochs, what);
    assert_eq!(a.converged_at, b.converged_at, "{what}: converged_at");
    assert_metrics_bits_eq(&a.pretrain_metrics, &b.pretrain_metrics, what);
    assert_metrics_bits_eq(&a.final_metrics, &b.final_metrics, what);
    assert_eq!(a.final_graph.indptr(), b.final_graph.indptr(), "{what}");
    assert_eq!(a.final_graph.indices(), b.final_graph.indices(), "{what}");
    for ((ea, za, _), (eb, zb, _)) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(ea, eb, "{what}: snapshot epoch");
        for (va, vb) in za.as_slice().iter().zip(zb.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}: snapshot Z bits");
        }
    }
    assert_eq!(a.degraded, b.degraded, "{what}: degraded flag");
}

fn recovery_actions(sink: &MemorySink) -> Vec<(String, String)> {
    sink.of_kind("recovery")
        .into_iter()
        .filter_map(|e| match e {
            Event::Recovery { action, detail, .. } => Some((action, detail)),
            _ => None,
        })
        .collect()
}

fn guard_kinds(sink: &MemorySink) -> Vec<(String, String)> {
    sink.of_kind("guard")
        .into_iter()
        .filter_map(|e| match e {
            Event::Guard { kind, severity, .. } => Some((kind, severity)),
            _ => None,
        })
        .collect()
}

/// The headline differential contract: with no faults injected, turning the
/// guard layer on changes **nothing** — every loss, metric, snapshot, and
/// the refined graph are bit-identical, serial and at 4 threads, with and
/// without checkpointing (the healthy-tagging writes are result-neutral).
#[test]
fn fault_free_guarded_r_run_is_bit_identical() {
    for threads in [1, 4] {
        let cfg = base_cfg(Some(threads));
        let reference = run_r(&cfg, None, &NOOP).unwrap();
        assert!(!reference.degraded);

        let mut guarded = cfg.clone();
        guarded.guard = Some(GuardConfig::default());
        let on = run_r(&guarded, None, &NOOP).unwrap();
        assert_r_reports_eq(&reference, &on, &format!("threads={threads} no-ckpt"));

        let dir = temp_dir(&format!("diff-{threads}"));
        let on_ckpt = run_r(&guarded, Some(CheckpointOpts::new(&dir).every(7)), &NOOP).unwrap();
        assert_r_reports_eq(&reference, &on_ckpt, &format!("threads={threads} ckpt"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Same contract for the plain (non-R) trainer.
#[test]
fn fault_free_guarded_plain_run_is_bit_identical() {
    for threads in [1, 4] {
        let cfg = base_cfg(Some(threads));
        let reference = run_plain(&cfg, None, &NOOP).unwrap();
        assert!(!reference.degraded);

        let mut guarded = cfg.clone();
        guarded.guard = Some(GuardConfig::default());
        let on = run_plain(&guarded, None, &NOOP).unwrap();
        assert_epochs_eq(
            &reference.epochs,
            &on.epochs,
            &format!("plain threads={threads}"),
        );
        assert_metrics_bits_eq(
            &reference.final_metrics,
            &on.final_metrics,
            &format!("plain threads={threads}"),
        );
        assert!(!on.degraded);
    }
}

/// An injected NaN-gradient fault mid-clustering: the optimiser skips the
/// poisoned step, the guard trips on the skip counter, the trainer rolls
/// back to the last healthy checkpoint and retries with a halved LR — and
/// the run finishes healthy (not degraded), with the whole
/// `fault_injected → nonfinite_grad → rollback → retry` sequence on the log.
#[test]
fn nan_grad_mid_clustering_recovers_via_checkpoint_rollback() {
    let mut cfg = base_cfg(Some(1));
    cfg.guard = Some(guard("nan_grad@epoch:12", 2));
    let dir = temp_dir("nan-grad");
    let sink = MemorySink::new();
    let report = run_r(&cfg, Some(CheckpointOpts::new(&dir).every(7)), &sink).unwrap();

    assert!(!report.degraded, "one fault within budget must not degrade");
    assert_eq!(
        report.epochs.last().unwrap().epoch,
        29,
        "the retried run covers the full schedule"
    );
    let m = &report.final_metrics;
    assert!(m.acc.is_finite() && m.nmi.is_finite() && m.ari.is_finite());

    let guards = guard_kinds(&sink);
    assert!(
        guards
            .iter()
            .any(|(k, s)| k == "fault_injected" && s == "info"),
        "injection must be visible: {guards:?}"
    );
    assert!(
        guards
            .iter()
            .any(|(k, s)| k == "nonfinite_grad" && s == "trip"),
        "the skip counter must trip the guard: {guards:?}"
    );
    let rec = recovery_actions(&sink);
    let actions: Vec<&str> = rec.iter().map(|(a, _)| a.as_str()).collect();
    assert_eq!(actions, vec!["rollback", "retry"], "log: {rec:?}");
    assert!(
        rec[0].1.contains("checkpoint state"),
        "rollback must come from disk here: {}",
        rec[0].1
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a checkpoint directory the rollback target is the in-memory
/// last-good snapshot; recovery still works.
#[test]
fn rollback_falls_back_to_memory_without_checkpoints() {
    let mut cfg = base_cfg(Some(1));
    cfg.guard = Some(guard("nan_grad@epoch:12", 2));
    let sink = MemorySink::new();
    let report = run_r(&cfg, None, &sink).unwrap();

    assert!(!report.degraded);
    assert_eq!(report.epochs.last().unwrap().epoch, 29);
    let rec = recovery_actions(&sink);
    assert_eq!(rec.len(), 2, "log: {rec:?}");
    assert!(
        rec[0].1.contains("memory state"),
        "no disk state exists, so the source must be memory: {}",
        rec[0].1
    );
}

/// A zero retry budget turns the first trip into graceful degradation: the
/// run completes on the last-good parameters, reports finite metrics, and
/// both the report and the run log carry the degraded mark.
#[test]
fn exhausted_retries_finish_degraded_on_last_good_params() {
    let mut cfg = base_cfg(Some(1));
    cfg.guard = Some(guard("nan_loss@epoch:12", 0));
    let sink = MemorySink::new();
    let report = run_r(&cfg, None, &sink).unwrap();

    assert!(report.degraded, "retries exhausted must mark the run");
    let m = &report.final_metrics;
    assert!(
        m.acc.is_finite() && m.nmi.is_finite() && m.ari.is_finite(),
        "last-good params still evaluate cleanly"
    );
    let guards = guard_kinds(&sink);
    assert!(
        guards
            .iter()
            .any(|(k, s)| k == "nonfinite_loss" && s == "trip"),
        "log: {guards:?}"
    );
    let rec = recovery_actions(&sink);
    assert_eq!(rec.len(), 1, "log: {rec:?}");
    assert_eq!(rec[0].0, "degraded");

    // The degraded mark round-trips into the JSONL run summary.
    let run_end = sink.of_kind("run_end");
    match &run_end[..] {
        [Event::RunEnd(summary)] => assert!(summary.degraded),
        other => panic!("expected one run_end, got {other:?}"),
    }
}

/// Compound fault: the latest checkpoint generation is byte-flipped before
/// the gradient fault trips. The rollback loader rejects the damaged file
/// (surfacing it as a `corrupt` checkpoint event) and falls back to the
/// healthy-tagged generation; the run still recovers fully.
#[test]
fn corrupt_checkpoint_falls_back_to_healthy_generation() {
    let mut cfg = base_cfg(Some(1));
    cfg.guard = Some(guard("corrupt_ckpt@epoch:10,nan_grad@epoch:12", 2));
    let dir = temp_dir("corrupt-combo");
    let sink = MemorySink::new();
    let report = run_r(&cfg, Some(CheckpointOpts::new(&dir).every(7)), &sink).unwrap();

    assert!(!report.degraded);
    assert_eq!(report.epochs.last().unwrap().epoch, 29);
    let ckpt_events = sink.of_kind("checkpoint");
    assert!(
        ckpt_events
            .iter()
            .any(|e| matches!(e, Event::Checkpoint { action, .. } if action == "corrupt")),
        "the damaged generation must be surfaced"
    );
    assert!(
        ckpt_events
            .iter()
            .any(|e| matches!(e, Event::Checkpoint { action, .. } if action == "fallback")),
        "the loader must report falling back past it"
    );
    let rec = recovery_actions(&sink);
    let actions: Vec<&str> = rec.iter().map(|(a, _)| a.as_str()).collect();
    assert_eq!(actions, vec!["rollback", "retry"], "log: {rec:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Loss-override faults (`inf_loss`) trip the monitor even though the
/// underlying step was fine — the loss check path, as opposed to the
/// gradient path covered above.
#[test]
fn inf_loss_fault_trips_and_recovers() {
    let mut cfg = base_cfg(Some(1));
    cfg.guard = Some(guard("inf_loss@epoch:9", 2));
    let sink = MemorySink::new();
    let report = run_r(&cfg, None, &sink).unwrap();
    assert!(!report.degraded);
    let guards = guard_kinds(&sink);
    assert!(
        guards
            .iter()
            .any(|(k, s)| k == "nonfinite_loss" && s == "trip"),
        "log: {guards:?}"
    );
    // The recorded epochs never contain the poisoned loss: the epoch was
    // rolled back and re-run, so every reported loss is finite.
    assert!(report.epochs.iter().all(|e| e.loss.is_finite()));
}

/// The plain trainer shares the guard plumbing: a clustering-phase fault
/// recovers there too.
#[test]
fn plain_trainer_recovers_from_injected_fault() {
    let mut cfg = base_cfg(Some(1));
    cfg.guard = Some(guard("nan_grad@epoch:12", 2));
    let dir = temp_dir("plain-nan-grad");
    let sink = MemorySink::new();
    let report = run_plain(&cfg, Some(&CheckpointOpts::new(&dir).every(7)), &sink).unwrap();

    assert!(!report.degraded);
    assert_eq!(report.epochs.last().unwrap().epoch, 29);
    assert!(report.final_metrics.acc.is_finite());
    let rec = recovery_actions(&sink);
    let actions: Vec<&str> = rec.iter().map(|(a, _)| a.as_str()).collect();
    assert_eq!(actions, vec!["rollback", "retry"], "log: {rec:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

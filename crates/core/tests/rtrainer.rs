//! Behavioural tests of the R-trainer: the paper's headline claims at
//! miniature scale, plus every protocol switch (delays, protection modes,
//! ablations).

use rgae_core::{train_plain, FdMode, RConfig, RTrainer};
use rgae_datasets::{citation_like, CitationSpec};
use rgae_graph::AttributedGraph;
use rgae_linalg::Rng64;
use rgae_models::{Dgae, Gae, GmmVgae, TrainData};

fn test_graph(seed: u64) -> AttributedGraph {
    citation_like(
        &CitationSpec {
            name: "cora-like".into(),
            num_nodes: 160,
            num_classes: 3,
            num_features: 80,
            avg_degree: 5.0,
            homophily: 0.82,
            degree_power: 2.6,
            words_per_node: 12,
            topic_purity: 0.8,
            class_proportions: vec![],
        },
        seed,
    )
    .unwrap()
}

fn quick_cfg() -> RConfig {
    let mut cfg = RConfig::for_dataset("cora-like").quick();
    cfg.pretrain_epochs = 60;
    cfg.max_epochs = 60;
    cfg
}

#[test]
fn r_dgae_runs_and_reports() {
    let g = test_graph(1);
    let mut rng = Rng64::seed_from_u64(1);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let report = RTrainer::new(quick_cfg())
        .train(&mut model, &g, &mut rng)
        .unwrap();
    assert!(!report.epochs.is_empty());
    assert!(
        report.final_metrics.acc > 0.45,
        "{:?}",
        report.final_metrics
    );
    assert!(report.final_metrics.acc.is_finite());
    assert!(report.train_seconds > 0.0);
    // Ω should end large (convergence drive).
    let last = report.epochs.last().unwrap();
    assert!(last.omega_size > 0);
}

#[test]
fn omega_grows_and_is_purer_than_rest() {
    let g = test_graph(2);
    let mut rng = Rng64::seed_from_u64(2);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.max_epochs = 80;
    let report = RTrainer::new(cfg).train(&mut model, &g, &mut rng).unwrap();
    let first_sized = report
        .epochs
        .iter()
        .find(|e| e.omega_size < g.num_nodes())
        .map(|e| e.omega_size);
    let last = report.epochs.last().unwrap();
    if let Some(first) = first_sized {
        assert!(
            last.omega_size >= first,
            "Ω shrank: {} -> {}",
            first,
            last.omega_size
        );
    }
    // Fig. 9's claim: the decidable set is more accurately clustered than
    // the undecidable remainder (when both are non-trivial).
    let informative: Vec<_> = report
        .epochs
        .iter()
        .filter(|e| e.omega_size > 10 && e.omega_size + 10 < g.num_nodes())
        .collect();
    if informative.len() >= 3 {
        let omega_mean: f64 =
            informative.iter().map(|e| e.omega_acc).sum::<f64>() / informative.len() as f64;
        let rest_mean: f64 =
            informative.iter().map(|e| e.rest_acc).sum::<f64>() / informative.len() as f64;
        assert!(
            omega_mean > rest_mean,
            "Ω acc {omega_mean} vs rest {rest_mean}"
        );
    }
}

#[test]
fn r_beats_plain_from_shared_pretraining() {
    // The paper's Tables 1–2 protocol: 𝒟 and R-𝒟 share pretrained weights;
    // R-𝒟 should win on average. One seed at miniature scale is noisy, so
    // compare the mean over three seeds and allow a small slack.
    let mut acc_r = 0.0;
    let mut acc_plain = 0.0;
    let trials = 3;
    for seed in 0..trials {
        let g = test_graph(10 + seed);
        let data = TrainData::from_graph(&g);
        let mut rng = Rng64::seed_from_u64(100 + seed);
        let cfg = quick_cfg();
        let trainer = RTrainer::new(cfg.clone());
        let mut base = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
        trainer.pretrain(&mut base, &data, &mut rng).unwrap();

        let mut plain_model = base.clone();
        let mut r_model = base;

        // Plain clustering phase.
        let mut plain_cfg = cfg.clone();
        plain_cfg.pretrain_epochs = 0;
        let mut rng_plain = Rng64::seed_from_u64(7);
        let plain = train_plain(&mut plain_model, &g, &plain_cfg, &mut rng_plain).unwrap();

        // R clustering phase.
        let mut rng_r = Rng64::seed_from_u64(7);
        let r = trainer
            .train_clustering_phase(&mut r_model, &g, &data, &mut rng_r)
            .unwrap();
        acc_r += r.final_metrics.acc;
        acc_plain += plain.final_metrics.acc;
    }
    acc_r /= trials as f64;
    acc_plain /= trials as f64;
    assert!(
        acc_r + 0.02 >= acc_plain,
        "R-DGAE mean acc {acc_r} vs DGAE {acc_plain}"
    );
}

#[test]
fn first_group_r_variant_trains() {
    // R-GAE: Ξ/Υ reshape the reconstruction target during pretraining; no
    // clustering head involved.
    let g = test_graph(3);
    let mut rng = Rng64::seed_from_u64(3);
    let data = TrainData::from_graph(&g);
    let mut model = Gae::new(data.num_features(), &mut rng);
    let report = RTrainer::new(quick_cfg())
        .train(&mut model, &g, &mut rng)
        .unwrap();
    assert!(report.final_metrics.acc > 0.4, "{:?}", report.final_metrics);
    // Graph was actually rewritten at some point.
    assert!(report.epochs.iter().any(|e| {
        let (at, af) = e.added_links.unwrap_or((0, 0));
        let (dt, df) = e.dropped_links.unwrap_or((0, 0));
        at + af + dt + df > 0
    }));
}

#[test]
fn diagnostics_are_recorded_and_bounded() {
    let g = test_graph(4);
    let mut rng = Rng64::seed_from_u64(4);
    let data = TrainData::from_graph(&g);
    let mut model = GmmVgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.track_diagnostics = true;
    cfg.max_epochs = 15;
    cfg.pretrain_epochs = 40;
    let report = RTrainer::new(cfg).train(&mut model, &g, &mut rng).unwrap();
    let mut saw_fr = false;
    let mut saw_fd = false;
    for e in &report.epochs {
        for v in [
            e.lambda_fr_restricted,
            e.lambda_fr_full,
            e.lambda_fd_current,
            e.lambda_fd_vanilla,
        ]
        .into_iter()
        .flatten()
        {
            assert!(
                (-1.0 - 1e-9..=1.0 + 1e-9).contains(&v),
                "Λ out of range: {v}"
            );
        }
        saw_fr |= e.lambda_fr_restricted.is_some();
        saw_fd |= e.lambda_fd_current.is_some();
    }
    assert!(saw_fr && saw_fd);
    // Early in training the pseudo gradient should broadly agree with the
    // supervised one (the paper observes Λ_FR close to 1 initially).
    let first_fr = report.epochs.iter().find_map(|e| e.lambda_fr_full).unwrap();
    assert!(first_fr > 0.0, "early Λ_FR {first_fr}");
}

#[test]
fn xi_ablation_keeps_omega_full() {
    let g = test_graph(5);
    let mut rng = Rng64::seed_from_u64(5);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.use_xi = false;
    cfg.max_epochs = 20;
    let report = RTrainer::new(cfg).train(&mut model, &g, &mut rng).unwrap();
    for e in &report.epochs {
        assert_eq!(e.omega_size, g.num_nodes());
    }
}

#[test]
fn upsilon_ablation_keeps_graph_static() {
    let g = test_graph(6);
    let mut rng = Rng64::seed_from_u64(6);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.use_upsilon = false;
    cfg.max_epochs = 20;
    let report = RTrainer::new(cfg).train(&mut model, &g, &mut rng).unwrap();
    for e in &report.epochs {
        assert_eq!(e.added_links, Some((0, 0)));
        assert_eq!(e.dropped_links, Some((0, 0)));
        assert_eq!(e.graph_stats.as_ref().unwrap().num_edges, g.num_edges());
    }
}

#[test]
fn single_step_protection_mode_runs() {
    let g = test_graph(7);
    let mut rng = Rng64::seed_from_u64(7);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.fd_mode = FdMode::SingleStepProtection;
    cfg.max_epochs = 20;
    let report = RTrainer::new(cfg).train(&mut model, &g, &mut rng).unwrap();
    assert!(report.final_metrics.acc > 0.4);
    // The graph is transformed once up front and stays fixed.
    let first = &report.epochs[0];
    let last = report.epochs.last().unwrap();
    assert_eq!(
        first.graph_stats.as_ref().unwrap().num_edges,
        last.graph_stats.as_ref().unwrap().num_edges
    );
}

#[test]
fn delayed_xi_starts_with_full_omega() {
    let g = test_graph(8);
    let mut rng = Rng64::seed_from_u64(8);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.delay_xi = 10;
    cfg.m1 = 5;
    cfg.max_epochs = 25;
    cfg.min_epochs = 25;
    let report = RTrainer::new(cfg).train(&mut model, &g, &mut rng).unwrap();
    for e in report.epochs.iter().take(10) {
        assert_eq!(e.omega_size, g.num_nodes(), "epoch {}", e.epoch);
    }
    // After the delay, Ξ typically restricts Ω.
    assert!(report
        .epochs
        .iter()
        .skip(10)
        .any(|e| e.omega_size < g.num_nodes()));
}

#[test]
fn upsilon_moves_graph_towards_clustering_structure() {
    // Fig. 4 / Fig. 9's qualitative claim: over training the
    // self-supervision graph gains true links and loses false ones.
    let g = test_graph(9);
    let mut rng = Rng64::seed_from_u64(9);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.max_epochs = 60;
    cfg.min_epochs = 60;
    let report = RTrainer::new(cfg).train(&mut model, &g, &mut rng).unwrap();
    let last = report.epochs.last().unwrap();
    let (added_true, added_false) = last.added_links.unwrap();
    // Most added links should be true links.
    if added_true + added_false > 10 {
        assert!(
            added_true > added_false,
            "added {added_true} true vs {added_false} false"
        );
    }
    // Final graph homophily should not be worse than the input graph's.
    let input_h = rgae_graph::edge_homophily(g.adjacency(), g.labels());
    let last_gs = last.graph_stats.as_ref().unwrap();
    let final_h = last_gs.true_links as f64 / last_gs.num_edges.max(1) as f64;
    assert!(
        final_h >= input_h - 0.02,
        "homophily {input_h} -> {final_h}"
    );
}

#[test]
fn plain_trainer_tracks_diagnostics_too() {
    let g = test_graph(11);
    let mut rng = Rng64::seed_from_u64(11);
    let data = TrainData::from_graph(&g);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let mut cfg = quick_cfg();
    cfg.track_diagnostics = true;
    cfg.pretrain_epochs = 40;
    cfg.max_epochs = 10;
    let report = train_plain(&mut model, &g, &cfg, &mut rng).unwrap();
    assert_eq!(report.epochs.len(), 10);
    assert!(report.epochs.iter().any(|e| e.lambda_fd_vanilla.is_some()));
    assert!(report.final_metrics.acc > 0.4);
}

//! Table 5: execution time (seconds) of GMM-VGAE / R-GMM-VGAE and
//! DGAE / R-DGAE on the citation-like datasets — best, mean, and variance
//! over trials. The claim under test: the Ξ/Υ operators add no significant
//! overhead (their cost is near-linear; training is quadratic in N).

use rgae_viz::CsvWriter;
use rgae_xp::{
    print_table, rconfig_for_opts, run_pair, stats, DatasetKind, HarnessOpts, ModelKind,
};

fn main() {
    let mut opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    // The paper uses ten trials for timing; keep that unless --quick.
    if !opts.quick && opts.trials < 10 {
        opts.trials = 10;
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("table5.csv"),
        &["dataset", "model", "variant", "trial", "seconds"],
    )
    .expect("csv");

    for dataset in DatasetKind::citation() {
        if !opts.wants(dataset) {
            continue;
        }
        let graph = dataset.build(opts.dataset_scale(), opts.seed);
        for model in ModelKind::second_group() {
            let cfg = rconfig_for_opts(model, dataset, &opts);
            let mut plain_t = Vec::new();
            let mut r_t = Vec::new();
            let mut plain_pe = Vec::new();
            let mut r_pe = Vec::new();
            for trial in 0..opts.trials {
                let out = run_pair(
                    model,
                    dataset,
                    &graph,
                    &cfg,
                    opts.seed + trial as u64,
                    rec,
                    &opts,
                );
                plain_t.push(out.plain.train_seconds);
                r_t.push(out.r.train_seconds);
                plain_pe.push(out.plain.train_seconds / out.plain.epochs.len().max(1) as f64);
                r_pe.push(out.r.train_seconds / out.r.epochs.len().max(1) as f64);
                for (variant, t) in [
                    ("plain", out.plain.train_seconds),
                    ("r", out.r.train_seconds),
                ] {
                    csv.row_strs(&[
                        dataset.name().into(),
                        model.name().into(),
                        variant.into(),
                        trial.to_string(),
                        format!("{t:.4}"),
                    ])
                    .expect("csv row");
                }
            }
            for (label, ts, pe) in [
                (model.name().to_string(), &plain_t, &plain_pe),
                (format!("R-{}", model.name()), &r_t, &r_pe),
            ] {
                let best = ts.iter().cloned().fold(f64::INFINITY, f64::min);
                let s = stats(ts);
                let spe = stats(pe);
                rows.push(vec![
                    dataset.name().into(),
                    label,
                    format!("{best:.3}"),
                    format!("{:.3}", s.mean),
                    format!("{:.4}", s.std * s.std),
                    format!("{:.4}", spe.mean),
                ]);
            }
        }
    }
    csv.finish().expect("csv flush");
    print_table(
        "Table 5: clustering-phase execution time (seconds)",
        &["dataset", "method", "best", "mean", "variance", "sec/epoch"],
        &rows,
    );
    println!("\nNote: absolute times are incomparable to the paper's server;");
    println!("the reproduced claim is the small R-overhead ratio per dataset.");
    println!("R whole-phase times can be *lower* because R runs stop at the");
    println!("|Omega| >= 0.9N convergence criterion; compare sec/epoch for the");
    println!("per-step operator overhead.");
}

//! Figures 5 & 6: the Λ_FR and Λ_FD diagnostics on cora-like.
//!
//! Three experiments per figure, as in the paper:
//!   (a/d) train **R-GMM-VGAE**, record both the restricted (R) and
//!         unrestricted (plain) Λ values at the R-model's parameters;
//!   (b/e) train **GMM-VGAE**, record both values at the plain model's
//!         parameters;
//!   (c/f) cross-compare the R value from run (a) with the plain value
//!         from run (b).
//! Each CSV row also carries the normalised cumulative difference (the
//! purple curves).

use rgae_core::{train_plain_traced, EpochRecord, RTrainer};
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_viz::{ascii_lines, CsvWriter};
use rgae_xp::{bin_name, emit_run_start, rconfig_for_opts, DatasetKind, HarnessOpts, ModelKind};

fn series(records: &[EpochRecord], pick: impl Fn(&EpochRecord) -> Option<f64>) -> Vec<f64> {
    records
        .iter()
        .map(|e| pick(e).unwrap_or(f64::NAN))
        .collect()
}

/// Normalised cumulative difference of two series (the purple curves).
fn cumulative_diff(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut out = Vec::with_capacity(a.len());
    let mut max_abs: f64 = 1e-12;
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            acc += x - y;
        }
        out.push(acc);
        max_abs = max_abs.max(acc.abs());
    }
    for v in &mut out {
        *v /= max_abs;
    }
    out
}

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let data = TrainData::from_graph(&graph);
    let mut cfg = rconfig_for_opts(ModelKind::GmmVgae, dataset, &opts);
    cfg.track_diagnostics = true;
    cfg.eval_every = 1;
    cfg.min_epochs = cfg.max_epochs; // full trace, no early stop
    if !opts.quick {
        cfg.max_epochs = 140;
        cfg.min_epochs = 140;
    }

    // Shared pretrained weights for both runs.
    let mut rng = Rng64::seed_from_u64(opts.seed);
    let trainer = RTrainer::with_recorder(cfg.clone(), rec);
    let mut base = ModelKind::GmmVgae.build(data.num_features(), graph.num_classes(), &mut rng);
    trainer.pretrain(base.as_mut(), &data, &mut rng).unwrap();

    // Experiment 1: train R-GMM-VGAE.
    let mut r_model = base.clone_box();
    let mut rng_r = Rng64::seed_from_u64(opts.seed ^ 0xA);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::GmmVgae.name(),
        dataset.name(),
        "r",
        opts.seed,
        &cfg,
    );
    let r_report = trainer
        .train_clustering_phase(r_model.as_mut(), &graph, &data, &mut rng_r)
        .unwrap();

    // Experiment 2: train plain GMM-VGAE.
    let mut p_model = base.clone_box();
    let mut cfg_plain = cfg.clone();
    cfg_plain.pretrain_epochs = 0;
    let mut rng_p = Rng64::seed_from_u64(opts.seed ^ 0xA);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::GmmVgae.name(),
        dataset.name(),
        "plain",
        opts.seed,
        &cfg_plain,
    );
    let p_report =
        train_plain_traced(p_model.as_mut(), &graph, &cfg_plain, &mut rng_p, rec).unwrap();

    // Assemble the series.
    let fr_r_at_r = series(&r_report.epochs, |e| e.lambda_fr_restricted); // blue (a)
    let fr_plain_at_r = series(&r_report.epochs, |e| e.lambda_fr_full); // green (a)
    let fr_r_at_p = series(&p_report.epochs, |e| e.lambda_fr_restricted); // gold (b)
    let fr_plain_at_p = series(&p_report.epochs, |e| e.lambda_fr_full); // red (b)
    let fd_r_at_r = series(&r_report.epochs, |e| e.lambda_fd_current);
    let fd_plain_at_r = series(&r_report.epochs, |e| e.lambda_fd_vanilla);
    let fd_r_at_p = series(&p_report.epochs, |e| e.lambda_fd_current);
    let fd_plain_at_p = series(&p_report.epochs, |e| e.lambda_fd_vanilla);

    let mut csv = CsvWriter::create(
        opts.out_dir.join("fig5_6.csv"),
        &[
            "epoch",
            "fr_r_at_r",
            "fr_plain_at_r",
            "fr_cumdiff_a",
            "fr_r_at_p",
            "fr_plain_at_p",
            "fr_cumdiff_b",
            "fr_cumdiff_c",
            "fd_r_at_r",
            "fd_plain_at_r",
            "fd_cumdiff_a",
            "fd_r_at_p",
            "fd_plain_at_p",
            "fd_cumdiff_b",
            "fd_cumdiff_c",
        ],
    )
    .expect("csv");
    let fr_cd_a = cumulative_diff(&fr_r_at_r, &fr_plain_at_r);
    let fr_cd_b = cumulative_diff(&fr_r_at_p, &fr_plain_at_p);
    let fr_cd_c = cumulative_diff(&fr_r_at_r, &fr_plain_at_p);
    let fd_cd_a = cumulative_diff(&fd_r_at_r, &fd_plain_at_r);
    let fd_cd_b = cumulative_diff(&fd_r_at_p, &fd_plain_at_p);
    let fd_cd_c = cumulative_diff(&fd_r_at_r, &fd_plain_at_p);
    let n = fr_r_at_r.len().min(fr_r_at_p.len());
    for i in 0..n {
        csv.row(&[
            i as f64,
            fr_r_at_r[i],
            fr_plain_at_r[i],
            fr_cd_a[i],
            fr_r_at_p[i],
            fr_plain_at_p[i],
            fr_cd_b[i],
            fr_cd_c[i],
            fd_r_at_r[i],
            fd_plain_at_r[i],
            fd_cd_a[i],
            fd_r_at_p[i],
            fd_plain_at_p[i],
            fd_cd_b[i],
            fd_cd_c[i],
        ])
        .expect("csv row");
    }
    csv.finish().expect("csv flush");

    println!("\n== Figure 5 (Λ_FR on cora-like) ==");
    println!("(a) during R-GMM-VGAE training:");
    print!(
        "{}",
        ascii_lines(
            &[("R (restricted)", &fr_r_at_r), ("plain", &fr_plain_at_r)],
            70,
            12
        )
    );
    println!("(b) during GMM-VGAE training:");
    print!(
        "{}",
        ascii_lines(
            &[("R (restricted)", &fr_r_at_p), ("plain", &fr_plain_at_p)],
            70,
            12
        )
    );
    println!("\n== Figure 6 (Λ_FD on cora-like) ==");
    println!("(a) during R-GMM-VGAE training:");
    print!(
        "{}",
        ascii_lines(
            &[("R graph", &fd_r_at_r), ("vanilla A", &fd_plain_at_r)],
            70,
            12
        )
    );
    println!("(b) during GMM-VGAE training:");
    print!(
        "{}",
        ascii_lines(
            &[("R graph", &fd_r_at_p), ("vanilla A", &fd_plain_at_p)],
            70,
            12
        )
    );
    println!(
        "\nFinal ACC — R-GMM-VGAE: {} | GMM-VGAE: {}",
        r_report.final_metrics, p_report.final_metrics
    );
    println!("Full series: {}", opts.out_dir.join("fig5_6.csv").display());
}

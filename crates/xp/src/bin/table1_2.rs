//! Tables 1 & 2: best and mean ± std clustering performance of the six GAE
//! models and their R-variants on the three citation-like datasets.
//!
//! ```text
//! cargo run --release -p rgae-xp --bin table1_2 [-- --quick --trials 3]
//! ```

use rgae_core::Metrics;
use rgae_viz::CsvWriter;
use rgae_xp::{
    best_metrics, metric_stats, pct, pct_pm, print_table, rconfig_for_opts, run_pair, DatasetKind,
    HarnessOpts, ModelKind,
};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let mut best_rows: Vec<Vec<String>> = Vec::new();
    let mut mean_rows: Vec<Vec<String>> = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("table1_2.csv"),
        &["dataset", "model", "variant", "trial", "acc", "nmi", "ari"],
    )
    .expect("csv");

    for dataset in DatasetKind::citation() {
        if !opts.wants(dataset) {
            continue;
        }
        let graph = dataset.build(opts.dataset_scale(), opts.seed);
        eprintln!(
            "[table1_2] {} : N={} E={} J={} K={}",
            dataset.name(),
            graph.num_nodes(),
            graph.num_edges(),
            graph.num_features(),
            graph.num_classes()
        );
        for model in ModelKind::all() {
            let cfg = rconfig_for_opts(model, dataset, &opts);
            let mut plain_ms: Vec<Metrics> = Vec::new();
            let mut r_ms: Vec<Metrics> = Vec::new();
            for trial in 0..opts.trials {
                let out = run_pair(
                    model,
                    dataset,
                    &graph,
                    &cfg,
                    opts.seed + trial as u64,
                    rec,
                    &opts,
                );
                for (variant, m) in [
                    ("plain", out.plain.final_metrics),
                    ("r", out.r.final_metrics),
                ] {
                    csv.row_strs(&[
                        dataset.name().into(),
                        model.name().into(),
                        variant.into(),
                        trial.to_string(),
                        format!("{:.4}", m.acc),
                        format!("{:.4}", m.nmi),
                        format!("{:.4}", m.ari),
                    ])
                    .expect("csv row");
                }
                plain_ms.push(out.plain.final_metrics);
                r_ms.push(out.r.final_metrics);
                eprintln!(
                    "  {} trial {}: {} | R-{} {}",
                    model.name(),
                    trial,
                    out.plain.final_metrics,
                    model.name(),
                    out.r.final_metrics
                );
            }
            for (label, ms) in [
                (model.name().to_string(), &plain_ms),
                (format!("R-{}", model.name()), &r_ms),
            ] {
                let b = best_metrics(ms);
                best_rows.push(vec![
                    dataset.name().into(),
                    label.clone(),
                    pct(b.acc),
                    pct(b.nmi),
                    pct(b.ari),
                ]);
                let (a, n, r) = metric_stats(ms);
                mean_rows.push(vec![
                    dataset.name().into(),
                    label,
                    pct_pm(a),
                    pct_pm(n),
                    pct_pm(r),
                ]);
            }
        }
    }
    csv.finish().expect("csv flush");
    print_table(
        "Table 1: best clustering performance (citation-like)",
        &["dataset", "method", "ACC", "NMI", "ARI"],
        &best_rows,
    );
    print_table(
        "Table 2: mean ± std over trials (citation-like)",
        &["dataset", "method", "ACC", "NMI", "ARI"],
        &mean_rows,
    );
    println!(
        "\nCSV written to {}",
        opts.out_dir.join("table1_2.csv").display()
    );
}

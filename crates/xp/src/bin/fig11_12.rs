//! Figures 11 & 12: sensitivity of R-GMM-VGAE and R-DGAE to the Ξ
//! confidence thresholds α₁ ∈ {0.1 … 0.4} and α₂ ∈ {0.05 … 0.25} on
//! cora-like.

use rgae_core::RTrainer;
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_viz::CsvWriter;
use rgae_xp::{
    bin_name, emit_run_start, pct, print_table, rconfig_for_opts, DatasetKind, HarnessOpts,
    ModelKind,
};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let data = TrainData::from_graph(&graph);
    let alpha1s: Vec<f64> = if opts.quick {
        vec![0.1, 0.3]
    } else {
        vec![0.1, 0.2, 0.3, 0.4]
    };
    let alpha2s: Vec<f64> = if opts.quick {
        vec![0.05, 0.15]
    } else {
        vec![0.05, 0.10, 0.15, 0.20, 0.25]
    };

    let mut rows = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("fig11_12.csv"),
        &["model", "alpha1", "alpha2", "acc", "nmi", "ari"],
    )
    .expect("csv");

    for model in [ModelKind::GmmVgae, ModelKind::Dgae] {
        let base_cfg = rconfig_for_opts(model, dataset, &opts);
        let mut rng = Rng64::seed_from_u64(opts.seed);
        let trainer = RTrainer::with_recorder(base_cfg.clone(), rec);
        let mut pretrained = model.build(data.num_features(), graph.num_classes(), &mut rng);
        trainer
            .pretrain(pretrained.as_mut(), &data, &mut rng)
            .unwrap();
        for &a1 in &alpha1s {
            for &a2 in &alpha2s {
                let mut cfg = base_cfg.clone();
                cfg.xi.alpha1 = a1;
                cfg.xi.alpha2 = a2;
                let mut variant = pretrained.clone_box();
                let mut rng_v = Rng64::seed_from_u64(opts.seed ^ 0x11);
                emit_run_start(
                    rec,
                    &bin_name(),
                    model.name(),
                    dataset.name(),
                    &format!("r-a1={a1}-a2={a2}"),
                    opts.seed,
                    &cfg,
                );
                let report = RTrainer::with_recorder(cfg, rec)
                    .train_clustering_phase(variant.as_mut(), &graph, &data, &mut rng_v)
                    .unwrap();
                let m = report.final_metrics;
                eprintln!("  R-{} a1={a1} a2={a2}: {m}", model.name());
                csv.row_strs(&[
                    model.name().into(),
                    a1.to_string(),
                    a2.to_string(),
                    format!("{:.4}", m.acc),
                    format!("{:.4}", m.nmi),
                    format!("{:.4}", m.ari),
                ])
                .expect("csv row");
                rows.push(vec![
                    format!("R-{}", model.name()),
                    a1.to_string(),
                    a2.to_string(),
                    pct(m.acc),
                    pct(m.nmi),
                    pct(m.ari),
                ]);
            }
        }
    }
    csv.finish().expect("csv flush");
    print_table(
        "Figures 11-12: sensitivity to alpha1/alpha2 (cora-like)",
        &["method", "alpha1", "alpha2", "ACC", "NMI", "ARI"],
        &rows,
    );
}

//! Table 6: protection vs correction against Feature Randomness.
//!
//! Protection = Ξ active from the first clustering epoch (`delay = 0`).
//! Correction = Ξ delayed by {10, 30, 50, 100, …} epochs so FR occurs first.
//! The paper's finding: protection wins and longer delays generally hurt.

use rgae_core::RTrainer;
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_viz::CsvWriter;
use rgae_xp::{
    bin_name, emit_run_start, pct, print_table, rconfig_for_opts, DatasetKind, HarnessOpts,
    ModelKind,
};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let data = TrainData::from_graph(&graph);
    let delays: Vec<usize> = if opts.quick {
        vec![0, 10, 30]
    } else {
        vec![0, 10, 30, 50, 100]
    };

    let mut rows = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("table6.csv"),
        &["model", "delay", "acc", "nmi", "ari"],
    )
    .expect("csv");

    for model in ModelKind::second_group() {
        let base_cfg = rconfig_for_opts(model, dataset, &opts);
        // Shared pretraining across all delay variants.
        let mut rng = Rng64::seed_from_u64(opts.seed);
        let trainer = RTrainer::with_recorder(base_cfg.clone(), rec);
        let mut pretrained = model.build(data.num_features(), graph.num_classes(), &mut rng);
        trainer
            .pretrain(pretrained.as_mut(), &data, &mut rng)
            .unwrap();

        let mut row = vec![format!("R-{}", model.name())];
        for &delay in &delays {
            let mut cfg = base_cfg.clone();
            cfg.delay_xi = delay;
            // Delayed runs must not converge before Ξ even starts.
            cfg.min_epochs = cfg.min_epochs.max(delay + base_cfg.m1);
            cfg.max_epochs = cfg.max_epochs.max(delay + base_cfg.m1 + 20);
            let mut variant = pretrained.clone_box();
            let mut rng_v = Rng64::seed_from_u64(opts.seed ^ 0xD11A ^ delay as u64);
            emit_run_start(
                rec,
                &bin_name(),
                model.name(),
                dataset.name(),
                &format!("r-delay={delay}"),
                opts.seed,
                &cfg,
            );
            let report = RTrainer::with_recorder(cfg, rec)
                .train_clustering_phase(variant.as_mut(), &graph, &data, &mut rng_v)
                .unwrap();
            let m = report.final_metrics;
            eprintln!("  {} delay {delay}: {m}", model.name());
            csv.row_strs(&[
                model.name().into(),
                delay.to_string(),
                format!("{:.4}", m.acc),
                format!("{:.4}", m.nmi),
                format!("{:.4}", m.ari),
            ])
            .expect("csv row");
            row.push(format!("{}/{}", pct(m.acc), pct(m.nmi)));
        }
        rows.push(row);
    }
    csv.finish().expect("csv flush");

    let mut headers: Vec<String> = vec!["method".into(), "protection (no delay) ACC/NMI".into()];
    for &d in delays.iter().skip(1) {
        headers.push(format!("correction after {d} ACC/NMI"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Table 6: protection vs correction against FR (cora-like)",
        &header_refs,
        &rows,
    );
}

//! Figure 4: evolution of the self-supervision graph `A^self_clus` during
//! R-GMM-VGAE training on cora-like. The paper shows the graph converging
//! to K star-shaped sub-graphs; we report the snapshot statistics (edges,
//! true/false links, hub structure) plus a CSV edge dump per snapshot.

use rgae_core::RTrainer;
use rgae_graph::GraphStats;
use rgae_linalg::Rng64;
use rgae_viz::CsvWriter;
use rgae_xp::{
    bin_name, emit_run_start, print_table, rconfig_for_opts, DatasetKind, HarnessOpts, ModelKind,
};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let mut cfg = rconfig_for_opts(ModelKind::GmmVgae, dataset, &opts);
    let snaps: Vec<usize> = if opts.quick {
        vec![0, 20, 40]
    } else {
        vec![0, 40, 80, 120]
    };
    cfg.snapshot_epochs = snaps.clone();
    cfg.max_epochs = cfg.max_epochs.max(snaps.last().unwrap() + 1);
    cfg.min_epochs = cfg.max_epochs;

    let data = rgae_models::TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(opts.seed);
    let mut model = ModelKind::GmmVgae.build(data.num_features(), graph.num_classes(), &mut rng);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::GmmVgae.name(),
        dataset.name(),
        "r",
        opts.seed,
        &cfg,
    );
    let report = RTrainer::with_recorder(cfg, rec)
        .train(model.as_mut(), &graph, &mut rng)
        .unwrap();

    let mut rows = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("fig4_snapshots.csv"),
        &[
            "epoch",
            "edges",
            "true_links",
            "false_links",
            "max_degree",
            "isolated",
        ],
    )
    .expect("csv");
    let mut edge_csv = CsvWriter::create(
        opts.out_dir.join("fig4_edges.csv"),
        &["epoch", "u", "v", "same_label"],
    )
    .expect("csv");

    for (epoch, _z, a_self) in &report.snapshots {
        let stats = GraphStats::compute(a_self, graph.labels());
        rows.push(vec![
            epoch.to_string(),
            stats.num_edges.to_string(),
            stats.true_links.to_string(),
            stats.false_links.to_string(),
            stats.max_degree.to_string(),
            stats.isolated.to_string(),
        ]);
        csv.row(&[
            *epoch as f64,
            stats.num_edges as f64,
            stats.true_links as f64,
            stats.false_links as f64,
            stats.max_degree as f64,
            stats.isolated as f64,
        ])
        .expect("csv row");
        for (u, v) in a_self.upper_edges() {
            edge_csv
                .row(&[
                    *epoch as f64,
                    u as f64,
                    v as f64,
                    (graph.labels()[u] == graph.labels()[v]) as usize as f64,
                ])
                .expect("edge row");
        }
    }
    // Final state.
    let final_stats = GraphStats::compute(&report.final_graph, graph.labels());
    rows.push(vec![
        "final".into(),
        final_stats.num_edges.to_string(),
        final_stats.true_links.to_string(),
        final_stats.false_links.to_string(),
        final_stats.max_degree.to_string(),
        final_stats.isolated.to_string(),
    ]);
    csv.finish().expect("csv flush");
    edge_csv.finish().expect("csv flush");

    print_table(
        "Figure 4: A^self_clus snapshots during R-GMM-VGAE on cora-like",
        &["epoch", "edges", "true", "false", "max_deg", "isolated"],
        &rows,
    );
    println!("\nStar-structure indicator: max_degree should approach cluster sizes");
    println!(
        "(K={} clusters over N={} nodes) while false links shrink.",
        graph.num_classes(),
        graph.num_nodes()
    );
    println!(
        "Edge dumps: {}",
        opts.out_dir.join("fig4_edges.csv").display()
    );
}

//! Figures 7 & 8: robustness of DGAE vs R-DGAE on cora-like under four
//! corruptions — added random edges, added Gaussian feature noise, dropped
//! edges, dropped feature columns. Both models share the pretrained weights
//! *and* the corrupted dataset in every comparison.

use rgae_core::{train_plain_traced, Metrics, RTrainer};
use rgae_datasets::{
    add_feature_noise, add_random_edges_traced, drop_feature_columns, drop_random_edges,
};
use rgae_graph::AttributedGraph;
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_obs::Recorder;
use rgae_viz::CsvWriter;
use rgae_xp::{
    bin_name, emit_run_start, pct, print_table, rconfig_for_opts, DatasetKind, HarnessOpts,
    ModelKind,
};

fn run_both(
    graph: &AttributedGraph,
    opts: &HarnessOpts,
    cfg: &rgae_core::RConfig,
    variant: &str,
    rec: &dyn Recorder,
) -> (Metrics, Metrics) {
    let data = TrainData::from_graph(graph);
    let mut rng = Rng64::seed_from_u64(opts.seed);
    let trainer = RTrainer::with_recorder(cfg.clone(), rec);
    let mut base = ModelKind::Dgae.build(data.num_features(), graph.num_classes(), &mut rng);
    trainer.pretrain(base.as_mut(), &data, &mut rng).unwrap();

    let mut plain = base.clone_box();
    let mut cfg_plain = cfg.clone();
    cfg_plain.pretrain_epochs = 0;
    let mut rng_p = Rng64::seed_from_u64(opts.seed ^ 0x78);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::Dgae.name(),
        "cora-like",
        &format!("plain-{variant}"),
        opts.seed,
        &cfg_plain,
    );
    let p = train_plain_traced(plain.as_mut(), graph, &cfg_plain, &mut rng_p, rec).unwrap();

    let mut r_model = base;
    let mut rng_r = Rng64::seed_from_u64(opts.seed ^ 0x78);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::Dgae.name(),
        "cora-like",
        &format!("r-{variant}"),
        opts.seed,
        cfg,
    );
    let r = trainer
        .train_clustering_phase(r_model.as_mut(), graph, &data, &mut rng_r)
        .unwrap();
    (p.final_metrics, r.final_metrics)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let clean = dataset.build(opts.dataset_scale(), opts.seed);
    let cfg = rconfig_for_opts(ModelKind::Dgae, dataset, &opts);
    let e = clean.num_edges();

    let added_edges: Vec<usize> = if opts.quick {
        vec![0, e / 4]
    } else {
        vec![0, e / 4, e / 2, e]
    };
    let noise_vars: Vec<f64> = if opts.quick {
        vec![0.0, 0.1]
    } else {
        vec![0.0, 0.05, 0.1, 0.2]
    };
    let dropped_edges: Vec<usize> = if opts.quick {
        vec![0, e / 8]
    } else {
        vec![0, e / 8, e / 4, e / 2]
    };
    let j = clean.num_features();
    let dropped_cols: Vec<usize> = if opts.quick {
        vec![0, j / 10]
    } else {
        vec![0, j / 10, j / 5, 2 * j / 5]
    };

    let mut rows = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("fig7_8.csv"),
        &[
            "corruption",
            "level",
            "dgae_acc",
            "dgae_ari",
            "rdgae_acc",
            "rdgae_ari",
        ],
    )
    .expect("csv");
    let mut run_sweep = |name: &str,
                         levels: &[f64],
                         corrupt: &dyn Fn(f64, &mut Rng64) -> AttributedGraph,
                         rows: &mut Vec<Vec<String>>| {
        for &level in levels {
            // Identical corruption for both models: fixed seed per level.
            let mut crng = Rng64::seed_from_u64(opts.seed ^ (level.to_bits() >> 3));
            let graph = corrupt(level, &mut crng);
            let (p, r) = run_both(&graph, &opts, &cfg, &format!("{name}={level}"), rec);
            eprintln!("  {name} level {level}: DGAE {p} | R-DGAE {r}");
            csv.row_strs(&[
                name.into(),
                level.to_string(),
                format!("{:.4}", p.acc),
                format!("{:.4}", p.ari),
                format!("{:.4}", r.acc),
                format!("{:.4}", r.ari),
            ])
            .expect("csv row");
            rows.push(vec![
                name.into(),
                level.to_string(),
                format!("{}/{}", pct(p.acc), pct(p.ari)),
                format!("{}/{}", pct(r.acc), pct(r.ari)),
            ]);
        }
    };

    run_sweep(
        "add_edges",
        &added_edges.iter().map(|&x| x as f64).collect::<Vec<_>>(),
        &|lvl, rng| {
            let requested = lvl as usize;
            let (g, added) = add_random_edges_traced(&clean, requested, rng, rec).unwrap();
            if added < requested {
                eprintln!("  warning: add_edges delivered {added}/{requested} edges");
            }
            g
        },
        &mut rows,
    );
    run_sweep(
        "feature_noise_var",
        &noise_vars,
        &|lvl, rng| add_feature_noise(&clean, lvl.sqrt(), rng).unwrap(),
        &mut rows,
    );
    run_sweep(
        "drop_edges",
        &dropped_edges.iter().map(|&x| x as f64).collect::<Vec<_>>(),
        &|lvl, rng| drop_random_edges(&clean, lvl as usize, rng).unwrap(),
        &mut rows,
    );
    run_sweep(
        "drop_feature_cols",
        &dropped_cols.iter().map(|&x| x as f64).collect::<Vec<_>>(),
        &|lvl, rng| drop_feature_columns(&clean, lvl as usize, rng).unwrap(),
        &mut rows,
    );
    csv.finish().expect("csv flush");

    print_table(
        "Figures 7-8: robustness of DGAE vs R-DGAE (cora-like)",
        &["corruption", "level", "DGAE ACC/ARI", "R-DGAE ACC/ARI"],
        &rows,
    );
}

//! Table 17: comparison against the broader graph-clustering field on the
//! citation-like datasets. We run every method we implement (the -lite
//! simplifications are documented in DESIGN.md); rows the paper cites from
//! other papers without public code are out of scope here.

use rgae_cluster::{accuracy, ari, nmi};
use rgae_core::Metrics;
use rgae_linalg::Rng64;
use rgae_models::baselines::{agc_lite, daegc_lite_data, mgae_lite, spectral_lite};
use rgae_models::{Dgae, GaeModel, StepSpec, TrainData};
use rgae_viz::CsvWriter;
use rgae_xp::{
    best_metrics, pct, print_table, rconfig_for_opts, run_pair, DatasetKind, HarnessOpts, ModelKind,
};

fn metrics_of(pred: &[usize], truth: &[usize]) -> Metrics {
    Metrics {
        acc: accuracy(pred, truth),
        nmi: nmi(pred, truth),
        ari: ari(pred, truth),
    }
}

/// DAEGC-lite: DGAE trained over the 2-hop proximity filter.
fn run_daegc_lite(graph: &rgae_graph::AttributedGraph, epochs: usize, seed: u64) -> Metrics {
    let data: TrainData = daegc_lite_data(graph);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    let spec = StepSpec::pretrain(std::rc::Rc::clone(&data.adjacency));
    for _ in 0..epochs {
        model.train_step(&data, &spec, &mut rng).unwrap();
    }
    model.init_clustering(&data, &mut rng).unwrap();
    for _ in 0..epochs {
        let target = model.cluster_target(&data).unwrap().unwrap();
        let spec = StepSpec {
            recon_target: Some(std::rc::Rc::clone(&data.adjacency)),
            gamma: 0.001,
            cluster: Some(rgae_models::ClusterStep {
                target,
                omega: None,
            }),
        };
        model.train_step(&data, &spec, &mut rng).unwrap();
    }
    let p = model.soft_assignments(&data).unwrap().unwrap();
    metrics_of(&p.row_argmax(), graph.labels())
}

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let epochs = if opts.quick { 60 } else { 150 };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("table17.csv"),
        &["dataset", "method", "acc", "nmi", "ari"],
    )
    .expect("csv");

    for dataset in DatasetKind::citation() {
        if !opts.wants(dataset) {
            continue;
        }
        let graph = dataset.build(opts.dataset_scale(), opts.seed);
        let truth = graph.labels();
        eprintln!("[table17] {}", dataset.name());
        let mut emit = |method: &str, m: Metrics, rows: &mut Vec<Vec<String>>| {
            eprintln!("  {method}: {m}");
            csv.row_strs(&[
                dataset.name().into(),
                method.into(),
                format!("{:.4}", m.acc),
                format!("{:.4}", m.nmi),
                format!("{:.4}", m.ari),
            ])
            .expect("csv row");
            rows.push(vec![
                dataset.name().into(),
                method.into(),
                pct(m.acc),
                pct(m.nmi),
                pct(m.ari),
            ]);
        };

        // Shallow baselines (best of `trials` runs, like the paper).
        let best = |f: &mut dyn FnMut(u64) -> Metrics| -> Metrics {
            let ms: Vec<Metrics> = (0..opts.trials).map(|t| f(opts.seed + t as u64)).collect();
            best_metrics(&ms)
        };
        let m = best(&mut |s| {
            let mut rng = Rng64::seed_from_u64(s);
            metrics_of(&spectral_lite(&graph, 16, &mut rng).unwrap(), truth)
        });
        emit("Spectral-lite (TADW slot)", m, &mut rows);
        let m = best(&mut |s| {
            let mut rng = Rng64::seed_from_u64(s);
            let (pred, _) = mgae_lite(&graph, 3, 0.2, 1e-2, &mut rng).unwrap();
            metrics_of(&pred, truth)
        });
        emit("MGAE-lite", m, &mut rows);
        let m = best(&mut |s| {
            let mut rng = Rng64::seed_from_u64(s);
            metrics_of(&agc_lite(&graph, 4, &mut rng).unwrap(), truth)
        });
        emit("AGC-lite", m, &mut rows);
        let m = best(&mut |s| run_daegc_lite(&graph, epochs, s));
        emit("DAEGC-lite", m, &mut rows);

        // GAE-family models (plain + R for the second group), best of
        // trials, reusing the Tables-1/2 protocol.
        for model in ModelKind::all() {
            let cfg = rconfig_for_opts(model, dataset, &opts);
            let mut plain_ms = Vec::new();
            let mut r_ms = Vec::new();
            for trial in 0..opts.trials {
                let out = run_pair(
                    model,
                    dataset,
                    &graph,
                    &cfg,
                    opts.seed + trial as u64,
                    rec,
                    &opts,
                );
                plain_ms.push(out.plain.final_metrics);
                r_ms.push(out.r.final_metrics);
            }
            emit(model.name(), best_metrics(&plain_ms), &mut rows);
            if model.is_second_group() {
                emit(
                    &format!("R-{}", model.name()),
                    best_metrics(&r_ms),
                    &mut rows,
                );
            }
        }
    }
    csv.finish().expect("csv flush");
    print_table(
        "Table 17: graph-clustering methods on citation-like datasets (best of trials)",
        &["dataset", "method", "ACC", "NMI", "ARI"],
        &rows,
    );
    println!("\nRows for TADW/DGI/AGE etc. are represented by the documented -lite");
    println!("stand-ins (see DESIGN.md); paper-only rows are not regenerated.");
}

//! Figure 10: 2-D t-SNE of the latent representations of GMM-VGAE and
//! R-GMM-VGAE at several training epochs (shared pretrained weights).
//! Emits per-snapshot CSV point clouds and ASCII previews, plus a
//! silhouette-style separability summary.

use rgae_core::{train_plain_traced, RTrainer};
use rgae_linalg::{Mat, Rng64};
use rgae_models::TrainData;
use rgae_viz::{ascii_scatter, tsne, CsvWriter, TsneConfig};
use rgae_xp::{bin_name, emit_run_start, rconfig_for_opts, DatasetKind, HarnessOpts, ModelKind};

/// Mean silhouette-like separation: (inter-centroid spread) / (mean
/// intra-cluster distance). Higher = better separated.
fn separation(y: &Mat, labels: &[usize], k: usize) -> f64 {
    let mut means = Mat::zeros(k, 2);
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for (m, &v) in means.row_mut(l).iter_mut().zip(y.row(i)) {
            *m += v;
        }
    }
    #[allow(clippy::needless_range_loop)]
    for c in 0..k {
        let inv = 1.0 / counts[c].max(1) as f64;
        for m in means.row_mut(c) {
            *m *= inv;
        }
    }
    let mut intra = 0.0;
    for (i, &l) in labels.iter().enumerate() {
        intra += y.row_sq_dist(i, means.row(l)).sqrt();
    }
    intra /= labels.len() as f64;
    let mut inter = 0.0;
    let mut pairs = 0;
    for a in 0..k {
        for b in a + 1..k {
            inter += rgae_linalg::euclidean(means.row(a), means.row(b));
            pairs += 1;
        }
    }
    inter / pairs.max(1) as f64 / intra.max(1e-9)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale().min(0.25), opts.seed);
    let data = TrainData::from_graph(&graph);
    let snaps: Vec<usize> = if opts.quick {
        vec![0, 20, 40]
    } else {
        vec![0, 40, 80, 120]
    };
    let mut cfg = rconfig_for_opts(ModelKind::GmmVgae, dataset, &opts);
    cfg.snapshot_epochs = snaps.clone();
    cfg.max_epochs = cfg.max_epochs.max(snaps.last().unwrap() + 1);
    cfg.min_epochs = cfg.max_epochs;

    let mut rng = Rng64::seed_from_u64(opts.seed);
    let trainer = RTrainer::with_recorder(cfg.clone(), rec);
    let mut base = ModelKind::GmmVgae.build(data.num_features(), graph.num_classes(), &mut rng);
    trainer.pretrain(base.as_mut(), &data, &mut rng).unwrap();

    let mut r_model = base.clone_box();
    let mut rng_r = Rng64::seed_from_u64(opts.seed ^ 0x10);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::GmmVgae.name(),
        dataset.name(),
        "r",
        opts.seed,
        &cfg,
    );
    let r = trainer
        .train_clustering_phase(r_model.as_mut(), &graph, &data, &mut rng_r)
        .unwrap();

    let mut p_model = base;
    let mut cfg_plain = cfg.clone();
    cfg_plain.pretrain_epochs = 0;
    let mut rng_p = Rng64::seed_from_u64(opts.seed ^ 0x10);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::GmmVgae.name(),
        dataset.name(),
        "plain",
        opts.seed,
        &cfg_plain,
    );
    let p = train_plain_traced(p_model.as_mut(), &graph, &cfg_plain, &mut rng_p, rec).unwrap();

    let mut csv = CsvWriter::create(
        opts.out_dir.join("fig10_points.csv"),
        &["model", "epoch", "node", "x", "y", "label"],
    )
    .expect("csv");
    let tsne_cfg = TsneConfig {
        iterations: if opts.quick { 150 } else { 300 },
        ..TsneConfig::default()
    };
    println!("\n== Figure 10: t-SNE of latent spaces on cora-like ==");
    let mut summarise = |name: &str, epoch: usize, z: &Mat| {
        let mut rng_t = Rng64::seed_from_u64(opts.seed ^ 0x75);
        let y = tsne(z, &tsne_cfg, &mut rng_t).expect("tsne");
        for i in 0..y.rows() {
            csv.row_strs(&[
                name.into(),
                epoch.to_string(),
                i.to_string(),
                format!("{:.4}", y[(i, 0)]),
                format!("{:.4}", y[(i, 1)]),
                graph.labels()[i].to_string(),
            ])
            .expect("csv row");
        }
        let sep = separation(&y, graph.labels(), graph.num_classes());
        println!("\n{name} @ epoch {epoch} — separation {sep:.2}");
        let pts: Vec<(f64, f64)> = (0..y.rows()).map(|i| (y[(i, 0)], y[(i, 1)])).collect();
        print!("{}", ascii_scatter(&pts, graph.labels(), 72, 18));
        sep
    };

    let mut final_sep = (0.0, 0.0);
    for (epoch, z) in &p.snapshots {
        let s = summarise("GMM-VGAE", *epoch, z);
        final_sep.0 = s;
    }
    for (epoch, z, _) in &r.snapshots {
        let s = summarise("R-GMM-VGAE", *epoch, z);
        final_sep.1 = s;
    }
    csv.finish().expect("csv flush");
    println!(
        "\nLast-snapshot separation — GMM-VGAE: {:.2} | R-GMM-VGAE: {:.2}",
        final_sep.0, final_sep.1
    );
    println!(
        "Final ACC — GMM-VGAE: {} | R-GMM-VGAE: {}",
        p.final_metrics, r.final_metrics
    );
    println!(
        "Point clouds: {}",
        opts.out_dir.join("fig10_points.csv").display()
    );
}

//! Table 8: ablation of the Ξ confidence thresholds α₁ and α₂ on cora-like.
//! Four variants: drop the margin criterion (α₂), drop the confidence
//! criterion (α₁), drop both (no Ξ at all), and the full operator.

use rgae_core::RTrainer;
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_viz::CsvWriter;
use rgae_xp::{
    bin_name, emit_run_start, pct, print_table, rconfig_for_opts, DatasetKind, HarnessOpts,
    ModelKind,
};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let data = TrainData::from_graph(&graph);

    let mut rows = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("table8.csv"),
        &["model", "ablation", "acc", "nmi", "ari"],
    )
    .expect("csv");

    for model in ModelKind::second_group() {
        let base_cfg = rconfig_for_opts(model, dataset, &opts);
        let mut rng = Rng64::seed_from_u64(opts.seed);
        let trainer = RTrainer::with_recorder(base_cfg.clone(), rec);
        let mut pretrained = model.build(data.num_features(), graph.num_classes(), &mut rng);
        trainer
            .pretrain(pretrained.as_mut(), &data, &mut rng)
            .unwrap();

        let mut row = vec![format!("R-{}", model.name())];
        for (label, no_a1, no_a2, no_xi) in [
            ("ablate alpha2", false, true, false),
            ("ablate alpha1", true, false, false),
            ("ablate both", false, false, true),
            ("no ablation", false, false, false),
        ] {
            let mut cfg = base_cfg.clone();
            cfg.xi.use_alpha1 = !no_a1;
            cfg.xi.use_alpha2 = !no_a2;
            cfg.use_xi = !no_xi;
            let mut variant = pretrained.clone_box();
            let mut rng_v = Rng64::seed_from_u64(opts.seed ^ 0x8);
            emit_run_start(
                rec,
                &bin_name(),
                model.name(),
                dataset.name(),
                &format!("r-{}", label.replace(' ', "_")),
                opts.seed,
                &cfg,
            );
            let report = RTrainer::with_recorder(cfg, rec)
                .train_clustering_phase(variant.as_mut(), &graph, &data, &mut rng_v)
                .unwrap();
            let m = report.final_metrics;
            eprintln!("  {} {label}: {m}", model.name());
            csv.row_strs(&[
                model.name().into(),
                label.into(),
                format!("{:.4}", m.acc),
                format!("{:.4}", m.nmi),
                format!("{:.4}", m.ari),
            ])
            .expect("csv row");
            row.push(format!("{}/{}/{}", pct(m.acc), pct(m.nmi), pct(m.ari)));
        }
        rows.push(row);
    }
    csv.finish().expect("csv flush");
    print_table(
        "Table 8: Xi threshold ablations (cora-like), ACC/NMI/ARI",
        &[
            "method",
            "ablate α2",
            "ablate α1",
            "ablate both",
            "no ablation",
        ],
        &rows,
    );
}

//! Figure 13: sensitivity of GMM-VGAE and R-GMM-VGAE to the balancing
//! hyper-parameter γ on cora-like. The paper's finding: the R-variant is
//! noticeably less sensitive because Υ removes the competition between the
//! clustering and reconstruction signals.

use rgae_core::{train_plain_traced, RTrainer};
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_viz::CsvWriter;
use rgae_xp::{
    bin_name, emit_run_start, pct, print_table, rconfig_for_opts, stats, DatasetKind, HarnessOpts,
    ModelKind,
};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let data = TrainData::from_graph(&graph);
    let gammas: Vec<f64> = if opts.quick {
        vec![0.001, 0.1, 1.0]
    } else {
        vec![0.0001, 0.001, 0.01, 0.1, 1.0]
    };

    let base_cfg = rconfig_for_opts(ModelKind::GmmVgae, dataset, &opts);
    let mut rng = Rng64::seed_from_u64(opts.seed);
    let trainer = RTrainer::with_recorder(base_cfg.clone(), rec);
    let mut pretrained =
        ModelKind::GmmVgae.build(data.num_features(), graph.num_classes(), &mut rng);
    trainer
        .pretrain(pretrained.as_mut(), &data, &mut rng)
        .unwrap();

    let mut rows = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("fig13.csv"),
        &["gamma", "gmmvgae_acc", "rgmmvgae_acc"],
    )
    .expect("csv");
    let mut plain_accs = Vec::new();
    let mut r_accs = Vec::new();
    for &gamma in &gammas {
        let mut cfg = base_cfg.clone();
        cfg.gamma = gamma;

        let mut plain = pretrained.clone_box();
        let mut cfg_plain = cfg.clone();
        cfg_plain.pretrain_epochs = 0;
        let mut rng_p = Rng64::seed_from_u64(opts.seed ^ 0x13);
        emit_run_start(
            rec,
            &bin_name(),
            ModelKind::GmmVgae.name(),
            dataset.name(),
            &format!("plain-gamma={gamma}"),
            opts.seed,
            &cfg_plain,
        );
        let p = train_plain_traced(plain.as_mut(), &graph, &cfg_plain, &mut rng_p, rec).unwrap();

        let mut r_model = pretrained.clone_box();
        let mut rng_r = Rng64::seed_from_u64(opts.seed ^ 0x13);
        emit_run_start(
            rec,
            &bin_name(),
            ModelKind::GmmVgae.name(),
            dataset.name(),
            &format!("r-gamma={gamma}"),
            opts.seed,
            &cfg,
        );
        let r = RTrainer::with_recorder(cfg, rec)
            .train_clustering_phase(r_model.as_mut(), &graph, &data, &mut rng_r)
            .unwrap();

        eprintln!(
            "  gamma {gamma}: GMM-VGAE {} | R-GMM-VGAE {}",
            p.final_metrics, r.final_metrics
        );
        csv.row(&[gamma, p.final_metrics.acc, r.final_metrics.acc])
            .expect("csv row");
        rows.push(vec![
            gamma.to_string(),
            pct(p.final_metrics.acc),
            pct(r.final_metrics.acc),
        ]);
        plain_accs.push(p.final_metrics.acc);
        r_accs.push(r.final_metrics.acc);
    }
    csv.finish().expect("csv flush");
    print_table(
        "Figure 13: gamma sensitivity (cora-like, ACC)",
        &["gamma", "GMM-VGAE", "R-GMM-VGAE"],
        &rows,
    );
    let sp = stats(&plain_accs);
    let sr = stats(&r_accs);
    println!(
        "\nACC spread across gamma — GMM-VGAE std {:.3}, R-GMM-VGAE std {:.3}",
        sp.std, sr.std
    );
    println!("(the R-variant should be the flatter curve)");
}

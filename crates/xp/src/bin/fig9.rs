//! Figure 9: learning dynamics of R-GMM-VGAE on cora-like —
//! (a) |Ω| over epochs, (b) overall ACC, (c) ACC of Ω vs 𝒱−Ω,
//! (d) links of A^self_clus (true/false), (e) added links, (f) dropped
//! links.

use rgae_core::RTrainer;
use rgae_linalg::Rng64;
use rgae_viz::{ascii_lines, CsvWriter};
use rgae_xp::{bin_name, emit_run_start, rconfig_for_opts, DatasetKind, HarnessOpts, ModelKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let data = rgae_models::TrainData::from_graph(&graph);
    let mut cfg = rconfig_for_opts(ModelKind::GmmVgae, dataset, &opts);
    cfg.eval_every = 1;
    cfg.min_epochs = cfg.max_epochs; // full trace

    let mut rng = Rng64::seed_from_u64(opts.seed);
    let mut model = ModelKind::GmmVgae.build(data.num_features(), graph.num_classes(), &mut rng);
    emit_run_start(
        rec,
        &bin_name(),
        ModelKind::GmmVgae.name(),
        dataset.name(),
        "r",
        opts.seed,
        &cfg,
    );
    let mut trainer = RTrainer::with_recorder(cfg, rec);
    if let Some(ckpt) = opts.ckpt_for(
        &bin_name(),
        dataset.name(),
        ModelKind::GmmVgae.name(),
        "r",
        opts.seed,
    ) {
        trainer = trainer.with_checkpoints(ckpt);
    }
    let report = trainer.train(model.as_mut(), &graph, &mut rng).unwrap();

    let mut csv = CsvWriter::create(
        opts.out_dir.join("fig9.csv"),
        &[
            "epoch",
            "omega_size",
            "acc_all",
            "acc_omega",
            "acc_rest",
            "links",
            "true_links",
            "false_links",
            "added_true",
            "added_false",
            "dropped_true",
            "dropped_false",
        ],
    )
    .expect("csv");
    let mut omega_sz = Vec::new();
    let mut acc_all = Vec::new();
    let mut acc_omega = Vec::new();
    let mut acc_rest = Vec::new();
    let mut links = Vec::new();
    let mut false_links = Vec::new();
    for e in &report.epochs {
        let acc = e.metrics.map_or(f64::NAN, |m| m.acc);
        let gs = e.graph_stats.as_ref().expect("eval_every = 1");
        let added = e.added_links.expect("eval_every = 1");
        let dropped = e.dropped_links.expect("eval_every = 1");
        csv.row(&[
            e.epoch as f64,
            e.omega_size as f64,
            acc,
            e.omega_acc,
            e.rest_acc,
            gs.num_edges as f64,
            gs.true_links as f64,
            gs.false_links as f64,
            added.0 as f64,
            added.1 as f64,
            dropped.0 as f64,
            dropped.1 as f64,
        ])
        .expect("csv row");
        omega_sz.push(e.omega_size as f64);
        acc_all.push(acc);
        acc_omega.push(e.omega_acc);
        acc_rest.push(e.rest_acc);
        links.push(gs.num_edges as f64);
        false_links.push(gs.false_links as f64);
    }
    csv.finish().expect("csv flush");

    println!("\n== Figure 9: learning dynamics of R-GMM-VGAE on cora-like ==");
    println!(
        "(a) decidable nodes |Omega| (of N = {}):",
        graph.num_nodes()
    );
    print!("{}", ascii_lines(&[("omega", &omega_sz)], 70, 10));
    println!("(b)+(c) accuracy overall / on Omega / on rest:");
    print!(
        "{}",
        ascii_lines(
            &[
                ("all", &acc_all),
                ("omega", &acc_omega),
                ("rest", &acc_rest)
            ],
            70,
            12
        )
    );
    println!("(d) links of A_clus^self (total vs false):");
    print!(
        "{}",
        ascii_lines(&[("links", &links), ("false", &false_links)], 70, 10)
    );
    let last = report.epochs.last().unwrap();
    let last_added = last.added_links.expect("eval_every = 1");
    let last_dropped = last.dropped_links.expect("eval_every = 1");
    println!(
        "final: |Omega| = {} ({:.0}%), added true/false = {}/{}, dropped true/false = {}/{}",
        last.omega_size,
        100.0 * last.omega_size as f64 / graph.num_nodes() as f64,
        last_added.0,
        last_added.1,
        last_dropped.0,
        last_dropped.1
    );
    println!("Final metrics: {}", report.final_metrics);
    println!("Series: {}", opts.out_dir.join("fig9.csv").display());
}

//! Table 7: protection vs correction against Feature Drift.
//!
//! Protection = a single-step transform `Υ(A, P, 𝒱)` before the clustering
//! phase (eliminating reconstruction's general-purpose signal at once).
//! Correction = the paper's gradual rewrite. Finding: correction wins.

use rgae_core::{FdMode, RTrainer};
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_viz::CsvWriter;
use rgae_xp::{
    bin_name, emit_run_start, pct, print_table, rconfig_for_opts, DatasetKind, HarnessOpts,
    ModelKind,
};

fn main() {
    let opts = HarnessOpts::from_args();
    let trace = opts.recorder();
    let rec = trace.as_ref();
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(opts.dataset_scale(), opts.seed);
    let data = TrainData::from_graph(&graph);

    let mut rows = Vec::new();
    let mut csv = CsvWriter::create(
        opts.out_dir.join("table7.csv"),
        &["model", "mode", "acc", "nmi", "ari"],
    )
    .expect("csv");

    for model in ModelKind::second_group() {
        let base_cfg = rconfig_for_opts(model, dataset, &opts);
        let mut rng = Rng64::seed_from_u64(opts.seed);
        let trainer = RTrainer::with_recorder(base_cfg.clone(), rec);
        let mut pretrained = model.build(data.num_features(), graph.num_classes(), &mut rng);
        trainer
            .pretrain(pretrained.as_mut(), &data, &mut rng)
            .unwrap();

        let mut row = vec![format!("R-{}", model.name())];
        for (mode, label) in [
            (FdMode::SingleStepProtection, "protection"),
            (FdMode::GradualCorrection, "correction"),
        ] {
            let mut cfg = base_cfg.clone();
            cfg.fd_mode = mode;
            let mut variant = pretrained.clone_box();
            let mut rng_v = Rng64::seed_from_u64(opts.seed ^ 0xF0);
            emit_run_start(
                rec,
                &bin_name(),
                model.name(),
                dataset.name(),
                &format!("r-{label}"),
                opts.seed,
                &cfg,
            );
            let report = RTrainer::with_recorder(cfg, rec)
                .train_clustering_phase(variant.as_mut(), &graph, &data, &mut rng_v)
                .unwrap();
            let m = report.final_metrics;
            eprintln!("  {} {label}: {m}", model.name());
            csv.row_strs(&[
                model.name().into(),
                label.into(),
                format!("{:.4}", m.acc),
                format!("{:.4}", m.nmi),
                format!("{:.4}", m.ari),
            ])
            .expect("csv row");
            row.push(format!("{}/{}/{}", pct(m.acc), pct(m.nmi), pct(m.ari)));
        }
        rows.push(row);
    }
    csv.finish().expect("csv flush");
    print_table(
        "Table 7: protection vs correction against FD (cora-like)",
        &["method", "protection ACC/NMI/ARI", "correction ACC/NMI/ARI"],
        &rows,
    );
}

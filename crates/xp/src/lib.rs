//! Shared harness utilities for the experiment binaries (`src/bin/*`):
//! CLI options, the model/dataset registries, per-model hyper-parameters
//! (Appendix C), trial runners, and table formatting.

use std::path::PathBuf;
use std::rc::Rc;

use rgae_core::{
    train_plain_ckpt, CheckpointOpts, GuardConfig, Metrics, PlainReport, RConfig, RReport,
    RTrainer, XiConfig,
};
use rgae_graph::AttributedGraph;
use rgae_linalg::Rng64;
use rgae_models::{Argae, Arvgae, Dgae, Gae, GaeModel, GmmVgae, TrainData, Vgae};
use rgae_obs::{timestamp_ms, Event, JsonlSink, NoopRecorder, Recorder, RunManifest};

/// Options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Shrink datasets and epoch counts for a fast smoke run.
    pub quick: bool,
    /// Node-count scale applied to every dataset preset.
    pub scale: f64,
    /// Base seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Number of trials for mean/std tables.
    pub trials: usize,
    /// Output directory for CSV artefacts.
    pub out_dir: PathBuf,
    /// Restrict multi-dataset binaries to one dataset (preset name).
    pub only_dataset: Option<String>,
    /// JSONL run-log path (`--trace-out`); `None` disables tracing.
    pub trace_out: Option<PathBuf>,
    /// Root directory for crash-safe checkpoints (`--checkpoint-dir`); each
    /// run gets its own sub-directory. `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint save period in epochs (`--checkpoint-every`).
    pub checkpoint_every: usize,
    /// Resume runs from their newest readable checkpoint (`--resume`).
    pub resume: bool,
    /// Enable the numerical-health guard layer (`--guard`). Also switched
    /// on automatically when `RGAE_FAULT` schedules fault injections.
    pub guard: bool,
    /// Guard recovery budget: rollback+retry attempts per training phase
    /// (`--max-retries N`).
    pub max_retries: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            quick: false,
            scale: 0.35,
            seed: 42,
            trials: 3,
            out_dir: PathBuf::from("results"),
            only_dataset: None,
            trace_out: None,
            checkpoint_dir: None,
            checkpoint_every: 25,
            resume: false,
            guard: false,
            max_retries: 2,
        }
    }
}

impl HarnessOpts {
    /// Parse `--quick`, `--scale S`, `--seed N`, `--trials N`, `--out DIR`,
    /// `--dataset NAME`, `--trace-out PATH`, `--checkpoint-dir DIR`,
    /// `--checkpoint-every N`, `--resume`, `--guard`, `--max-retries N`
    /// from the process arguments. A non-empty `RGAE_FAULT` environment
    /// variable implies `--guard` (injected faults need the recovery layer).
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let value = |args: &[String], i: usize, flag: &str| -> String {
            args.get(i)
                .unwrap_or_else(|| panic!("`{flag}` requires a value"))
                .clone()
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.quick = true,
                "--full" => opts.scale = 1.0,
                "--scale" => {
                    i += 1;
                    opts.scale = value(&args, i, "--scale")
                        .parse()
                        .expect("--scale takes a float");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = value(&args, i, "--seed")
                        .parse()
                        .expect("--seed takes an integer");
                }
                "--trials" => {
                    i += 1;
                    opts.trials = value(&args, i, "--trials")
                        .parse()
                        .expect("--trials takes an integer");
                }
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(value(&args, i, "--out"));
                }
                "--dataset" => {
                    i += 1;
                    opts.only_dataset = Some(value(&args, i, "--dataset"));
                }
                "--trace-out" => {
                    i += 1;
                    opts.trace_out = Some(PathBuf::from(value(&args, i, "--trace-out")));
                }
                "--checkpoint-dir" => {
                    i += 1;
                    opts.checkpoint_dir = Some(PathBuf::from(value(&args, i, "--checkpoint-dir")));
                }
                "--checkpoint-every" => {
                    i += 1;
                    opts.checkpoint_every = value(&args, i, "--checkpoint-every")
                        .parse()
                        .expect("--checkpoint-every takes an integer");
                }
                "--resume" => opts.resume = true,
                "--guard" => opts.guard = true,
                "--max-retries" => {
                    i += 1;
                    opts.max_retries = value(&args, i, "--max-retries")
                        .parse()
                        .expect("--max-retries takes an integer");
                }
                other => panic!(
                    "unknown option `{other}` (known: --quick --full --scale --seed --trials --out --dataset --trace-out --checkpoint-dir --checkpoint-every --resume --guard --max-retries)"
                ),
            }
            i += 1;
        }
        if std::env::var("RGAE_FAULT").is_ok_and(|v| !v.trim().is_empty()) {
            opts.guard = true;
        }
        if opts.quick {
            opts.scale = opts.scale.min(0.2);
            opts.trials = opts.trials.min(2);
        }
        opts
    }

    /// The guard configuration selected by `--guard` / `--max-retries`,
    /// with the `RGAE_FAULT` injection schedule folded in. `None` when the
    /// guard layer is off.
    pub fn guard_config(&self) -> Option<GuardConfig> {
        if !self.guard {
            return None;
        }
        let mut g = GuardConfig::from_env();
        g.max_retries = self.max_retries;
        Some(g)
    }

    /// Effective dataset scale.
    pub fn dataset_scale(&self) -> f64 {
        self.scale
    }

    /// Whether this dataset should run under the `--dataset` filter.
    pub fn wants(&self, dataset: DatasetKind) -> bool {
        self.only_dataset
            .as_deref()
            .is_none_or(|d| d == dataset.name())
    }

    /// Checkpoint options for one run, when `--checkpoint-dir` was given:
    /// its own sub-directory keyed by the run identity, with the harness's
    /// save period and resume flag applied.
    pub fn ckpt_for(
        &self,
        binary: &str,
        dataset: &str,
        model: &str,
        variant: &str,
        seed: u64,
    ) -> Option<CheckpointOpts> {
        let root = self.checkpoint_dir.as_ref()?;
        let dir = root.join(format!("{binary}-{dataset}-{model}-{variant}-{seed}"));
        Some(
            CheckpointOpts::new(dir)
                .every(self.checkpoint_every)
                .resume(self.resume),
        )
    }

    /// The run-log recorder selected by `--trace-out`: a [`JsonlSink`] when
    /// a path was given, the no-op recorder otherwise. Call once per binary
    /// and pass `&*recorder` down to the runs.
    pub fn recorder(&self) -> Box<dyn Recorder> {
        match &self.trace_out {
            Some(path) => Box::new(
                JsonlSink::create(path)
                    .unwrap_or_else(|e| panic!("cannot create trace log {path:?}: {e}")),
            ),
            None => Box::new(NoopRecorder),
        }
    }
}

/// The executable's name (for run manifests), from `argv[0]`.
pub fn bin_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .and_then(|p| {
            std::path::Path::new(p)
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_owned)
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Emit the [`RunManifest`] that opens one training run in the run log.
/// No-op when tracing is off; the closing summary comes from the trainer.
#[allow(clippy::too_many_arguments)]
pub fn emit_run_start(
    rec: &dyn Recorder,
    binary: &str,
    model: &str,
    dataset: &str,
    variant: &str,
    seed: u64,
    cfg: &RConfig,
) {
    if !rec.enabled() {
        return;
    }
    rec.record(&Event::RunStart(RunManifest {
        run_id: format!(
            "{binary}-{dataset}-{model}-{variant}-{seed}-{}",
            timestamp_ms()
        ),
        binary: binary.to_owned(),
        dataset: dataset.to_owned(),
        model: model.to_owned(),
        variant: variant.to_owned(),
        seed,
        workspace_version: env!("CARGO_PKG_VERSION").to_owned(),
        config: cfg.to_json(),
    }));
}

/// The six models of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Graph auto-encoder (first group).
    Gae,
    /// Variational GAE (first group).
    Vgae,
    /// Adversarially regularised GAE (first group).
    Argae,
    /// Adversarially regularised VGAE (first group).
    Arvgae,
    /// Discriminative GAE (second group, Appendix B).
    Dgae,
    /// GMM-VGAE (second group).
    GmmVgae,
}

impl ModelKind {
    /// All six models, first group first (Table 1 ordering).
    pub fn all() -> [ModelKind; 6] {
        [
            ModelKind::Gae,
            ModelKind::Vgae,
            ModelKind::Argae,
            ModelKind::Arvgae,
            ModelKind::Dgae,
            ModelKind::GmmVgae,
        ]
    }

    /// The joint-clustering (second-group) models.
    pub fn second_group() -> [ModelKind; 2] {
        [ModelKind::GmmVgae, ModelKind::Dgae]
    }

    /// Paper name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gae => "GAE",
            ModelKind::Vgae => "VGAE",
            ModelKind::Argae => "ARGAE",
            ModelKind::Arvgae => "ARVGAE",
            ModelKind::Dgae => "DGAE",
            ModelKind::GmmVgae => "GMM-VGAE",
        }
    }

    /// Whether this model performs joint clustering.
    pub fn is_second_group(&self) -> bool {
        matches!(self, ModelKind::Dgae | ModelKind::GmmVgae)
    }

    /// Instantiate the model for a dataset.
    pub fn build(&self, num_features: usize, k: usize, rng: &mut Rng64) -> Box<dyn GaeModel> {
        match self {
            ModelKind::Gae => Box::new(Gae::new(num_features, rng)),
            ModelKind::Vgae => Box::new(Vgae::new(num_features, rng)),
            ModelKind::Argae => Box::new(Argae::new(num_features, rng)),
            ModelKind::Arvgae => Box::new(Arvgae::new(num_features, rng)),
            ModelKind::Dgae => Box::new(Dgae::new(num_features, k, rng)),
            ModelKind::GmmVgae => Box::new(GmmVgae::new(num_features, k, rng)),
        }
    }

    /// Instantiate plus an already-cloned twin for shared-pretraining pairs.
    pub fn build_pair(
        &self,
        num_features: usize,
        k: usize,
        rng: &mut Rng64,
    ) -> (Box<dyn GaeModel>, Box<dyn GaeModel>) {
        // Cloning a trait object needs concrete types, so build per kind.
        match self {
            ModelKind::Gae => {
                let m = Gae::new(num_features, rng);
                (Box::new(m.clone()), Box::new(m))
            }
            ModelKind::Vgae => {
                let m = Vgae::new(num_features, rng);
                (Box::new(m.clone()), Box::new(m))
            }
            ModelKind::Argae => {
                let m = Argae::new(num_features, rng);
                (Box::new(m.clone()), Box::new(m))
            }
            ModelKind::Arvgae => {
                let m = Arvgae::new(num_features, rng);
                (Box::new(m.clone()), Box::new(m))
            }
            ModelKind::Dgae => {
                let m = Dgae::new(num_features, k, rng);
                (Box::new(m.clone()), Box::new(m))
            }
            ModelKind::GmmVgae => {
                let m = GmmVgae::new(num_features, k, rng);
                (Box::new(m.clone()), Box::new(m))
            }
        }
    }
}

/// The six benchmark presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Cora-like citation network.
    CoraLike,
    /// Citeseer-like citation network.
    CiteseerLike,
    /// Pubmed-like citation network.
    PubmedLike,
    /// USA air-traffic-like network.
    UsaAir,
    /// Europe air-traffic-like network.
    EuropeAir,
    /// Brazil air-traffic-like network.
    BrazilAir,
}

impl DatasetKind {
    /// The three citation-like datasets (Tables 1–2).
    pub fn citation() -> [DatasetKind; 3] {
        [
            DatasetKind::CoraLike,
            DatasetKind::CiteseerLike,
            DatasetKind::PubmedLike,
        ]
    }

    /// The three air-traffic-like datasets (Tables 3–4).
    pub fn air() -> [DatasetKind; 3] {
        [
            DatasetKind::UsaAir,
            DatasetKind::EuropeAir,
            DatasetKind::BrazilAir,
        ]
    }

    /// Preset name (matches `RConfig::for_dataset`).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::CoraLike => "cora-like",
            DatasetKind::CiteseerLike => "citeseer-like",
            DatasetKind::PubmedLike => "pubmed-like",
            DatasetKind::UsaAir => "usa-air-like",
            DatasetKind::EuropeAir => "europe-air-like",
            DatasetKind::BrazilAir => "brazil-air-like",
        }
    }

    /// Generate the dataset at a scale and seed.
    pub fn build(&self, scale: f64, seed: u64) -> AttributedGraph {
        use rgae_datasets::presets::*;
        let built = match self {
            DatasetKind::CoraLike => cora_like(scale, seed),
            DatasetKind::CiteseerLike => citeseer_like(scale, seed),
            DatasetKind::PubmedLike => pubmed_like(scale, seed),
            DatasetKind::UsaAir => usa_air_like(scale, seed),
            DatasetKind::EuropeAir => europe_air_like(scale, seed),
            DatasetKind::BrazilAir => brazil_air_like(scale, seed),
        };
        built.expect("preset parameters are valid by construction")
    }
}

/// Appendix-C hyper-parameters: per-(model, dataset) Ξ/Υ schedule overrides
/// on top of `RConfig::for_dataset`, plus each model's γ.
pub fn rconfig_for(model: ModelKind, dataset: DatasetKind, quick: bool) -> RConfig {
    let mut cfg = RConfig::for_dataset(dataset.name());
    // Per-model Appendix-C overrides that differ from the dataset default.
    match (model, dataset) {
        (ModelKind::Argae | ModelKind::Arvgae, DatasetKind::CoraLike) => {
            cfg.m1 = 50;
            cfg.m2 = 1;
        }
        (ModelKind::Argae | ModelKind::Arvgae, DatasetKind::CiteseerLike) => {
            cfg.xi = XiConfig::new(0.1);
        }
        (ModelKind::Dgae, DatasetKind::CoraLike) => {
            cfg.m1 = 20;
            cfg.m2 = 15;
        }
        (ModelKind::Dgae, DatasetKind::PubmedLike) => {
            cfg.xi = XiConfig::new(0.3);
        }
        (ModelKind::Dgae, DatasetKind::EuropeAir) => {
            cfg.xi = XiConfig::new(0.08);
            cfg.m1 = 20;
            cfg.m2 = 15;
        }
        (ModelKind::Dgae, DatasetKind::UsaAir) => {
            cfg.xi = XiConfig::new(0.1);
        }
        _ => {}
    }
    // γ: reconstruction weight relative to the clustering loss.
    cfg.gamma = match model {
        ModelKind::Dgae => 0.001,
        _ => 1.0,
    };
    if quick {
        cfg = cfg.quick();
    } else {
        cfg.pretrain_epochs = 150;
        cfg.max_epochs = 150;
    }
    cfg.eval_every = 5;
    cfg
}

/// [`rconfig_for`] plus the harness-level overrides carried by
/// [`HarnessOpts`] — currently the numerical-health guard layer.
pub fn rconfig_for_opts(model: ModelKind, dataset: DatasetKind, opts: &HarnessOpts) -> RConfig {
    let mut cfg = rconfig_for(model, dataset, opts.quick);
    cfg.guard = opts.guard_config();
    cfg
}

/// One trial of the Tables 1–4 protocol: pretrain once, then run the plain
/// clustering phase and the R clustering phase from the *same* pretrained
/// weights.
pub struct PairOutcome {
    /// Plain 𝒟 result.
    pub plain: PlainReport,
    /// R-𝒟 result.
    pub r: RReport,
}

/// Run the 𝒟 / R-𝒟 pair for one model on one graph. Each half of the pair
/// is logged as its own run (variants `plain` and `r`) through `rec`, and
/// checkpoints into its own sub-directory when the harness has
/// `--checkpoint-dir` set.
pub fn run_pair(
    model: ModelKind,
    dataset: DatasetKind,
    graph: &AttributedGraph,
    cfg: &RConfig,
    seed: u64,
    rec: &dyn Recorder,
    opts: &HarnessOpts,
) -> PairOutcome {
    let binary = bin_name();
    let data = TrainData::from_graph(graph);
    let mut rng = Rng64::seed_from_u64(seed);
    let (mut plain_model, mut r_model) =
        model.build_pair(data.num_features(), graph.num_classes(), &mut rng);
    let mut trainer = RTrainer::with_recorder(cfg.clone(), rec);
    if let Some(ckpt) = opts.ckpt_for(&binary, dataset.name(), model.name(), "r", seed) {
        trainer = trainer.with_checkpoints(ckpt);
    }
    // Shared pretraining on the R twin's weights == plain twin's weights
    // (identical init); pretrain each with the same RNG stream for identical
    // trajectories where sampling is involved.
    let mut rng_a = Rng64::seed_from_u64(seed ^ 0x5151);
    let mut rng_b = Rng64::seed_from_u64(seed ^ 0x5151);
    emit_run_start(
        rec,
        &binary,
        model.name(),
        dataset.name(),
        "plain",
        seed,
        cfg,
    );
    let plain_ckpt = opts.ckpt_for(&binary, dataset.name(), model.name(), "plain", seed);
    let plain = train_plain_ckpt(
        plain_model.as_mut(),
        graph,
        cfg,
        &mut rng_a,
        rec,
        plain_ckpt.as_ref(),
    )
    .unwrap();
    emit_run_start(rec, &binary, model.name(), dataset.name(), "r", seed, cfg);
    trainer
        .pretrain(r_model.as_mut(), &data, &mut rng_b)
        .unwrap();
    let r = trainer
        .train_clustering_phase(r_model.as_mut(), graph, &data, &mut rng_b)
        .unwrap();
    PairOutcome { plain, r }
}

/// Mean and (population) standard deviation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Compute [`Stats`] of a slice.
pub fn stats(xs: &[f64]) -> Stats {
    if xs.is_empty() {
        return Stats::default();
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Stats {
        mean,
        std: var.sqrt(),
    }
}

/// Aggregate per-trial metrics.
pub fn metric_stats(ms: &[Metrics]) -> (Stats, Stats, Stats) {
    let acc: Vec<f64> = ms.iter().map(|m| m.acc).collect();
    let nmi: Vec<f64> = ms.iter().map(|m| m.nmi).collect();
    let ari: Vec<f64> = ms.iter().map(|m| m.ari).collect();
    (stats(&acc), stats(&nmi), stats(&ari))
}

/// Best trial (by ACC).
pub fn best_metrics(ms: &[Metrics]) -> Metrics {
    ms.iter()
        .copied()
        .max_by(|a, b| a.acc.partial_cmp(&b.acc).expect("finite"))
        .unwrap_or_default()
}

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("| ");
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:<w$} | ", w = w));
        }
        s
    };
    println!("{}", line(headers.iter().map(|h| h.to_string()).collect()));
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Format a percentage with one decimal (the paper's table style).
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Format `mean ± std` in percent.
pub fn pct_pm(s: Stats) -> String {
    format!("{:.1} ± {:.1}", s.mean * 100.0, s.std * 100.0)
}

/// Convenience: a second-group training loop without Ξ/Υ has the same code
/// path as [`train_plain`]; re-export a thin alias so the binaries read
/// naturally.
pub fn default_data(graph: &AttributedGraph) -> (TrainData, Rc<rgae_linalg::Csr>) {
    let data = TrainData::from_graph(graph);
    let a = Rc::clone(&data.adjacency);
    (data, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let empty = stats(&[]);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn registries_cover_everything() {
        assert_eq!(ModelKind::all().len(), 6);
        assert_eq!(DatasetKind::citation().len(), 3);
        assert_eq!(DatasetKind::air().len(), 3);
        for m in ModelKind::all() {
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn build_pair_produces_identical_twins() {
        let mut rng = Rng64::seed_from_u64(1);
        let g = DatasetKind::BrazilAir.build(0.5, 3);
        let data = TrainData::from_graph(&g);
        let (a, b) = ModelKind::Dgae.build_pair(data.num_features(), g.num_classes(), &mut rng);
        let za = a.embed(&data);
        let zb = b.embed(&data);
        assert!(za.max_abs_diff(&zb) < 1e-12);
    }

    #[test]
    fn rconfig_overrides_apply() {
        let cfg = rconfig_for(ModelKind::Dgae, DatasetKind::CoraLike, false);
        assert_eq!(cfg.m2, 15);
        assert!((cfg.gamma - 0.001).abs() < 1e-12);
        let cfg = rconfig_for(ModelKind::Gae, DatasetKind::CoraLike, false);
        assert!((cfg.gamma - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ckpt_for_builds_per_run_dirs() {
        let mut opts = HarnessOpts::default();
        assert!(opts.ckpt_for("b", "d", "m", "r", 1).is_none());
        opts.checkpoint_dir = Some(PathBuf::from("ckpts"));
        opts.checkpoint_every = 10;
        opts.resume = true;
        let c = opts
            .ckpt_for("table1_2", "cora-like", "DGAE", "r", 7)
            .unwrap();
        assert!(c.dir.ends_with("table1_2-cora-like-DGAE-r-7"));
        assert_eq!(c.every, 10);
        assert!(c.resume);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.767), "76.7");
        let s = Stats {
            mean: 0.55,
            std: 0.049,
        };
        assert_eq!(pct_pm(s), "55.0 ± 4.9");
    }
}

//! Thread-scaling bench for the deterministic parallel compute layer.
//!
//! Times full training epochs (reconstruction + clustering step of the
//! deterministic GAE) on the synthetic citation preset at 1 thread and at
//! `BENCH_PAR_THREADS` (default 4) threads, re-runs a short deterministic
//! training under both settings to prove the results are bit-identical, and
//! writes everything to `BENCH_par.json` at the workspace root.
//!
//! Run with `cargo bench -p rgae-xp --bench bench_par`. The numbers are
//! whatever the hardware gives: on a single-core container the speedup will
//! honestly hover around (or below) 1×, while the equality section must hold
//! everywhere.

use std::rc::Rc;
use std::time::Instant;

use rgae_core::{RConfig, RTrainer};
use rgae_datasets::presets::cora_like;
use rgae_linalg::Rng64;
use rgae_models::{ClusterStep, Dgae, GaeModel, StepSpec, TrainData};
use rgae_obs::Json;

const WARMUP_EPOCHS: usize = 2;
const TIMED_EPOCHS: usize = 8;
const EQUALITY_EPOCHS: usize = 4;

fn prepared() -> (TrainData, Dgae, Rng64) {
    let graph = cora_like(0.2, 1).unwrap();
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(1);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    let trainer = RTrainer::new(RConfig::for_dataset("cora-like").quick());
    trainer.pretrain(&mut model, &data, &mut rng).unwrap();
    (data, model, rng)
}

fn epoch(model: &mut Dgae, data: &TrainData, rng: &mut Rng64) -> f64 {
    let target = model.cluster_target(data).unwrap().unwrap();
    let spec = StepSpec {
        recon_target: Some(Rc::clone(&data.adjacency)),
        gamma: 0.001,
        cluster: Some(ClusterStep {
            target,
            omega: None,
        }),
    };
    model.train_step(data, &spec, rng).unwrap()
}

/// Mean epoch seconds plus the per-kernel time table at a thread count.
fn timed_run(threads: usize) -> (f64, Vec<(&'static str, rgae_par::KernelStat)>) {
    rgae_par::with_threads(threads, || {
        let (data, mut model, mut rng) = prepared();
        for _ in 0..WARMUP_EPOCHS {
            epoch(&mut model, &data, &mut rng);
        }
        let _ = rgae_par::take_kernel_stats();
        let start = Instant::now();
        for _ in 0..TIMED_EPOCHS {
            epoch(&mut model, &data, &mut rng);
        }
        let secs = start.elapsed().as_secs_f64() / TIMED_EPOCHS as f64;
        (secs, rgae_par::take_kernel_stats())
    })
}

/// Loss bit-patterns of a short deterministic training at a thread count.
fn loss_bits(threads: usize) -> Vec<u64> {
    rgae_par::with_threads(threads, || {
        let (data, mut model, mut rng) = prepared();
        (0..EQUALITY_EPOCHS)
            .map(|_| epoch(&mut model, &data, &mut rng).to_bits())
            .collect()
    })
}

fn main() {
    let threads_hi: usize = std::env::var("BENCH_PAR_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    eprintln!("bench_par: timing {TIMED_EPOCHS} epochs at 1 thread…");
    let (serial_secs, serial_kernels) = timed_run(1);
    eprintln!("bench_par: timing {TIMED_EPOCHS} epochs at {threads_hi} threads…");
    let (par_secs, par_kernels) = timed_run(threads_hi);
    let speedup = serial_secs / par_secs;

    eprintln!("bench_par: checking bit-identical losses across thread counts…");
    let reference = loss_bits(1);
    let identical = [2usize, 3, threads_hi]
        .iter()
        .all(|&t| loss_bits(t) == reference);

    let kernel_obj = |stats: &[(&'static str, rgae_par::KernelStat)]| {
        Json::Obj(
            stats
                .iter()
                .map(|(name, s)| {
                    (
                        (*name).to_string(),
                        Json::Obj(vec![
                            ("calls".into(), Json::Int(s.calls as i64)),
                            ("seconds".into(), Json::Num(s.seconds)),
                        ]),
                    )
                })
                .collect(),
        )
    };
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("bench_par".into())),
        ("dataset".into(), Json::Str("cora-like(0.2, seed 1)".into())),
        ("timed_epochs".into(), Json::Int(TIMED_EPOCHS as i64)),
        (
            "available_parallelism".into(),
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get() as i64)
                    .unwrap_or(1),
            ),
        ),
        (
            "serial".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Int(1)),
                ("epoch_seconds".into(), Json::Num(serial_secs)),
                ("kernels".into(), kernel_obj(&serial_kernels)),
            ]),
        ),
        (
            "parallel".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Int(threads_hi as i64)),
                ("epoch_seconds".into(), Json::Num(par_secs)),
                ("kernels".into(), kernel_obj(&par_kernels)),
            ]),
        ),
        ("speedup".into(), Json::Num(speedup)),
        ("bit_identical_losses".into(), Json::Bool(identical)),
    ]);

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par.json");
    std::fs::write(out, format!("{}\n", report.encode())).unwrap();
    println!(
        "bench_par: serial {serial_secs:.4}s/epoch, {threads_hi} threads {par_secs:.4}s/epoch, \
         speedup {speedup:.2}x, bit_identical_losses={identical} -> {out}"
    );
    assert!(identical, "parallel training diverged from serial bits");
}

//! Clustering-stack benches: k-means, GMM-EM, the Hungarian matcher (the
//! per-evaluation cost of the ACC metric), and the metric suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgae_cluster::{accuracy, ari, hungarian, kmeans, nmi, GaussianMixture};
use rgae_linalg::{Mat, Rng64};

fn blobs(n_per: usize, k: usize, rng: &mut Rng64) -> (Mat, Vec<usize>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..k {
        for _ in 0..n_per {
            let mut p = vec![0.0; 16];
            p[c % 16] = 8.0;
            for v in p.iter_mut() {
                *v += rng.normal();
            }
            rows.push(p);
            labels.push(c);
        }
    }
    (Mat::from_rows(&rows).unwrap(), labels)
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(20);
    for n_per in [50usize, 150] {
        let mut rng = Rng64::seed_from_u64(1);
        let (x, _) = blobs(n_per, 7, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n_per * 7), &n_per, |b, _| {
            b.iter(|| {
                let mut r = Rng64::seed_from_u64(2);
                kmeans(std::hint::black_box(&x), 7, 50, &mut r)
                    .unwrap()
                    .inertia
            })
        });
    }
    group.finish();
}

fn bench_gmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm_em");
    group.sample_size(15);
    let mut rng = Rng64::seed_from_u64(3);
    let (x, _) = blobs(100, 5, &mut rng);
    group.bench_function("fit_500x16_k5", |b| {
        b.iter(|| {
            let mut r = Rng64::seed_from_u64(4);
            GaussianMixture::fit(std::hint::black_box(&x), 5, 30, &mut r)
                .unwrap()
                .avg_log_likelihood
        })
    });
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group.sample_size(40);
    let mut rng = Rng64::seed_from_u64(5);
    for n in [8usize, 32, 128] {
        let cost = rgae_linalg::uniform(n, n, 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| hungarian(std::hint::black_box(&cost)))
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(40);
    let mut rng = Rng64::seed_from_u64(6);
    let n = 2000;
    let truth: Vec<usize> = (0..n).map(|_| rng.index(7)).collect();
    let pred: Vec<usize> = truth
        .iter()
        .map(|&t| if rng.bernoulli(0.8) { t } else { rng.index(7) })
        .collect();
    group.bench_function("acc_nmi_ari_2000", |b| {
        b.iter(|| {
            let a = accuracy(std::hint::black_box(&pred), &truth);
            let m = nmi(&pred, &truth);
            let r = ari(&pred, &truth);
            a + m + r
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kmeans,
    bench_gmm,
    bench_hungarian,
    bench_metrics
);
criterion_main!(benches);

//! Fused-vs-legacy decoder bench: times the tiled one-pass gram+BCE kernel
//! against the legacy three-pass chain (`mat_gram` → `bce_sparse_fwd` →
//! `bce_sparse_bwd` → gram-backward `mat_matmul`) on the cora-like preset,
//! verifies the two paths produce bit-identical losses and gradients, and
//! writes `BENCH_decoder.json` at the workspace root (kernel seconds plus
//! estimated peak decoder bytes for each path).
//!
//! Run with `cargo bench -p rgae-xp --bench bench_decoder`. Knobs:
//! `BENCH_DECODER_SCALE` (cora-like size multiplier, default 1.0) and
//! `RGAE_DECODER_TILE` (fused row-tile height).

use std::rc::Rc;
use std::time::Instant;

use rgae_autodiff::Graph;
use rgae_datasets::presets::cora_like;
use rgae_linalg::{Csr, Mat, Rng64};
use rgae_models::TrainData;
use rgae_obs::Json;

const WARMUP_ROUNDS: usize = 2;
const TIMED_ROUNDS: usize = 10;
const LATENT_DIM: usize = 16;

/// The kernels the legacy path spends its decoder time in. `Mat::add` and
/// `Mat::transpose` in the gram backward are untimed, so the legacy total
/// is a slight *underestimate* — the honest direction for a speedup claim.
const LEGACY_KERNELS: [&str; 4] = ["mat_gram", "bce_sparse_fwd", "bce_sparse_bwd", "mat_matmul"];

fn legacy_round(z: &Mat, t: &Rc<Csr>, pw: f64, norm: f64) -> (u64, Vec<u64>) {
    let mut g = Graph::new();
    let zv = g.leaf(z.clone());
    let s = g.gram(zv);
    let loss = g.bce_logits_sparse(s, t, pw, norm).unwrap();
    g.backward(loss).unwrap();
    (
        g.scalar(loss).to_bits(),
        g.grad(zv)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

fn fused_round(z: &Mat, t: &Rc<Csr>, pw: f64, norm: f64) -> (u64, Vec<u64>) {
    let mut g = Graph::new();
    let zv = g.leaf(z.clone());
    let loss = g.gram_bce_logits_sparse(zv, t, pw, norm).unwrap();
    g.backward(loss).unwrap();
    (
        g.scalar(loss).to_bits(),
        g.grad(zv)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

/// Run `round` TIMED_ROUNDS times; return (wall seconds/round, kernel table).
fn timed(round: impl Fn() -> (u64, Vec<u64>)) -> (f64, Vec<(&'static str, rgae_par::KernelStat)>) {
    for _ in 0..WARMUP_ROUNDS {
        round();
    }
    let _ = rgae_par::take_kernel_stats();
    let start = Instant::now();
    for _ in 0..TIMED_ROUNDS {
        round();
    }
    let secs = start.elapsed().as_secs_f64() / TIMED_ROUNDS as f64;
    (secs, rgae_par::take_kernel_stats())
}

fn kernel_seconds(stats: &[(&'static str, rgae_par::KernelStat)], names: &[&str]) -> f64 {
    stats
        .iter()
        .filter(|(n, _)| names.contains(n))
        .map(|(_, s)| s.seconds)
        .sum::<f64>()
        / TIMED_ROUNDS as f64
}

fn main() {
    let scale: f64 = std::env::var("BENCH_DECODER_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let graph = cora_like(scale, 1).unwrap();
    let data = TrainData::from_graph(&graph);
    let n = data.num_nodes;
    let mut rng = Rng64::seed_from_u64(7);
    let z = rgae_linalg::standard_normal(n, LATENT_DIM, &mut rng);
    let t = Rc::clone(&data.adjacency);
    let (pw, norm) = (data.pos_weight, data.norm);

    eprintln!("bench_decoder: N={n}, d={LATENT_DIM}, {TIMED_ROUNDS} rounds per path…");
    let (legacy_wall, legacy_stats) = timed(|| legacy_round(&z, &t, pw, norm));
    let (fused_wall, fused_stats) = timed(|| fused_round(&z, &t, pw, norm));

    let legacy_secs = kernel_seconds(&legacy_stats, &LEGACY_KERNELS);
    let fused_secs = kernel_seconds(&fused_stats, &["fused_gram_bce_fwd_bwd"]);
    let speedup = legacy_secs / fused_secs;

    // Peak transient decoder memory: the legacy backward holds the logits,
    // the BCE gradient, and its transpose as live N×N buffers; the fused
    // kernel holds one B×N panel plus the N×d gradient accumulator.
    let legacy_bytes = 3 * n * n * 8;
    let fused_bytes = rgae_linalg::fused_panel_bytes(n) + n * LATENT_DIM * 8;

    let (loss_l, grad_l) = legacy_round(&z, &t, pw, norm);
    let (loss_f, grad_f) = fused_round(&z, &t, pw, norm);
    let identical = loss_l == loss_f && grad_l == grad_f;

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("bench_decoder".into())),
        (
            "dataset".into(),
            Json::Str(format!("cora-like({scale}, seed 1)")),
        ),
        ("num_nodes".into(), Json::Int(n as i64)),
        ("latent_dim".into(), Json::Int(LATENT_DIM as i64)),
        ("timed_rounds".into(), Json::Int(TIMED_ROUNDS as i64)),
        (
            "decoder_tile".into(),
            Json::Int(rgae_linalg::decoder_tile() as i64),
        ),
        (
            "legacy".into(),
            Json::Obj(vec![
                ("wall_seconds_per_round".into(), Json::Num(legacy_wall)),
                ("kernel_seconds_per_round".into(), Json::Num(legacy_secs)),
                ("peak_decoder_bytes".into(), Json::Int(legacy_bytes as i64)),
            ]),
        ),
        (
            "fused".into(),
            Json::Obj(vec![
                ("wall_seconds_per_round".into(), Json::Num(fused_wall)),
                ("kernel_seconds_per_round".into(), Json::Num(fused_secs)),
                ("peak_decoder_bytes".into(), Json::Int(fused_bytes as i64)),
            ]),
        ),
        ("kernel_speedup".into(), Json::Num(speedup)),
        ("wall_speedup".into(), Json::Num(legacy_wall / fused_wall)),
        (
            "memory_ratio".into(),
            Json::Num(legacy_bytes as f64 / fused_bytes as f64),
        ),
        ("bit_identical".into(), Json::Bool(identical)),
    ]);

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decoder.json");
    std::fs::write(out, format!("{}\n", report.encode())).unwrap();
    println!(
        "bench_decoder: legacy {legacy_secs:.4}s fused {fused_secs:.4}s per round \
         (kernel seconds), speedup {speedup:.2}x, memory {legacy_bytes} -> {fused_bytes} bytes, \
         bit_identical={identical} -> {out}"
    );
    assert!(identical, "fused decoder diverged from the legacy path");
}

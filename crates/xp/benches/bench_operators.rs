//! Operator cost benches: Ξ is O(N·K) given soft assignments (O(N·K²·d)
//! with the Eq. 15 kernel) and Υ is O(N(d+K) + |E|(N+K)) worst-case — both
//! negligible next to the O(N²) decoder loss. Sweeping N shows the
//! near-linear growth that backs Table 5's "no significant overhead" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgae_cluster::gaussian_soft_assignments;
use rgae_core::{upsilon, xi, UpsilonConfig, XiConfig};
use rgae_datasets::{citation_like, CitationSpec};
use rgae_linalg::Rng64;

fn spec(n: usize) -> CitationSpec {
    CitationSpec {
        name: format!("bench-{n}"),
        num_nodes: n,
        num_classes: 5,
        num_features: 64,
        avg_degree: 4.0,
        homophily: 0.8,
        degree_power: 2.6,
        words_per_node: 10,
        topic_purity: 0.8,
        class_proportions: vec![],
    }
}

fn bench_xi(c: &mut Criterion) {
    let mut group = c.benchmark_group("xi");
    group.sample_size(30);
    for n in [200usize, 400, 800] {
        let graph = citation_like(&spec(n), 1).unwrap();
        let mut rng = Rng64::seed_from_u64(2);
        // Fake embeddings + hard clusters to build the Eq. 15 kernel.
        let z = rgae_linalg::standard_normal(n, 16, &mut rng);
        let hard: Vec<usize> = (0..n).map(|i| i % 5).collect();
        let p = gaussian_soft_assignments(&z, &hard, 5).unwrap();
        let cfg = XiConfig::new(0.3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| xi(std::hint::black_box(&p), &cfg).unwrap())
        });
        let _ = graph;
    }
    group.finish();
}

fn bench_xi_with_kernel(c: &mut Criterion) {
    // Ξ including the O(N·K²·d) Eq. 15 soft-assignment construction — the
    // complexity the paper quotes for Algorithm 1.
    let mut group = c.benchmark_group("xi_with_eq15_kernel");
    group.sample_size(20);
    for n in [200usize, 400, 800] {
        let mut rng = Rng64::seed_from_u64(3);
        let z = rgae_linalg::standard_normal(n, 16, &mut rng);
        let hard: Vec<usize> = (0..n).map(|i| i % 5).collect();
        let cfg = XiConfig::new(0.3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let p = gaussian_soft_assignments(
                    std::hint::black_box(&z),
                    std::hint::black_box(&hard),
                    5,
                )
                .unwrap();
                xi(&p, &cfg).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_upsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("upsilon");
    group.sample_size(20);
    for n in [200usize, 400, 800] {
        let graph = citation_like(&spec(n), 4).unwrap();
        let mut rng = Rng64::seed_from_u64(5);
        let z = rgae_linalg::standard_normal(n, 16, &mut rng);
        let hard: Vec<usize> = (0..n).map(|i| i % 5).collect();
        let p = gaussian_soft_assignments(&z, &hard, 5).unwrap();
        let omega: Vec<usize> = (0..n).filter(|i| i % 3 != 0).collect();
        let cfg = UpsilonConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                upsilon(
                    std::hint::black_box(graph.adjacency()),
                    &p,
                    &z,
                    &omega,
                    &cfg,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xi, bench_xi_with_kernel, bench_upsilon);
criterion_main!(benches);

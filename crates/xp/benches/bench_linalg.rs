//! Kernel benches: the dense/sparse primitives every training step is made
//! of — gemm, sparse×dense, the Gram decoder, and the fused weighted BCE.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgae_autodiff::Graph;
use rgae_linalg::{Csr, Rng64};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(30);
    let mut rng = Rng64::seed_from_u64(1);
    for n in [128usize, 256, 512] {
        let a = rgae_linalg::standard_normal(n, n, &mut rng);
        let b = rgae_linalg::standard_normal(n, 64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                std::hint::black_box(&a)
                    .matmul(std::hint::black_box(&b))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(30);
    let mut rng = Rng64::seed_from_u64(2);
    for n in [500usize, 1000, 2000] {
        let mut edges = Vec::new();
        for _ in 0..4 * n {
            edges.push((rng.index(n), rng.index(n)));
        }
        let a = Csr::adjacency_from_edges(n, &edges)
            .unwrap()
            .gcn_normalized()
            .unwrap();
        let x = rgae_linalg::standard_normal(n, 64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                std::hint::black_box(&a)
                    .spmm(std::hint::black_box(&x))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_gram_decoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_decoder");
    group.sample_size(20);
    let mut rng = Rng64::seed_from_u64(3);
    for n in [250usize, 500, 1000] {
        let z = rgae_linalg::standard_normal(n, 16, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(&z).gram())
        });
    }
    group.finish();
}

fn bench_bce_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("bce_forward_backward");
    group.sample_size(20);
    let mut rng = Rng64::seed_from_u64(4);
    for n in [250usize, 500] {
        let z = rgae_linalg::standard_normal(n, 16, &mut rng);
        let mut edges = Vec::new();
        for _ in 0..4 * n {
            edges.push((rng.index(n), rng.index(n)));
        }
        let t = Rc::new(Csr::adjacency_from_edges(n, &edges).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let zv = g.leaf(z.clone());
                let s = g.gram(zv);
                let loss = g.bce_logits_sparse(s, &t, 10.0, 0.5).unwrap();
                g.backward(loss).unwrap();
                g.grad(zv).unwrap().frob_norm()
            })
        });
    }
    group.finish();
}

fn bench_fused_decoder(c: &mut Criterion) {
    // Fused tiled gram+BCE (loss + dZ in one pass, O(B·N) memory) against
    // the legacy three-pass chain benched above.
    let mut group = c.benchmark_group("fused_gram_bce");
    group.sample_size(20);
    let mut rng = Rng64::seed_from_u64(4);
    for n in [250usize, 500] {
        let z = rgae_linalg::standard_normal(n, 16, &mut rng);
        let mut edges = Vec::new();
        for _ in 0..4 * n {
            edges.push((rng.index(n), rng.index(n)));
        }
        let t = Rc::new(Csr::adjacency_from_edges(n, &edges).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let zv = g.leaf(z.clone());
                let loss = g.gram_bce_logits_sparse(zv, &t, 10.0, 0.5).unwrap();
                g.backward(loss).unwrap();
                g.grad(zv).unwrap().frob_norm()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_spmm,
    bench_gram_decoder,
    bench_bce_forward_backward,
    bench_fused_decoder
);
criterion_main!(benches);

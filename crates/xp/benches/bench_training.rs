//! Training-step benches (the shape behind Table 5): one optimisation step
//! of each model with and without the R machinery. The decoder's O(N²)
//! weighted BCE dominates; the Ξ/Υ refreshes add only a small constant.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use rgae_core::soft_assignments_or_kmeans;
use rgae_core::{upsilon, xi, RConfig, RTrainer, UpsilonConfig, XiConfig};
use rgae_datasets::presets::cora_like;
use rgae_linalg::Rng64;
use rgae_models::{ClusterStep, Dgae, GaeModel, GmmVgae, StepSpec, TrainData};

fn prepared_dgae() -> (rgae_graph::AttributedGraph, TrainData, Dgae, Rng64) {
    let graph = cora_like(0.2, 1).unwrap();
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(1);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    let trainer = RTrainer::new(RConfig::for_dataset("cora-like").quick());
    trainer.pretrain(&mut model, &data, &mut rng).unwrap();
    (graph, data, model, rng)
}

fn bench_plain_step(c: &mut Criterion) {
    let (_graph, data, mut model, mut rng) = prepared_dgae();
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);
    group.bench_function("dgae_plain_epoch", |b| {
        b.iter(|| {
            let target = model.cluster_target(&data).unwrap().unwrap();
            let spec = StepSpec {
                recon_target: Some(Rc::clone(&data.adjacency)),
                gamma: 0.001,
                cluster: Some(ClusterStep {
                    target,
                    omega: None,
                }),
            };
            model.train_step(&data, &spec, &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_r_step(c: &mut Criterion) {
    let (graph, data, mut model, mut rng) = prepared_dgae();
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);
    group.bench_function("dgae_r_epoch_with_operator_refresh", |b| {
        b.iter(|| {
            // Worst case: both operators refresh on this epoch.
            let p = soft_assignments_or_kmeans(&model, &data, &mut rng).unwrap();
            let omega = xi(&p, &XiConfig::new(0.3)).unwrap();
            let z = model.embed(&data);
            let out = upsilon(
                graph.adjacency(),
                &p,
                &z,
                &omega.indices,
                &UpsilonConfig::default(),
            )
            .unwrap();
            let target = model.cluster_target(&data).unwrap().unwrap();
            let spec = StepSpec {
                recon_target: Some(Rc::new(out.graph)),
                gamma: 0.001,
                cluster: Some(ClusterStep {
                    target,
                    omega: Some(omega.indices.clone()),
                }),
            };
            model.train_step(&data, &spec, &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_gmm_vgae_step(c: &mut Criterion) {
    let graph = cora_like(0.2, 2).unwrap();
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(2);
    let mut model = GmmVgae::new(data.num_features(), graph.num_classes(), &mut rng);
    let trainer = RTrainer::new(RConfig::for_dataset("cora-like").quick());
    trainer.pretrain(&mut model, &data, &mut rng).unwrap();
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);
    group.bench_function("gmm_vgae_plain_epoch", |b| {
        b.iter(|| {
            let target = model.cluster_target(&data).unwrap().unwrap();
            let spec = StepSpec {
                recon_target: Some(Rc::clone(&data.adjacency)),
                gamma: 0.1,
                cluster: Some(ClusterStep {
                    target,
                    omega: None,
                }),
            };
            model.train_step(&data, &spec, &mut rng).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plain_step, bench_r_step, bench_gmm_vgae_step);
criterion_main!(benches);

//! Graph statistics used in the figures (Fig. 4 and Fig. 9d–f) and in the
//! synthetic-dataset calibration tests.

use rgae_linalg::Csr;

/// Summary statistics of a (possibly edited) self-supervision graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Edges whose endpoints share a label ("true links" in Fig. 9).
    pub true_links: usize,
    /// Edges whose endpoints have different labels ("false links").
    pub false_links: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated nodes.
    pub isolated: usize,
}

impl GraphStats {
    /// Compute statistics of a binary symmetric adjacency against labels.
    pub fn compute(adjacency: &Csr, labels: &[usize]) -> Self {
        assert_eq!(adjacency.rows(), labels.len());
        let mut true_links = 0;
        let mut false_links = 0;
        let mut max_degree = 0;
        let mut isolated = 0;
        let mut total_degree = 0usize;
        for i in 0..adjacency.rows() {
            let deg = adjacency.row_indices(i).len();
            total_degree += deg;
            max_degree = max_degree.max(deg);
            if deg == 0 {
                isolated += 1;
            }
            for (j, _) in adjacency.row_iter(i) {
                if i < j {
                    if labels[i] == labels[j] {
                        true_links += 1;
                    } else {
                        false_links += 1;
                    }
                }
            }
        }
        let n = adjacency.rows().max(1);
        GraphStats {
            num_edges: true_links + false_links,
            true_links,
            false_links,
            mean_degree: total_degree as f64 / n as f64,
            max_degree,
            isolated,
        }
    }
}

/// Edge homophily: fraction of edges whose endpoints share a label.
pub fn edge_homophily(adjacency: &Csr, labels: &[usize]) -> f64 {
    let s = GraphStats::compute(adjacency, labels);
    if s.num_edges == 0 {
        0.0
    } else {
        s.true_links as f64 / s.num_edges as f64
    }
}

/// `(intra, inter)` undirected edge counts with respect to labels.
pub fn intra_inter_edges(adjacency: &Csr, labels: &[usize]) -> (usize, usize) {
    let s = GraphStats::compute(adjacency, labels);
    (s.true_links, s.false_links)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_two_triangles_with_bridge() {
        // Triangle {0,1,2} labelled 0, triangle {3,4,5} labelled 1, bridge
        // 2-3.
        let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        let a = Csr::adjacency_from_edges(6, &edges).unwrap();
        let labels = [0, 0, 0, 1, 1, 1];
        let s = GraphStats::compute(&a, &labels);
        assert_eq!(s.num_edges, 7);
        assert_eq!(s.true_links, 6);
        assert_eq!(s.false_links, 1);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.isolated, 0);
        assert!((edge_homophily(&a, &labels) - 6.0 / 7.0).abs() < 1e-12);
        assert_eq!(intra_inter_edges(&a, &labels), (6, 1));
    }

    #[test]
    fn isolated_nodes_counted() {
        let a = Csr::adjacency_from_edges(4, &[(0, 1)]).unwrap();
        let s = GraphStats::compute(&a, &[0, 0, 1, 1]);
        assert_eq!(s.isolated, 2);
        assert_eq!(s.num_edges, 1);
    }

    #[test]
    fn empty_graph_homophily_zero() {
        let a = Csr::adjacency_from_edges(3, &[]).unwrap();
        assert_eq!(edge_homophily(&a, &[0, 1, 2]), 0.0);
    }
}

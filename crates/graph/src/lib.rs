//! Attributed graphs: representation, GCN normalisation, structural edits,
//! and the §3 reference graphs (clustering graph A^clus, supervision graph
//! A^sup) of the reproduced paper.

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

mod attributed;
mod edits;
mod multiplex;
mod reference;
mod stats;

pub use attributed::AttributedGraph;
pub use edits::{apply_edits, EditSet};
pub use multiplex::MultiplexGraph;
pub use reference::{clustering_graph, membership_graph, supervision_graph};
pub use stats::{edge_homophily, intra_inter_edges, GraphStats};

/// Errors produced while constructing or editing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Underlying linear-algebra error.
    Linalg(rgae_linalg::Error),
    /// Construction invariant violated.
    Invalid(&'static str),
}

impl From<rgae_linalg::Error> for Error {
    fn from(e: rgae_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linalg error: {e}"),
            Error::Invalid(m) => write!(f, "invalid graph: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

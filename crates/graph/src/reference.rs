//! The reference graphs of the paper's §3.
//!
//! * the **clustering graph** `A^clus` — `a_ij = 1/|C_k|` when `i, j` share
//!   predicted cluster `k`, else 0;
//! * the **supervision graph** `A^sup` — same but over ground-truth clusters.
//!
//! Both are normalised by definition (Proposition 2's derivation divides by
//! the cluster cardinality). They are dense in principle but block-diagonal
//! up to permutation, so we materialise them as CSR.

use rgae_linalg::Csr;

/// `A^clus` (or `A^sup`) from an assignment vector: `a_ij = 1/|C_k|` iff
/// `assign[i] == assign[j] == k`. Includes the diagonal, matching the
/// derivation of Proposition 2 where the sum runs over all pairs in the
/// cluster.
pub fn membership_graph(assign: &[usize], num_clusters: usize) -> Csr {
    let n = assign.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
    for (i, &k) in assign.iter().enumerate() {
        members[k].push(i);
    }
    let mut triplets = Vec::new();
    for cluster in &members {
        if cluster.is_empty() {
            continue;
        }
        let w = 1.0 / cluster.len() as f64;
        for &i in cluster {
            for &j in cluster {
                triplets.push((i, j, w));
            }
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("indices in range by construction")
}

/// The clustering graph `A^clus` built from *predicted* assignments.
pub fn clustering_graph(predicted: &[usize], num_clusters: usize) -> Csr {
    membership_graph(predicted, num_clusters)
}

/// The supervision graph `A^sup` built from *ground-truth* labels.
pub fn supervision_graph(labels: &[usize], num_clusters: usize) -> Csr {
    membership_graph(labels, num_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_graph_weights() {
        // Clusters {0,1,2} and {3}.
        let g = membership_graph(&[0, 0, 0, 1], 2);
        let w = 1.0 / 3.0;
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.get(i, j) - w).abs() < 1e-12);
            }
        }
        assert!((g.get(3, 3) - 1.0).abs() < 1e-12);
        assert_eq!(g.get(0, 3), 0.0);
    }

    #[test]
    fn rows_sum_to_one() {
        // Each row of A^clus sums to |C_k| · 1/|C_k| = 1.
        let g = membership_graph(&[0, 1, 0, 1, 1], 2);
        for i in 0..5 {
            let s: f64 = g.row_values(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_cluster_is_fine() {
        let g = membership_graph(&[0, 0], 3);
        assert_eq!(g.nnz(), 4);
    }

    #[test]
    fn symmetric() {
        let g = membership_graph(&[0, 1, 1, 0, 2], 3);
        for (i, j, v) in g.iter() {
            assert!((g.get(j, i) - v).abs() < 1e-12);
        }
    }
}

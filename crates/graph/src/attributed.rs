//! The attributed graph 𝒢 = (𝒱, ℰ, X) of the paper's §2.

use rgae_linalg::{Csr, Mat};

use crate::{Error, Result};

/// A non-directed attributed graph with optional ground-truth labels.
///
/// * `adjacency` — binary symmetric CSR, no self-loops;
/// * `features` — the `N×J` node-feature matrix `X`;
/// * `labels` — ground-truth cluster per node (the paper's supervision
///   signal, used only for evaluation and for the Λ diagnostics);
/// * `num_classes` — `K`.
#[derive(Clone, Debug)]
pub struct AttributedGraph {
    adjacency: Csr,
    features: Mat,
    labels: Vec<usize>,
    num_classes: usize,
    name: String,
}

impl AttributedGraph {
    /// Assemble and validate a graph.
    pub fn new(
        name: impl Into<String>,
        adjacency: Csr,
        features: Mat,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self> {
        let n = adjacency.rows();
        if adjacency.cols() != n {
            return Err(Error::Invalid("adjacency must be square"));
        }
        if features.rows() != n {
            return Err(Error::Invalid("features rows != num nodes"));
        }
        if labels.len() != n {
            return Err(Error::Invalid("labels len != num nodes"));
        }
        if num_classes == 0 || labels.iter().any(|&l| l >= num_classes) {
            return Err(Error::Invalid("label out of range"));
        }
        for (i, j, v) in adjacency.iter() {
            if i == j {
                return Err(Error::Invalid("adjacency has a self-loop"));
            }
            if v != 1.0 {
                return Err(Error::Invalid("adjacency must be binary"));
            }
            if !adjacency.contains(j, i) {
                return Err(Error::Invalid("adjacency must be symmetric"));
            }
        }
        Ok(AttributedGraph {
            adjacency,
            features,
            labels,
            num_classes,
            name: name.into(),
        })
    }

    /// Build from an undirected edge list.
    pub fn from_edges(
        name: impl Into<String>,
        n: usize,
        edges: &[(usize, usize)],
        features: Mat,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self> {
        let adjacency = Csr::adjacency_from_edges(n, edges)?;
        Self::new(name, adjacency, features, labels, num_classes)
    }

    /// Human-readable dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes `N`.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of undirected edges `|ℰ|`.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz() / 2
    }

    /// Feature dimensionality `J`.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of ground-truth clusters `K`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The binary symmetric adjacency `A`.
    pub fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    /// The feature matrix `X`.
    pub fn features(&self) -> &Mat {
        &self.features
    }

    /// Ground-truth labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The GCN filter `Ã = D̂^{-1/2}(A + I)D̂^{-1/2}`.
    pub fn gcn_filter(&self) -> Csr {
        self.adjacency
            .gcn_normalized()
            .expect("validated square adjacency")
    }

    /// Replace the feature matrix (used by corruption utilities).
    pub fn with_features(mut self, features: Mat) -> Result<Self> {
        if features.rows() != self.num_nodes() {
            return Err(Error::Invalid("features rows != num nodes"));
        }
        self.features = features;
        Ok(self)
    }

    /// Replace the adjacency (used by corruption utilities and Υ).
    pub fn with_adjacency(mut self, adjacency: Csr) -> Result<Self> {
        if adjacency.rows() != self.num_nodes() || adjacency.cols() != self.num_nodes() {
            return Err(Error::Invalid("adjacency shape mismatch"));
        }
        self.adjacency = adjacency;
        Ok(self)
    }

    /// Row-normalise features to unit Euclidean norm (the paper normalises
    /// `X` this way for all datasets).
    pub fn with_row_normalized_features(mut self) -> Self {
        self.features = self.features.row_l2_normalized();
        self
    }

    /// The undirected edge list (i < j).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.adjacency.upper_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AttributedGraph {
        let x = Mat::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.1, 0.0, 1.0, 0.1, 1.0]).unwrap();
        AttributedGraph::from_edges("toy", 4, &[(0, 1), (2, 3), (1, 2)], x, vec![0, 0, 1, 1], 2)
            .unwrap()
    }

    #[test]
    fn counts() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_features(), 2);
        assert_eq!(g.num_classes(), 2);
    }

    #[test]
    fn rejects_label_out_of_range() {
        let x = Mat::zeros(2, 1);
        assert!(AttributedGraph::from_edges("bad", 2, &[], x, vec![0, 2], 2).is_err());
    }

    #[test]
    fn rejects_wrong_feature_rows() {
        let x = Mat::zeros(3, 1);
        assert!(AttributedGraph::from_edges("bad", 2, &[], x, vec![0, 0], 1).is_err());
    }

    #[test]
    fn rejects_asymmetric_adjacency() {
        let a = Csr::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        let x = Mat::zeros(2, 1);
        assert!(AttributedGraph::new("bad", a, x, vec![0, 0], 1).is_err());
    }

    #[test]
    fn rejects_self_loop() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let x = Mat::zeros(2, 1);
        assert!(AttributedGraph::new("bad", a, x, vec![0, 0], 1).is_err());
    }

    #[test]
    fn gcn_filter_shape_and_self_loops() {
        let g = toy();
        let f = g.gcn_filter();
        assert_eq!(f.rows(), 4);
        for i in 0..4 {
            assert!(f.get(i, i) > 0.0);
        }
    }

    #[test]
    fn row_normalized_features_unit_norm() {
        let g = toy().with_row_normalized_features();
        for i in 0..g.num_nodes() {
            let n: f64 = g.features().row(i).iter().map(|&v| v * v).sum();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn edges_upper_triangle() {
        let g = toy();
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }
}

//! Multiplex attributed graphs — the paper's §6 future-work direction:
//! "we plan to investigate the extensibility of our operators to multiplex
//! graphs, in which each couple of nodes can be connected by multiple
//! edges."
//!
//! A [`MultiplexGraph`] carries several edge layers over one node set (e.g.
//! citation + co-authorship). Two aggregation strategies are provided for
//! feeding the existing GAE pipeline:
//!
//! * [`MultiplexGraph::flatten_union`] — an edge exists if it exists in any
//!   layer (the self-supervision target);
//! * [`MultiplexGraph::mean_filter`] — the average of the per-layer GCN
//!   filters (the propagation operator), which weights relations that agree
//!   across layers more heavily.

use rgae_linalg::{Csr, Mat};

use crate::{AttributedGraph, Error, Result};

/// A multiplex attributed graph: one node set, several edge layers.
#[derive(Clone, Debug)]
pub struct MultiplexGraph {
    layers: Vec<Csr>,
    features: Mat,
    labels: Vec<usize>,
    num_classes: usize,
    name: String,
}

impl MultiplexGraph {
    /// Assemble and validate: every layer must be a binary symmetric
    /// loop-free adjacency over the same node set.
    pub fn new(
        name: impl Into<String>,
        layers: Vec<Csr>,
        features: Mat,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(Error::Invalid("multiplex needs at least one layer"));
        }
        let n = features.rows();
        for layer in &layers {
            // Reuse the single-layer validator.
            AttributedGraph::new(
                "layer",
                layer.clone(),
                features.clone(),
                labels.clone(),
                num_classes,
            )?;
            if layer.rows() != n {
                return Err(Error::Invalid("layer size mismatch"));
            }
        }
        Ok(MultiplexGraph {
            layers,
            features,
            labels,
            num_classes,
            name: name.into(),
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The edge layers.
    pub fn layers(&self) -> &[Csr] {
        &self.layers
    }

    /// Node features.
    pub fn features(&self) -> &Mat {
        &self.features
    }

    /// Ground-truth labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Union adjacency: an edge exists if present in any layer.
    pub fn union_adjacency(&self) -> Csr {
        let n = self.num_nodes();
        let mut edges = std::collections::BTreeSet::new();
        for layer in &self.layers {
            for (u, v) in layer.upper_edges() {
                edges.insert((u, v));
            }
        }
        let edge_vec: Vec<(usize, usize)> = edges.into_iter().collect();
        Csr::adjacency_from_edges(n, &edge_vec).expect("valid edges by construction")
    }

    /// Flatten to a standard [`AttributedGraph`] over the union adjacency.
    pub fn flatten_union(&self) -> AttributedGraph {
        AttributedGraph::new(
            format!("{}-union", self.name),
            self.union_adjacency(),
            self.features.clone(),
            self.labels.clone(),
            self.num_classes,
        )
        .expect("validated layers produce a valid union")
    }

    /// Mean of the per-layer GCN filters `Ã_l`: relations present in many
    /// layers propagate more strongly.
    pub fn mean_filter(&self) -> Csr {
        let n = self.num_nodes();
        let w = 1.0 / self.layers.len() as f64;
        let mut triplets = Vec::new();
        for layer in &self.layers {
            let f = layer.gcn_normalized().expect("square layer");
            for (i, j, v) in f.iter() {
                triplets.push((i, j, v * w));
            }
        }
        Csr::from_triplets(n, n, &triplets).expect("in-range triplets")
    }

    /// Replace one layer (used by the multiplex Υ extension).
    pub fn with_layer(mut self, index: usize, layer: Csr) -> Result<Self> {
        if index >= self.layers.len() {
            return Err(Error::Invalid("layer index out of range"));
        }
        if layer.rows() != self.num_nodes() || layer.cols() != self.num_nodes() {
            return Err(Error::Invalid("layer size mismatch"));
        }
        self.layers[index] = layer;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer() -> MultiplexGraph {
        let l0 = Csr::adjacency_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let l1 = Csr::adjacency_from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let x = Mat::eye(4);
        MultiplexGraph::new("mx", vec![l0, l1], x, vec![0, 0, 1, 1], 2).unwrap()
    }

    #[test]
    fn union_merges_layers() {
        let g = two_layer();
        let u = g.union_adjacency();
        assert!(u.contains(0, 1));
        assert!(u.contains(2, 3));
        assert!(u.contains(1, 2));
        assert_eq!(u.nnz(), 6); // three undirected edges
    }

    #[test]
    fn flatten_union_is_valid_graph() {
        let g = two_layer().flatten_union();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.name().ends_with("-union"));
    }

    #[test]
    fn mean_filter_weights_shared_edges_higher() {
        let g = two_layer();
        let f = g.mean_filter();
        // Edge (0,1) exists in both layers; (2,3) only in layer 0.
        assert!(f.get(0, 1) > f.get(2, 3));
        // Symmetric.
        for (i, j, v) in f.iter() {
            assert!((f.get(j, i) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        let x = Mat::eye(4);
        assert!(MultiplexGraph::new("bad", vec![], x.clone(), vec![0; 4], 1).is_err());
        let l_small = Csr::adjacency_from_edges(3, &[(0, 1)]).unwrap();
        assert!(MultiplexGraph::new("bad", vec![l_small], x, vec![0; 4], 1).is_err());
    }

    #[test]
    fn with_layer_replaces() {
        let g = two_layer();
        let empty = Csr::adjacency_from_edges(4, &[]).unwrap();
        let g2 = g.with_layer(1, empty).unwrap();
        assert_eq!(g2.union_adjacency().nnz(), 4); // only layer 0's edges
        assert!(two_layer()
            .with_layer(5, Csr::adjacency_from_edges(4, &[]).unwrap())
            .is_err());
    }
}

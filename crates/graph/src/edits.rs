//! Structural edits: the add/drop edge primitives Υ and the corruption
//! utilities are built on.

use std::collections::BTreeSet;

use rgae_linalg::Csr;

use crate::{Error, Result};

/// A set of undirected edge additions and removals, applied symmetrically.
///
/// Self-loops are rejected at insertion. Applying an `EditSet` where an
/// addition and a removal target the same pair is an error (the caller's
/// logic is confused); Υ never produces such a set because it adds only
/// centroid links that are absent and drops only links that are present.
#[derive(Clone, Debug, Default)]
pub struct EditSet {
    add: BTreeSet<(usize, usize)>,
    drop: BTreeSet<(usize, usize)>,
}

fn ordered(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl EditSet {
    /// Empty edit set.
    pub fn new() -> Self {
        EditSet::default()
    }

    /// Queue the undirected edge `(u, v)` for addition.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<()> {
        if u == v {
            return Err(Error::Invalid("edit: self-loop"));
        }
        self.add.insert(ordered(u, v));
        Ok(())
    }

    /// Queue the undirected edge `(u, v)` for removal.
    pub fn drop_edge(&mut self, u: usize, v: usize) -> Result<()> {
        if u == v {
            return Err(Error::Invalid("edit: self-loop"));
        }
        self.drop.insert(ordered(u, v));
        Ok(())
    }

    /// Queued additions (u < v).
    pub fn additions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.add.iter().copied()
    }

    /// Queued removals (u < v).
    pub fn removals(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.drop.iter().copied()
    }

    /// Number of queued additions.
    pub fn num_additions(&self) -> usize {
        self.add.len()
    }

    /// Number of queued removals.
    pub fn num_removals(&self) -> usize {
        self.drop.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.drop.is_empty()
    }
}

/// Apply an [`EditSet`] to a binary symmetric adjacency, producing a new one.
///
/// Additions that already exist and removals that do not exist are silently
/// idempotent; conflicting add+drop of one pair is an error.
pub fn apply_edits(adjacency: &Csr, edits: &EditSet) -> Result<Csr> {
    let n = adjacency.rows();
    if adjacency.cols() != n {
        return Err(Error::Invalid("apply_edits: adjacency must be square"));
    }
    if let Some(&pair) = edits.add.intersection(&edits.drop).next() {
        let _ = pair;
        return Err(Error::Invalid("apply_edits: conflicting add and drop"));
    }
    for &(u, v) in edits.add.iter().chain(edits.drop.iter()) {
        if u >= n || v >= n {
            return Err(Error::Invalid("apply_edits: endpoint out of bounds"));
        }
    }
    let mut edges: BTreeSet<(usize, usize)> = adjacency.upper_edges().into_iter().collect();
    for &e in &edits.add {
        edges.insert(e);
    }
    for e in &edits.drop {
        edges.remove(e);
    }
    let edge_vec: Vec<(usize, usize)> = edges.into_iter().collect();
    Ok(Csr::adjacency_from_edges(n, &edge_vec)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Csr {
        Csr::adjacency_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn add_and_drop() {
        let a = path4();
        let mut e = EditSet::new();
        e.add_edge(0, 3).unwrap();
        e.drop_edge(1, 2).unwrap();
        let b = apply_edits(&a, &e).unwrap();
        assert!(b.contains(0, 3) && b.contains(3, 0));
        assert!(!b.contains(1, 2) && !b.contains(2, 1));
        assert!(b.contains(0, 1));
        assert_eq!(b.nnz(), 6);
    }

    #[test]
    fn idempotent_add_existing() {
        let a = path4();
        let mut e = EditSet::new();
        e.add_edge(1, 0).unwrap(); // already present (reversed order)
        let b = apply_edits(&a, &e).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn idempotent_drop_missing() {
        let a = path4();
        let mut e = EditSet::new();
        e.drop_edge(0, 3).unwrap();
        let b = apply_edits(&a, &e).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn conflicting_edit_rejected() {
        let a = path4();
        let mut e = EditSet::new();
        e.add_edge(0, 2).unwrap();
        e.drop_edge(2, 0).unwrap();
        assert!(apply_edits(&a, &e).is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let mut e = EditSet::new();
        assert!(e.add_edge(1, 1).is_err());
        assert!(e.drop_edge(2, 2).is_err());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let a = path4();
        let mut e = EditSet::new();
        e.add_edge(0, 9).unwrap();
        assert!(apply_edits(&a, &e).is_err());
    }

    #[test]
    fn result_stays_symmetric_binary() {
        let a = path4();
        let mut e = EditSet::new();
        e.add_edge(3, 0).unwrap();
        e.add_edge(0, 2).unwrap();
        let b = apply_edits(&a, &e).unwrap();
        for (i, j, v) in b.iter() {
            assert_eq!(v, 1.0);
            assert!(b.contains(j, i));
            assert_ne!(i, j);
        }
    }
}

//! Synthetic attributed-graph generators, calibrated to the statistics of
//! the paper's six benchmarks.
//!
//! The original datasets (Planetoid citation networks, struc2vec air-traffic
//! networks) are not redistributable and unavailable offline, so this crate
//! provides the substitution documented in `DESIGN.md`:
//!
//! * [`citation_like`] — a degree-corrected stochastic block model with
//!   cluster-conditioned sparse binary attributes. It reproduces the
//!   properties GAE clustering is sensitive to: community structure with
//!   clustering-irrelevant inter-cluster links, high sparsity, power-lawish
//!   degrees, and informative-but-noisy bag-of-words features.
//! * [`air_traffic_like`] — a degree-tiered hub-and-spoke graph whose
//!   ground-truth classes are structural activity tiers; features are the
//!   one-hot encoding of node degree, exactly as the paper constructs `X`
//!   for these datasets.
//!
//! [`presets`] exposes one constructor per benchmark (`cora_like`, …), each
//! scaled so the full experimental protocol runs on a laptop; the scale knob
//! is explicit.

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

mod air;
mod citation;
mod corrupt;
mod multiplex;
pub mod presets;

pub use air::{air_traffic_like, AirTrafficSpec};
pub use citation::{citation_like, CitationSpec};
pub use corrupt::{
    add_feature_noise, add_random_edges, add_random_edges_traced, drop_feature_columns,
    drop_random_edges,
};
pub use multiplex::{multiplex_like, LayerSpec, MultiplexSpec};

/// Errors from dataset generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Specification parameter out of range (message explains).
    BadSpec(&'static str),
    /// Propagated graph-construction error.
    Graph(rgae_graph::Error),
}

impl From<rgae_graph::Error> for Error {
    fn from(e: rgae_graph::Error) -> Self {
        Error::Graph(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadSpec(m) => write!(f, "bad dataset spec: {m}"),
            Error::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

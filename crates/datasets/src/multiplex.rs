//! Multiplex benchmark generator: one node set with shared labels and
//! features, several edge layers with their own homophily/density (e.g.
//! "citation" + "co-authorship"). Supports the §6 future-work extension.

use std::collections::BTreeSet;

use rgae_graph::MultiplexGraph;
use rgae_linalg::{Mat, Rng64};

use crate::{Error, Result};

/// One edge layer's parameters.
#[derive(Clone, Debug)]
pub struct LayerSpec {
    /// Target mean degree of this layer.
    pub avg_degree: f64,
    /// Fraction of intra-cluster edges in this layer.
    pub homophily: f64,
}

/// Specification of a multiplex benchmark.
#[derive(Clone, Debug)]
pub struct MultiplexSpec {
    /// Dataset name.
    pub name: String,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of clusters.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub num_features: usize,
    /// Words activated per node.
    pub words_per_node: usize,
    /// Own-topic probability per word.
    pub topic_purity: f64,
    /// The edge layers.
    pub layers: Vec<LayerSpec>,
}

/// Generate a multiplex attributed graph.
pub fn multiplex_like(spec: &MultiplexSpec, seed: u64) -> Result<MultiplexGraph> {
    if spec.layers.is_empty() {
        return Err(Error::BadSpec("multiplex needs at least one layer"));
    }
    if spec.num_classes == 0 || spec.num_nodes < spec.num_classes * 2 {
        return Err(Error::BadSpec("need at least two nodes per class"));
    }
    for l in &spec.layers {
        if !(0.0..=1.0).contains(&l.homophily) || l.avg_degree <= 0.0 {
            return Err(Error::BadSpec("bad layer parameters"));
        }
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let n = spec.num_nodes;
    let k = spec.num_classes;

    // Shared labels, balanced then shuffled.
    let mut labels: Vec<usize> = (0..n).map(|i| (i * k) / n).collect();
    rng.shuffle(&mut labels);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        members[l].push(i);
    }
    let weights: Vec<f64> = members.iter().map(|m| m.len() as f64).collect();

    // Edge layers.
    let mut layers = Vec::with_capacity(spec.layers.len());
    for lspec in &spec.layers {
        let target = ((lspec.avg_degree * n as f64) / 2.0).round() as usize;
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut attempts = 0;
        while edges.len() < target && attempts < target * 60 {
            attempts += 1;
            let (u, v) = if rng.bernoulli(lspec.homophily) {
                let c = rng.categorical(&weights);
                if members[c].len() < 2 {
                    continue;
                }
                (
                    members[c][rng.index(members[c].len())],
                    members[c][rng.index(members[c].len())],
                )
            } else {
                let c1 = rng.categorical(&weights);
                let mut w2 = weights.clone();
                w2[c1] = 0.0;
                let c2 = rng.categorical(&w2);
                (
                    members[c1][rng.index(members[c1].len())],
                    members[c2][rng.index(members[c2].len())],
                )
            };
            if u != v {
                edges.insert(if u < v { (u, v) } else { (v, u) });
            }
        }
        let edge_vec: Vec<(usize, usize)> = edges.into_iter().collect();
        layers.push(
            rgae_linalg::Csr::adjacency_from_edges(n, &edge_vec).expect("endpoints in range"),
        );
    }

    // Shared sparse bag-of-words features.
    let j = spec.num_features.max(k);
    let topic = j / k;
    let mut x = Mat::zeros(n, j);
    for i in 0..n {
        let c = labels[i];
        let lo = c * topic;
        let hi = if c == k - 1 { j } else { (c + 1) * topic };
        for _ in 0..spec.words_per_node {
            let w = if rng.bernoulli(spec.topic_purity) {
                lo + rng.index(hi - lo)
            } else {
                rng.index(j)
            };
            x[(i, w)] = 1.0;
        }
    }
    let x = x.row_l2_normalized();

    Ok(MultiplexGraph::new(
        spec.name.clone(),
        layers,
        x,
        labels,
        k,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgae_graph::edge_homophily;

    fn spec() -> MultiplexSpec {
        MultiplexSpec {
            name: "mx-test".into(),
            num_nodes: 200,
            num_classes: 4,
            num_features: 80,
            words_per_node: 10,
            topic_purity: 0.7,
            layers: vec![
                LayerSpec {
                    avg_degree: 4.0,
                    homophily: 0.85,
                },
                LayerSpec {
                    avg_degree: 3.0,
                    homophily: 0.55,
                },
            ],
        }
    }

    #[test]
    fn layers_match_their_homophily() {
        let g = multiplex_like(&spec(), 1).unwrap();
        assert_eq!(g.num_layers(), 2);
        let h0 = edge_homophily(&g.layers()[0], g.labels());
        let h1 = edge_homophily(&g.layers()[1], g.labels());
        assert!((h0 - 0.85).abs() < 0.08, "layer0 {h0}");
        assert!((h1 - 0.55).abs() < 0.08, "layer1 {h1}");
    }

    #[test]
    fn union_is_denser_than_any_layer() {
        let g = multiplex_like(&spec(), 2).unwrap();
        let u = g.union_adjacency();
        assert!(u.nnz() >= g.layers()[0].nnz());
        assert!(u.nnz() >= g.layers()[1].nnz());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = multiplex_like(&spec(), 3).unwrap();
        let b = multiplex_like(&spec(), 3).unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.layers()[1].upper_edges(), b.layers()[1].upper_edges());
    }

    #[test]
    fn rejects_bad_specs() {
        let mut s = spec();
        s.layers.clear();
        assert!(multiplex_like(&s, 0).is_err());
        let mut s = spec();
        s.layers[0].homophily = 2.0;
        assert!(multiplex_like(&s, 0).is_err());
        let mut s = spec();
        s.num_nodes = 3;
        assert!(multiplex_like(&s, 0).is_err());
    }
}

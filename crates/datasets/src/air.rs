//! Degree-tiered "air-traffic-like" generator.
//!
//! The struc2vec air-traffic benchmarks label each airport with an activity
//! quartile; activity correlates strongly with connectivity. The paper feeds
//! these graphs to GAEs with `X` = one-hot degree encodings. This generator
//! reproduces exactly that learning problem: K structural tiers, each tier a
//! band of target degrees, wiring biased towards hubs, features a (capped)
//! one-hot of observed degree.

use std::collections::BTreeSet;

use rgae_graph::AttributedGraph;
use rgae_linalg::{Mat, Rng64};

use crate::{Error, Result};

/// Specification of an air-traffic-like benchmark.
#[derive(Clone, Debug)]
pub struct AirTrafficSpec {
    /// Dataset name.
    pub name: String,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of activity tiers `K` (the struc2vec datasets use 4).
    pub num_classes: usize,
    /// Target degree of the *lowest* tier.
    pub base_degree: f64,
    /// Multiplicative degree step between consecutive tiers.
    pub tier_ratio: f64,
    /// Degree jitter within a tier (lognormal-ish multiplicative noise σ).
    pub degree_jitter: f64,
    /// Number of one-hot degree bins in `X` (degrees are clamped into the
    /// last bin).
    pub degree_bins: usize,
}

impl AirTrafficSpec {
    fn validate(&self) -> Result<()> {
        if self.num_classes == 0 || self.num_nodes < self.num_classes * 2 {
            return Err(Error::BadSpec("need at least two nodes per tier"));
        }
        if self.base_degree < 1.0 || self.tier_ratio <= 1.0 {
            return Err(Error::BadSpec("degrees must grow across tiers"));
        }
        if self.degree_bins < 2 {
            return Err(Error::BadSpec("need at least two degree bins"));
        }
        Ok(())
    }
}

/// Generate an air-traffic-like attributed graph.
pub fn air_traffic_like(spec: &AirTrafficSpec, seed: u64) -> Result<AttributedGraph> {
    spec.validate()?;
    let mut rng = Rng64::seed_from_u64(seed);
    let n = spec.num_nodes;
    let k = spec.num_classes;

    // Equal-sized tiers (quartiles in the original data).
    let mut labels: Vec<usize> = (0..n).map(|i| (i * k) / n).collect();
    rng.shuffle(&mut labels);

    // Target degrees per node: base · ratio^tier · jitter.
    let targets: Vec<f64> = labels
        .iter()
        .map(|&t| {
            let jitter = (rng.normal() * spec.degree_jitter).exp();
            spec.base_degree * spec.tier_ratio.powi(t as i32) * jitter
        })
        .collect();

    // Chung–Lu style wiring: edge (u,v) kept with probability
    // min(1, d_u d_v / (2m)). Sampled by drawing endpoints proportionally to
    // target degree, which matches expected degrees for sparse graphs.
    let total: f64 = targets.iter().sum();
    let target_edges = (total / 2.0).round() as usize;
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut attempts = 0;
    let max_attempts = target_edges * 60;
    while edges.len() < target_edges && attempts < max_attempts {
        attempts += 1;
        let u = rng.categorical(&targets);
        let v = rng.categorical(&targets);
        if u == v {
            continue;
        }
        edges.insert(if u < v { (u, v) } else { (v, u) });
    }
    let edge_vec: Vec<(usize, usize)> = edges.into_iter().collect();

    // Degrees → one-hot features (the paper's construction for these
    // datasets, clamped into `degree_bins`).
    let mut degree = vec![0usize; n];
    for &(u, v) in &edge_vec {
        degree[u] += 1;
        degree[v] += 1;
    }
    let mut x = Mat::zeros(n, spec.degree_bins);
    for i in 0..n {
        let bin = degree[i].min(spec.degree_bins - 1);
        x[(i, bin)] = 1.0;
    }

    let graph = AttributedGraph::from_edges(spec.name.clone(), n, &edge_vec, x, labels, k)?;
    Ok(graph.with_row_normalized_features())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AirTrafficSpec {
        AirTrafficSpec {
            name: "air-test".into(),
            num_nodes: 300,
            num_classes: 4,
            base_degree: 2.0,
            tier_ratio: 2.2,
            degree_jitter: 0.25,
            degree_bins: 64,
        }
    }

    #[test]
    fn tiers_have_increasing_mean_degree() {
        let g = air_traffic_like(&spec(), 1).unwrap();
        let mut deg_sum = [0.0; 4];
        let mut counts = [0usize; 4];
        for i in 0..g.num_nodes() {
            let t = g.labels()[i];
            deg_sum[t] += g.adjacency().row_indices(i).len() as f64;
            counts[t] += 1;
        }
        let means: Vec<f64> = deg_sum
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| s / c as f64)
            .collect();
        for t in 1..4 {
            assert!(
                means[t] > means[t - 1] * 1.3,
                "tier means not increasing: {means:?}"
            );
        }
    }

    #[test]
    fn features_are_one_hot_normalised() {
        let g = air_traffic_like(&spec(), 2).unwrap();
        for i in 0..g.num_nodes() {
            let nonzero = g.features().row(i).iter().filter(|&&v| v != 0.0).count();
            assert_eq!(nonzero, 1);
        }
    }

    #[test]
    fn tiers_roughly_equal_sized() {
        let g = air_traffic_like(&spec(), 3).unwrap();
        let mut counts = vec![0usize; 4];
        for &l in g.labels() {
            counts[l] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 75).unsigned_abs() < 5, "{counts:?}");
        }
    }

    #[test]
    fn degree_predicts_tier() {
        // A trivial degree-threshold classifier should beat chance by a wide
        // margin — that is the learnable signal in these datasets.
        let g = air_traffic_like(&spec(), 4).unwrap();
        let mut pairs: Vec<(usize, usize)> = (0..g.num_nodes())
            .map(|i| (g.adjacency().row_indices(i).len(), g.labels()[i]))
            .collect();
        pairs.sort_unstable();
        let quarter = pairs.len() / 4;
        let mut hits = 0;
        for (rank, &(_, label)) in pairs.iter().enumerate() {
            let predicted = (rank / quarter).min(3);
            if predicted == label {
                hits += 1;
            }
        }
        let acc = hits as f64 / pairs.len() as f64;
        assert!(acc > 0.5, "degree-rank accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = air_traffic_like(&spec(), 5).unwrap();
        let b = air_traffic_like(&spec(), 5).unwrap();
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn rejects_bad_specs() {
        let mut s = spec();
        s.tier_ratio = 1.0;
        assert!(air_traffic_like(&s, 0).is_err());
        let mut s = spec();
        s.num_nodes = 4;
        assert!(air_traffic_like(&s, 0).is_err());
        let mut s = spec();
        s.degree_bins = 1;
        assert!(air_traffic_like(&s, 0).is_err());
    }
}

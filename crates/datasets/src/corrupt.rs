//! Corruption utilities for the robustness experiments (Figs. 7–8):
//! randomly add/drop edges, add Gaussian feature noise, drop feature columns.

use rgae_graph::{apply_edits, AttributedGraph, EditSet};
use rgae_linalg::Rng64;
use rgae_obs::{Recorder, NOOP};

use crate::Result;

/// Add up to `count` random edges between currently-unlinked node pairs.
///
/// Returns the corrupted graph together with the number of edges actually
/// added: on dense (or small) graphs the rejection sampler can exhaust its
/// attempt budget — or the supply of unlinked pairs — before reaching
/// `count`, and callers calibrating a corruption *level* need the delivered
/// amount, not the requested one.
pub fn add_random_edges(
    graph: &AttributedGraph,
    count: usize,
    rng: &mut Rng64,
) -> Result<(AttributedGraph, usize)> {
    add_random_edges_traced(graph, count, rng, &NOOP)
}

/// [`add_random_edges`] with a run-log recorder: any shortfall is also
/// surfaced as an `edges_add_shortfall` counter.
pub fn add_random_edges_traced(
    graph: &AttributedGraph,
    count: usize,
    rng: &mut Rng64,
    rec: &dyn Recorder,
) -> Result<(AttributedGraph, usize)> {
    let n = graph.num_nodes();
    let a = graph.adjacency();
    let mut edits = EditSet::new();
    let mut attempts = 0;
    let max_attempts = count * 100 + 1000;
    while edits.num_additions() < count && attempts < max_attempts {
        attempts += 1;
        let u = rng.index(n);
        let v = rng.index(n);
        if u == v || a.contains(u, v) {
            continue;
        }
        edits.add_edge(u, v).expect("u != v");
    }
    let added = edits.num_additions();
    if added < count {
        rec.count("edges_add_shortfall", (count - added) as u64);
    }
    let adj = apply_edits(a, &edits)?;
    Ok((graph.clone().with_adjacency(adj)?, added))
}

/// Drop `count` random existing edges.
pub fn drop_random_edges(
    graph: &AttributedGraph,
    count: usize,
    rng: &mut Rng64,
) -> Result<AttributedGraph> {
    let mut edges = graph.edges();
    rng.shuffle(&mut edges);
    let mut edits = EditSet::new();
    for &(u, v) in edges.iter().take(count) {
        edits.drop_edge(u, v).expect("u != v");
    }
    let adj = apply_edits(graph.adjacency(), &edits)?;
    Ok(graph.clone().with_adjacency(adj)?)
}

/// Add iid Gaussian noise with standard deviation `std` to every feature.
pub fn add_feature_noise(
    graph: &AttributedGraph,
    std: f64,
    rng: &mut Rng64,
) -> Result<AttributedGraph> {
    let mut x = graph.features().clone();
    for v in x.as_mut_slice() {
        *v += rng.normal_with(0.0, std);
    }
    Ok(graph.clone().with_features(x)?)
}

/// Zero out `count` randomly chosen feature columns.
pub fn drop_feature_columns(
    graph: &AttributedGraph,
    count: usize,
    rng: &mut Rng64,
) -> Result<AttributedGraph> {
    let j = graph.num_features();
    let cols = rng.sample_indices(j, count.min(j));
    let mut x = graph.features().clone();
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        for &c in &cols {
            row[c] = 0.0;
        }
    }
    Ok(graph.clone().with_features(x)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{citation_like, CitationSpec};

    fn toy() -> AttributedGraph {
        citation_like(
            &CitationSpec {
                name: "toy".into(),
                num_nodes: 100,
                num_classes: 3,
                num_features: 30,
                avg_degree: 4.0,
                homophily: 0.8,
                degree_power: 2.5,
                words_per_node: 6,
                topic_purity: 0.8,
                class_proportions: vec![],
            },
            1,
        )
        .unwrap()
    }

    #[test]
    fn add_edges_increases_count() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(1);
        let (g2, added) = add_random_edges(&g, 40, &mut rng).unwrap();
        assert_eq!(added, 40);
        assert_eq!(g2.num_edges(), g.num_edges() + 40);
        // Features untouched.
        assert_eq!(g2.features().as_slice(), g.features().as_slice());
    }

    #[test]
    fn add_edges_reports_shortfall_when_pairs_run_out() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(8);
        // More edges than the 100-node graph has unlinked pairs: the
        // sampler must stop short and report the delivered amount.
        let requested = 10_000;
        let (g2, added) = add_random_edges(&g, requested, &mut rng).unwrap();
        assert!(added < requested);
        // The returned count is the exact delivery, not the request.
        assert_eq!(g2.num_edges(), g.num_edges() + added);
    }

    #[test]
    fn add_edges_traced_counts_the_shortfall() {
        let g = toy();
        let sink = rgae_obs::MemorySink::new();
        let mut rng = Rng64::seed_from_u64(9);
        let requested = 10_000;
        let (_, added) = add_random_edges_traced(&g, requested, &mut rng, &sink).unwrap();
        assert_eq!(
            sink.counter_total("edges_add_shortfall"),
            (requested - added) as u64
        );

        // An exactly-delivered request emits no shortfall counter.
        let sink = rgae_obs::MemorySink::new();
        let mut rng = Rng64::seed_from_u64(10);
        let (_, added) = add_random_edges_traced(&g, 5, &mut rng, &sink).unwrap();
        assert_eq!(added, 5);
        assert_eq!(sink.counter_total("edges_add_shortfall"), 0);
    }

    #[test]
    fn corruptions_are_deterministic_per_seed() {
        let g = toy();
        for seed in [11u64, 12, 13] {
            let (a1, n1) = add_random_edges(&g, 25, &mut Rng64::seed_from_u64(seed)).unwrap();
            let (a2, n2) = add_random_edges(&g, 25, &mut Rng64::seed_from_u64(seed)).unwrap();
            assert_eq!(n1, n2);
            assert_eq!(a1.edges(), a2.edges());

            let f1 = add_feature_noise(&g, 0.1, &mut Rng64::seed_from_u64(seed)).unwrap();
            let f2 = add_feature_noise(&g, 0.1, &mut Rng64::seed_from_u64(seed)).unwrap();
            assert_eq!(f1.features().as_slice(), f2.features().as_slice());

            let d1 = drop_random_edges(&g, 15, &mut Rng64::seed_from_u64(seed)).unwrap();
            let d2 = drop_random_edges(&g, 15, &mut Rng64::seed_from_u64(seed)).unwrap();
            assert_eq!(d1.edges(), d2.edges());
        }
        // Different seeds genuinely vary the draw.
        let (b1, _) = add_random_edges(&g, 25, &mut Rng64::seed_from_u64(1)).unwrap();
        let (b2, _) = add_random_edges(&g, 25, &mut Rng64::seed_from_u64(2)).unwrap();
        assert_ne!(b1.edges(), b2.edges());
    }

    #[test]
    fn drop_columns_is_bounded_by_request_and_width() {
        let g = toy();
        let j = g.num_features();
        let mut rng = Rng64::seed_from_u64(14);
        let g2 = drop_feature_columns(&g, 5, &mut rng).unwrap();
        let changed = (0..j)
            .filter(|&c| g.features().col(c) != g2.features().col(c))
            .count();
        assert!(changed <= 5);
        // Requests past the width clamp to the width instead of panicking.
        let mut rng = Rng64::seed_from_u64(15);
        let g3 = drop_feature_columns(&g, j + 100, &mut rng).unwrap();
        assert_eq!(g3.features().frob_norm(), 0.0);
        assert_eq!(g3.features().shape(), g.features().shape());
    }

    #[test]
    fn drop_edges_decreases_count() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(2);
        let g2 = drop_random_edges(&g, 30, &mut rng).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges() - 30);
    }

    #[test]
    fn drop_more_edges_than_exist_empties_graph() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(3);
        let g2 = drop_random_edges(&g, 10_000, &mut rng).unwrap();
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn feature_noise_perturbs_but_preserves_shape() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(4);
        let g2 = add_feature_noise(&g, 0.1, &mut rng).unwrap();
        assert_eq!(g2.features().shape(), g.features().shape());
        let diff = g2.features().sub(g.features()).unwrap().frob_norm();
        assert!(diff > 0.0);
        // Adjacency untouched.
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn zero_noise_is_identity() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(5);
        let g2 = add_feature_noise(&g, 0.0, &mut rng).unwrap();
        assert_eq!(g2.features().as_slice(), g.features().as_slice());
    }

    #[test]
    fn drop_columns_zeroes_exactly_that_many() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(6);
        let g2 = drop_feature_columns(&g, 10, &mut rng).unwrap();
        let zero_cols = (0..g2.num_features())
            .filter(|&c| g2.features().col(c).iter().all(|&v| v == 0.0))
            .count();
        assert!(zero_cols >= 10);
        assert_eq!(g2.features().shape(), g.features().shape());
        // Untouched columns are bit-identical.
        let changed = (0..g.num_features())
            .filter(|&c| g.features().col(c) != g2.features().col(c))
            .count();
        assert!(changed <= 10);
    }

    #[test]
    fn drop_all_columns_ok() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(7);
        let g2 = drop_feature_columns(&g, 10_000, &mut rng).unwrap();
        assert!(g2.features().frob_norm() == 0.0);
    }
}

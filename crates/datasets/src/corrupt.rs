//! Corruption utilities for the robustness experiments (Figs. 7–8):
//! randomly add/drop edges, add Gaussian feature noise, drop feature columns.

use rgae_graph::{apply_edits, AttributedGraph, EditSet};
use rgae_linalg::Rng64;

use crate::Result;

/// Add `count` random edges between currently-unlinked node pairs.
pub fn add_random_edges(
    graph: &AttributedGraph,
    count: usize,
    rng: &mut Rng64,
) -> Result<AttributedGraph> {
    let n = graph.num_nodes();
    let a = graph.adjacency();
    let mut edits = EditSet::new();
    let mut attempts = 0;
    let max_attempts = count * 100 + 1000;
    while edits.num_additions() < count && attempts < max_attempts {
        attempts += 1;
        let u = rng.index(n);
        let v = rng.index(n);
        if u == v || a.contains(u, v) {
            continue;
        }
        edits.add_edge(u, v).expect("u != v");
    }
    let adj = apply_edits(a, &edits)?;
    Ok(graph.clone().with_adjacency(adj)?)
}

/// Drop `count` random existing edges.
pub fn drop_random_edges(
    graph: &AttributedGraph,
    count: usize,
    rng: &mut Rng64,
) -> Result<AttributedGraph> {
    let mut edges = graph.edges();
    rng.shuffle(&mut edges);
    let mut edits = EditSet::new();
    for &(u, v) in edges.iter().take(count) {
        edits.drop_edge(u, v).expect("u != v");
    }
    let adj = apply_edits(graph.adjacency(), &edits)?;
    Ok(graph.clone().with_adjacency(adj)?)
}

/// Add iid Gaussian noise with standard deviation `std` to every feature.
pub fn add_feature_noise(
    graph: &AttributedGraph,
    std: f64,
    rng: &mut Rng64,
) -> Result<AttributedGraph> {
    let mut x = graph.features().clone();
    for v in x.as_mut_slice() {
        *v += rng.normal_with(0.0, std);
    }
    Ok(graph.clone().with_features(x)?)
}

/// Zero out `count` randomly chosen feature columns.
pub fn drop_feature_columns(
    graph: &AttributedGraph,
    count: usize,
    rng: &mut Rng64,
) -> Result<AttributedGraph> {
    let j = graph.num_features();
    let cols = rng.sample_indices(j, count.min(j));
    let mut x = graph.features().clone();
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        for &c in &cols {
            row[c] = 0.0;
        }
    }
    Ok(graph.clone().with_features(x)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{citation_like, CitationSpec};

    fn toy() -> AttributedGraph {
        citation_like(
            &CitationSpec {
                name: "toy".into(),
                num_nodes: 100,
                num_classes: 3,
                num_features: 30,
                avg_degree: 4.0,
                homophily: 0.8,
                degree_power: 2.5,
                words_per_node: 6,
                topic_purity: 0.8,
                class_proportions: vec![],
            },
            1,
        )
        .unwrap()
    }

    #[test]
    fn add_edges_increases_count() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(1);
        let g2 = add_random_edges(&g, 40, &mut rng).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges() + 40);
        // Features untouched.
        assert_eq!(g2.features().as_slice(), g.features().as_slice());
    }

    #[test]
    fn drop_edges_decreases_count() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(2);
        let g2 = drop_random_edges(&g, 30, &mut rng).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges() - 30);
    }

    #[test]
    fn drop_more_edges_than_exist_empties_graph() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(3);
        let g2 = drop_random_edges(&g, 10_000, &mut rng).unwrap();
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn feature_noise_perturbs_but_preserves_shape() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(4);
        let g2 = add_feature_noise(&g, 0.1, &mut rng).unwrap();
        assert_eq!(g2.features().shape(), g.features().shape());
        let diff = g2.features().sub(g.features()).unwrap().frob_norm();
        assert!(diff > 0.0);
        // Adjacency untouched.
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn zero_noise_is_identity() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(5);
        let g2 = add_feature_noise(&g, 0.0, &mut rng).unwrap();
        assert_eq!(g2.features().as_slice(), g.features().as_slice());
    }

    #[test]
    fn drop_columns_zeroes_exactly_that_many() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(6);
        let g2 = drop_feature_columns(&g, 10, &mut rng).unwrap();
        let zero_cols = (0..g2.num_features())
            .filter(|&c| g2.features().col(c).iter().all(|&v| v == 0.0))
            .count();
        assert!(zero_cols >= 10);
        assert_eq!(g2.features().shape(), g.features().shape());
        // Untouched columns are bit-identical.
        let changed = (0..g.num_features())
            .filter(|&c| g.features().col(c) != g2.features().col(c))
            .count();
        assert!(changed <= 10);
    }

    #[test]
    fn drop_all_columns_ok() {
        let g = toy();
        let mut rng = Rng64::seed_from_u64(7);
        let g2 = drop_feature_columns(&g, 10_000, &mut rng).unwrap();
        assert!(g2.features().frob_norm() == 0.0);
    }
}

//! Degree-corrected stochastic block model with cluster-conditioned sparse
//! binary attributes ("citation-like" generator).

use std::collections::BTreeSet;

use rgae_graph::AttributedGraph;
use rgae_linalg::{Mat, Rng64};

use crate::{Error, Result};

/// Specification of a citation-like benchmark.
#[derive(Clone, Debug)]
pub struct CitationSpec {
    /// Dataset name (propagated to [`AttributedGraph::name`]).
    pub name: String,
    /// Number of nodes `N`.
    pub num_nodes: usize,
    /// Number of ground-truth clusters `K`.
    pub num_classes: usize,
    /// Feature dimensionality `J` (bag-of-words vocabulary size).
    pub num_features: usize,
    /// Target mean degree (undirected).
    pub avg_degree: f64,
    /// Fraction of edges that are intra-cluster (edge homophily).
    pub homophily: f64,
    /// Pareto shape for the degree-propensity distribution; smaller means
    /// heavier hubs. Citation networks sit around 2.5–3.
    pub degree_power: f64,
    /// Words set active per node.
    pub words_per_node: usize,
    /// Probability that an active word is drawn from the node's own-class
    /// topic (the rest are drawn uniformly from the whole vocabulary).
    pub topic_purity: f64,
    /// Relative class sizes; uniform when empty. Length must equal
    /// `num_classes` when non-empty.
    pub class_proportions: Vec<f64>,
}

impl CitationSpec {
    fn validate(&self) -> Result<()> {
        if self.num_nodes < self.num_classes || self.num_classes == 0 {
            return Err(Error::BadSpec("need at least one node per class"));
        }
        if self.num_features < self.num_classes {
            return Err(Error::BadSpec("need at least one feature per class"));
        }
        if !(0.0..=1.0).contains(&self.homophily) {
            return Err(Error::BadSpec("homophily must be in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.topic_purity) {
            return Err(Error::BadSpec("topic_purity must be in [0,1]"));
        }
        if self.avg_degree <= 0.0 {
            return Err(Error::BadSpec("avg_degree must be positive"));
        }
        if !self.class_proportions.is_empty() && self.class_proportions.len() != self.num_classes {
            return Err(Error::BadSpec("class_proportions length != K"));
        }
        Ok(())
    }
}

/// Generate a citation-like attributed graph from a spec and seed.
///
/// Edges are drawn with a degree-corrected block model: every edge flips a
/// homophily coin to decide intra- vs inter-cluster, then endpoints are drawn
/// proportionally to Pareto-distributed propensities within the chosen
/// block(s). Duplicate edges are rejected, so the realised mean degree is
/// within a few percent of the target for sparse graphs. Features are sparse
/// binary bag-of-words rows, L2-row-normalised per the paper's protocol.
pub fn citation_like(spec: &CitationSpec, seed: u64) -> Result<AttributedGraph> {
    spec.validate()?;
    let mut rng = Rng64::seed_from_u64(seed);
    let n = spec.num_nodes;
    let k = spec.num_classes;

    // --- Labels -----------------------------------------------------------
    let props: Vec<f64> = if spec.class_proportions.is_empty() {
        vec![1.0; k]
    } else {
        spec.class_proportions.clone()
    };
    let mut labels = Vec::with_capacity(n);
    // Deterministic proportional fill, then shuffle for exchangeability.
    let total: f64 = props.iter().sum();
    for (c, &p) in props.iter().enumerate() {
        let count = ((p / total) * n as f64).round() as usize;
        labels.extend(std::iter::repeat_n(c, count));
    }
    while labels.len() < n {
        labels.push(rng.index(k));
    }
    labels.truncate(n);
    rng.shuffle(&mut labels);
    // Ensure every class is inhabited.
    for c in 0..k {
        if !labels.contains(&c) {
            let i = rng.index(n);
            labels[i] = c;
        }
    }

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        members[l].push(i);
    }

    // --- Degree propensities (Pareto) --------------------------------------
    let theta: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = loop {
                let u = rng.uniform();
                if u > 1e-12 {
                    break u;
                }
            };
            // Pareto(x_m = 1, α = degree_power), capped to avoid one node
            // absorbing the whole edge budget.
            u.powf(-1.0 / spec.degree_power).min(20.0)
        })
        .collect();
    let class_theta: Vec<Vec<f64>> = members
        .iter()
        .map(|m| m.iter().map(|&i| theta[i]).collect())
        .collect();
    let class_weight: Vec<f64> = class_theta.iter().map(|t| t.iter().sum()).collect();

    // --- Edges --------------------------------------------------------------
    let target_edges = ((spec.avg_degree * n as f64) / 2.0).round() as usize;
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut attempts = 0usize;
    let max_attempts = target_edges * 50;
    while edges.len() < target_edges && attempts < max_attempts {
        attempts += 1;
        let (u, v) = if rng.bernoulli(spec.homophily) {
            // Intra-cluster edge: pick a class by weight, two members by θ.
            let c = rng.categorical(&class_weight);
            if members[c].len() < 2 {
                continue;
            }
            let a = members[c][rng.categorical(&class_theta[c])];
            let b = members[c][rng.categorical(&class_theta[c])];
            (a, b)
        } else {
            // Inter-cluster edge: two distinct classes. The second class is
            // drawn conditioned on differing from the first (re-weighting,
            // not rejection) so the realised homophily matches the spec even
            // for small or unbalanced K.
            let c1 = rng.categorical(&class_weight);
            let mut w2 = class_weight.clone();
            w2[c1] = 0.0;
            if w2.iter().all(|&w| w <= 0.0) {
                continue;
            }
            let c2 = rng.categorical(&w2);
            let a = members[c1][rng.categorical(&class_theta[c1])];
            let b = members[c2][rng.categorical(&class_theta[c2])];
            (a, b)
        };
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        edges.insert(key);
    }

    // --- Features -----------------------------------------------------------
    // Partition the vocabulary into K topics of (roughly) equal size.
    let j = spec.num_features;
    let topic_size = j / k;
    let mut x = Mat::zeros(n, j);
    for i in 0..n {
        let c = labels[i];
        let topic_lo = c * topic_size;
        let topic_hi = if c == k - 1 { j } else { (c + 1) * topic_size };
        for _ in 0..spec.words_per_node {
            let w = if rng.bernoulli(spec.topic_purity) {
                topic_lo + rng.index(topic_hi - topic_lo)
            } else {
                rng.index(j)
            };
            x[(i, w)] = 1.0;
        }
    }

    let edge_vec: Vec<(usize, usize)> = edges.into_iter().collect();
    let graph = AttributedGraph::from_edges(spec.name.clone(), n, &edge_vec, x, labels, k)?;
    Ok(graph.with_row_normalized_features())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgae_graph::edge_homophily;

    fn spec() -> CitationSpec {
        CitationSpec {
            name: "test".into(),
            num_nodes: 400,
            num_classes: 4,
            num_features: 120,
            avg_degree: 4.0,
            homophily: 0.8,
            degree_power: 2.5,
            words_per_node: 12,
            topic_purity: 0.8,
            class_proportions: vec![],
        }
    }

    #[test]
    fn respects_basic_counts() {
        let g = citation_like(&spec(), 1).unwrap();
        assert_eq!(g.num_nodes(), 400);
        assert_eq!(g.num_classes(), 4);
        assert_eq!(g.num_features(), 120);
        // Mean degree within 15% of target.
        let mean_deg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((mean_deg - 4.0).abs() < 0.6, "mean degree {mean_deg}");
    }

    #[test]
    fn homophily_calibrated() {
        let g = citation_like(&spec(), 2).unwrap();
        let h = edge_homophily(g.adjacency(), g.labels());
        assert!((h - 0.8).abs() < 0.07, "homophily {h}");
    }

    #[test]
    fn all_classes_inhabited_and_roughly_balanced() {
        let g = citation_like(&spec(), 3).unwrap();
        let mut counts = vec![0usize; 4];
        for &l in g.labels() {
            counts[l] += 1;
        }
        for &c in &counts {
            assert!(c > 50, "{counts:?}");
        }
    }

    #[test]
    fn features_are_informative() {
        // Mean intra-class feature cosine similarity should exceed
        // inter-class similarity.
        let g = citation_like(&spec(), 4).unwrap();
        let x = g.features();
        let labels = g.labels();
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..4000 {
            let i = rng.index(x.rows());
            let jx = rng.index(x.rows());
            if i == jx {
                continue;
            }
            let cs = rgae_linalg::cosine(x.row(i), x.row(jx));
            if labels[i] == labels[jx] {
                intra.0 += cs;
                intra.1 += 1;
            } else {
                inter.0 += cs;
                inter.1 += 1;
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            intra_mean > inter_mean + 0.05,
            "intra {intra_mean} inter {inter_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = citation_like(&spec(), 7).unwrap();
        let b = citation_like(&spec(), 7).unwrap();
        let c = citation_like(&spec(), 8).unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn features_row_normalized() {
        let g = citation_like(&spec(), 5).unwrap();
        for i in 0..g.num_nodes() {
            let n: f64 = g.features().row(i).iter().map(|&v| v * v).sum();
            assert!((n - 1.0).abs() < 1e-9, "row {i} norm {n}");
        }
    }

    #[test]
    fn proportions_respected() {
        let mut s = spec();
        s.class_proportions = vec![6.0, 2.0, 1.0, 1.0];
        let g = citation_like(&s, 6).unwrap();
        let mut counts = [0usize; 4];
        for &l in g.labels() {
            counts[l] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2] / 2);
        assert!(counts[0] as f64 > 0.5 * g.num_nodes() as f64);
    }

    #[test]
    fn rejects_bad_specs() {
        let mut s = spec();
        s.homophily = 1.5;
        assert!(citation_like(&s, 0).is_err());
        let mut s = spec();
        s.num_classes = 0;
        assert!(citation_like(&s, 0).is_err());
        let mut s = spec();
        s.avg_degree = 0.0;
        assert!(citation_like(&s, 0).is_err());
        let mut s = spec();
        s.class_proportions = vec![1.0];
        assert!(citation_like(&s, 0).is_err());
    }

    #[test]
    fn degree_distribution_has_hubs() {
        let g = citation_like(&spec(), 10).unwrap();
        let mut max_deg = 0;
        for i in 0..g.num_nodes() {
            max_deg = max_deg.max(g.adjacency().row_indices(i).len());
        }
        // Heavier than a Poisson(4) tail.
        assert!(max_deg >= 12, "max degree {max_deg}");
    }
}

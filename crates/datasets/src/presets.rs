//! Named benchmark presets, calibrated against the published statistics of
//! the paper's six datasets.
//!
//! | preset          | real dataset | real N / |E| / J / K | default scale here |
//! |-----------------|--------------|-----------------------|--------------------|
//! | `cora_like`     | Cora         | 2708 / 5429 / 1433 / 7 | N=1200, J=420      |
//! | `citeseer_like` | Citeseer     | 3327 / 4732 / 3703 / 6 | N=1000, J=480      |
//! | `pubmed_like`   | Pubmed       | 19717 / 44338 / 500 / 3 | N=1800, J=300     |
//! | `usa_air_like`  | USA air      | 1190 / 13599 / — / 4   | N=600              |
//! | `europe_air_like` | Europe air | 399 / 5995 / — / 4     | N=400              |
//! | `brazil_air_like` | Brazil air | 131 / 1038 / — / 4     | N=131              |
//!
//! Sizes are reduced because the GAE decoder is dense `N×N`; the *relative*
//! structure (homophily, degree shape, K, feature sparsity, class balance)
//! is preserved. Every constructor takes a `scale` in `(0, 1]` applied to
//! the node count, so `--quick` runs can shrink further and a machine with
//! time to burn can raise it.

use rgae_graph::AttributedGraph;

use crate::{air_traffic_like, citation_like, AirTrafficSpec, CitationSpec, Result};

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(40)
}

/// Cora-like: 7 balanced-ish topic clusters, homophily ≈ 0.81.
pub fn cora_like(scale: f64, seed: u64) -> Result<AttributedGraph> {
    citation_like(
        &CitationSpec {
            name: "cora-like".into(),
            num_nodes: scaled(1200, scale),
            num_classes: 7,
            num_features: 420,
            avg_degree: 4.0,
            homophily: 0.76,
            degree_power: 2.6,
            words_per_node: 14,
            topic_purity: 0.38,
            class_proportions: vec![1.5, 1.2, 1.5, 0.9, 1.0, 0.9, 0.7],
        },
        seed,
    )
}

/// Citeseer-like: 6 clusters, sparser and less homophilous than Cora.
pub fn citeseer_like(scale: f64, seed: u64) -> Result<AttributedGraph> {
    citation_like(
        &CitationSpec {
            name: "citeseer-like".into(),
            num_nodes: scaled(1000, scale),
            num_classes: 6,
            num_features: 480,
            avg_degree: 2.8,
            homophily: 0.74,
            degree_power: 2.8,
            words_per_node: 12,
            topic_purity: 0.38,
            class_proportions: vec![1.2, 1.4, 1.2, 1.0, 0.8, 0.7],
        },
        seed,
    )
}

/// Pubmed-like: 3 large clusters, denser features, reduced from N=19717.
pub fn pubmed_like(scale: f64, seed: u64) -> Result<AttributedGraph> {
    citation_like(
        &CitationSpec {
            name: "pubmed-like".into(),
            num_nodes: scaled(1800, scale),
            num_classes: 3,
            num_features: 300,
            avg_degree: 4.5,
            homophily: 0.71,
            degree_power: 2.4,
            words_per_node: 16,
            topic_purity: 0.38,
            class_proportions: vec![1.0, 1.9, 2.0],
        },
        seed,
    )
}

/// USA-air-like: 4 activity tiers, reduced from N=1190.
pub fn usa_air_like(scale: f64, seed: u64) -> Result<AttributedGraph> {
    air_traffic_like(
        &AirTrafficSpec {
            name: "usa-air-like".into(),
            num_nodes: scaled(600, scale),
            num_classes: 4,
            base_degree: 2.5,
            tier_ratio: 2.4,
            degree_jitter: 0.45,
            degree_bins: 96,
        },
        seed,
    )
}

/// Europe-air-like: 4 tiers, denser than USA.
pub fn europe_air_like(scale: f64, seed: u64) -> Result<AttributedGraph> {
    air_traffic_like(
        &AirTrafficSpec {
            name: "europe-air-like".into(),
            num_nodes: scaled(400, scale),
            num_classes: 4,
            base_degree: 3.5,
            tier_ratio: 2.2,
            degree_jitter: 0.40,
            degree_bins: 96,
        },
        seed,
    )
}

/// Brazil-air-like: the smallest benchmark, kept at its true size N=131.
pub fn brazil_air_like(scale: f64, seed: u64) -> Result<AttributedGraph> {
    air_traffic_like(
        &AirTrafficSpec {
            name: "brazil-air-like".into(),
            num_nodes: scaled(131, scale),
            num_classes: 4,
            base_degree: 3.0,
            tier_ratio: 2.0,
            degree_jitter: 0.35,
            degree_bins: 64,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgae_graph::edge_homophily;

    #[test]
    fn citation_presets_build_and_calibrate() {
        for (g, expect_h) in [
            (cora_like(0.5, 1).unwrap(), 0.76),
            (citeseer_like(0.5, 1).unwrap(), 0.74),
            (pubmed_like(0.5, 1).unwrap(), 0.71),
        ] {
            let h = edge_homophily(g.adjacency(), g.labels());
            assert!((h - expect_h).abs() < 0.08, "{}: homophily {h}", g.name());
            assert!(g.num_edges() > g.num_nodes(), "{} too sparse", g.name());
        }
    }

    #[test]
    fn air_presets_build() {
        for g in [
            usa_air_like(1.0, 1).unwrap(),
            europe_air_like(1.0, 1).unwrap(),
            brazil_air_like(1.0, 1).unwrap(),
        ] {
            assert_eq!(g.num_classes(), 4);
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn scale_shrinks_node_count() {
        let full = cora_like(1.0, 1).unwrap();
        let half = cora_like(0.5, 1).unwrap();
        assert_eq!(full.num_nodes(), 1200);
        assert_eq!(half.num_nodes(), 600);
    }

    #[test]
    fn scale_floor_applies() {
        let tiny = brazil_air_like(0.01, 1).unwrap();
        assert_eq!(tiny.num_nodes(), 40);
    }
}

//! Clustering algorithms and external evaluation metrics.
//!
//! * [`kmeans`] — k-means++ initialisation plus Lloyd iterations;
//! * [`GaussianMixture`] — diagonal-covariance EM;
//! * [`student_t_assignments`] — the DEC soft-assignment kernel (Eq. 20);
//! * [`gaussian_soft_assignments`] — the Ξ operator's Eq. 15 kernel;
//! * [`hungarian`] — Kuhn–Munkres assignment, used by clustering accuracy;
//! * [`accuracy`], [`nmi`], [`ari`] — the paper's three metrics.

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

mod gmm;
mod hungarian;
mod kmeans;
mod metrics;
mod soft;

pub use gmm::GaussianMixture;
pub use hungarian::hungarian;
pub use kmeans::{kmeans, kmeans_traced, KMeansResult};
pub use metrics::{accuracy, ari, best_mapping, confusion_matrix, map_predictions_to_labels, nmi};
pub use soft::{
    dec_target_distribution, gaussian_soft_assignments, gaussian_soft_assignments_tempered,
    student_t_assignments,
};

/// Errors produced by the clustering routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Fewer points than clusters, or zero clusters requested.
    BadClusterCount {
        /// Points available.
        points: usize,
        /// Clusters requested.
        clusters: usize,
    },
    /// Input lengths disagree.
    LengthMismatch(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadClusterCount { points, clusters } => {
                write!(f, "cannot form {clusters} clusters from {points} points")
            }
            Error::LengthMismatch(m) => write!(f, "length mismatch: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Points per parallel task for a per-point kernel costing ~`point_cost`
/// flops each. One task (inline execution) when the problem is too small to
/// amortise pool dispatch. The choice never affects results: per-point
/// outputs are independent and scalar reductions go through fixed-width
/// ordered partials.
pub(crate) fn par_point_chunk(n: usize, point_cost: usize) -> usize {
    const MIN_PAR_WORK: usize = 16 * 1024;
    let t = rgae_par::threads();
    if t <= 1 || n.saturating_mul(point_cost.max(1)) < MIN_PAR_WORK {
        n.max(1)
    } else {
        n.div_ceil(t * 4).max(1)
    }
}

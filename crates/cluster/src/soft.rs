//! Soft-assignment kernels: the DEC Student-t distribution (the paper's
//! Eq. 20), its target distribution (Eq. 19's Q), and the Gaussian kernel of
//! the Ξ operator (Eq. 15).

use rgae_linalg::Mat;

use crate::{Error, Result};

/// Student-t soft assignments (DEC / Eq. 20):
/// `p_ij = (1 + ‖z_i − μ_j‖²)⁻¹ / Σ_j' (1 + ‖z_i − μ_j'‖²)⁻¹`.
pub fn student_t_assignments(z: &Mat, centroids: &Mat) -> Result<Mat> {
    if z.cols() != centroids.cols() {
        return Err(Error::LengthMismatch("z and centroids dims differ"));
    }
    let d = z
        .pairwise_sq_dists(centroids)
        .map_err(|_| Error::LengthMismatch("pairwise dims"))?;
    let mut p = d.map(|v| 1.0 / (1.0 + v));
    for i in 0..p.rows() {
        let s: f64 = p.row(i).iter().sum();
        for e in p.row_mut(i) {
            *e /= s;
        }
    }
    Ok(p)
}

/// DEC target distribution: `q_ij = (p_ij² / f_j) / Σ_j' (p_ij'² / f_j')`
/// with cluster frequency `f_j = Σ_i p_ij`. This is the sharpened
/// "hard-assignment distribution" the paper's Eq. 19 trains against.
pub fn dec_target_distribution(p: &Mat) -> Mat {
    let f = p.col_sums();
    let mut q = Mat::zeros(p.rows(), p.cols());
    for i in 0..p.rows() {
        let mut s = 0.0;
        for j in 0..p.cols() {
            let v = p[(i, j)] * p[(i, j)] / f[j].max(1e-12);
            q[(i, j)] = v;
            s += v;
        }
        for j in 0..p.cols() {
            q[(i, j)] /= s.max(1e-12);
        }
    }
    q
}

/// The Ξ operator's Eq. 15: Gaussian soft assignments from hard clusters.
///
/// `p'_ij ∝ exp(−½ (z_i − μ_j)ᵀ Σ_j⁻¹ (z_i − μ_j))` with diagonal Σ_j taken
/// from the per-cluster coordinate variances of the hard partition.
/// Variances are floored to keep the kernel finite for tight clusters.
pub fn gaussian_soft_assignments(z: &Mat, assignments: &[usize], k: usize) -> Result<Mat> {
    gaussian_soft_assignments_tempered(z, assignments, k, 1.0)
}

/// Eq. 15 with a likelihood temperature: the Mahalanobis exponent is divided
/// by `temperature`. `temperature = d` (the latent dimension) makes the
/// confidence scale dimension-independent — the calibration the Ξ operator
/// needs when latent clusters are much better separated than on the paper's
/// real datasets (see DESIGN.md).
pub fn gaussian_soft_assignments_tempered(
    z: &Mat,
    assignments: &[usize],
    k: usize,
    temperature: f64,
) -> Result<Mat> {
    let n = z.rows();
    if assignments.len() != n {
        return Err(Error::LengthMismatch("assignments len != points"));
    }
    if k == 0 || assignments.iter().any(|&a| a >= k) {
        return Err(Error::BadClusterCount {
            points: n,
            clusters: k,
        });
    }
    let d = z.cols();
    let mut counts = vec![0usize; k];
    let mut means = Mat::zeros(k, d);
    for (i, &a) in assignments.iter().enumerate() {
        counts[a] += 1;
        for (m, &v) in means.row_mut(a).iter_mut().zip(z.row(i)) {
            *m += v;
        }
    }
    for c in 0..k {
        let inv = 1.0 / counts[c].max(1) as f64;
        for m in means.row_mut(c) {
            *m *= inv;
        }
    }
    let mut vars = Mat::full(k, d, 0.0);
    for (i, &a) in assignments.iter().enumerate() {
        for (v, (&x, &m)) in vars
            .row_mut(a)
            .iter_mut()
            .zip(z.row(i).iter().zip(means.row(a)))
        {
            *v += (x - m) * (x - m);
        }
    }
    const VAR_FLOOR: f64 = 1e-4;
    for c in 0..k {
        let inv = 1.0 / counts[c].max(1) as f64;
        for v in vars.row_mut(c) {
            *v = (*v * inv).max(VAR_FLOOR);
        }
    }
    // Responsibilities with empty clusters excluded (they would otherwise
    // produce NaNs; an empty cluster simply cannot attract nodes).
    let mut out = Mat::zeros(n, k);
    for i in 0..n {
        let mut logs = vec![f64::NEG_INFINITY; k];
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            let mut acc = 0.0;
            for ((&x, &m), &v) in z.row(i).iter().zip(means.row(c)).zip(vars.row(c)) {
                acc += (x - m) * (x - m) / v;
            }
            logs[c] = -0.5 * acc / temperature.max(1e-9);
        }
        let mx = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for l in &mut logs {
            *l = (*l - mx).exp();
            sum += *l;
        }
        for c in 0..k {
            out[(i, c)] = logs[c] / sum;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z_two_blobs() -> (Mat, Vec<usize>) {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.1, -0.1],
            vec![-0.1, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 4.9],
            vec![4.9, 5.1],
        ];
        (Mat::from_rows(&rows).unwrap(), vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn student_t_rows_are_distributions() {
        let (z, _) = z_two_blobs();
        let mu = Mat::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]).unwrap();
        let p = student_t_assignments(&z, &mu).unwrap();
        for i in 0..p.rows() {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // Points near a centroid assign to it.
        assert!(p[(0, 0)] > 0.9);
        assert!(p[(3, 1)] > 0.9);
    }

    #[test]
    fn student_t_rejects_dim_mismatch() {
        let z = Mat::zeros(2, 3);
        let mu = Mat::zeros(2, 2);
        assert!(student_t_assignments(&z, &mu).is_err());
    }

    #[test]
    fn dec_target_sharpens() {
        let p = Mat::from_rows(&[vec![0.7, 0.3], vec![0.6, 0.4]]).unwrap();
        let q = dec_target_distribution(&p);
        for i in 0..2 {
            assert!((q.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // High-confidence entries get amplified.
        assert!(q[(0, 0)] > p[(0, 0)]);
    }

    #[test]
    fn gaussian_soft_confident_on_blobs() {
        let (z, hard) = z_two_blobs();
        let p = gaussian_soft_assignments(&z, &hard, 2).unwrap();
        for i in 0..3 {
            assert!(p[(i, 0)] > 0.99, "{p:?}");
        }
        for i in 3..6 {
            assert!(p[(i, 1)] > 0.99, "{p:?}");
        }
    }

    #[test]
    fn gaussian_soft_rows_are_distributions() {
        let (z, hard) = z_two_blobs();
        let p = gaussian_soft_assignments(&z, &hard, 3).unwrap(); // one empty cluster
        for i in 0..z.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // Empty cluster attracts nobody.
        for i in 0..z.rows() {
            assert_eq!(p[(i, 2)], 0.0);
        }
    }

    #[test]
    fn gaussian_soft_rejects_bad_inputs() {
        let z = Mat::zeros(3, 2);
        assert!(gaussian_soft_assignments(&z, &[0, 0], 1).is_err());
        assert!(gaussian_soft_assignments(&z, &[0, 0, 5], 2).is_err());
        assert!(gaussian_soft_assignments(&z, &[0, 0, 0], 0).is_err());
    }

    #[test]
    fn borderline_point_is_uncertain() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![-0.5, 0.0],
            vec![10.0, 0.0],
            vec![8.0, 0.0],
            vec![12.0, 0.0],
            vec![5.0, 0.0], // half-way
        ];
        let z = Mat::from_rows(&rows).unwrap();
        let hard = vec![0, 0, 0, 1, 1, 1, 0];
        let p = gaussian_soft_assignments(&z, &hard, 2).unwrap();
        // The interior points are confident; relative to them the mid point
        // must be *less* confident about its top cluster.
        let mid_conf = p.row(6).iter().cloned().fold(f64::MIN, f64::max);
        let in_conf = p.row(0).iter().cloned().fold(f64::MIN, f64::max);
        assert!(mid_conf < in_conf);
    }
}

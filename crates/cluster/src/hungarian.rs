//! Kuhn–Munkres (Hungarian) assignment in O(n³).

use rgae_linalg::Mat;

/// Solve the square assignment problem: pick one column per row so that the
/// total cost is minimal. Returns `assignment[row] = col`.
///
/// Implementation: the classic potentials/augmenting-path formulation (the
/// "e-maxx" variant), O(n³) and numerically robust for `f64` costs.
pub fn hungarian(cost: &Mat) -> Vec<usize> {
    let n = cost.rows();
    assert_eq!(n, cost.cols(), "hungarian: square cost matrix required");
    if n == 0 {
        return Vec::new();
    }
    // 1-indexed internals, as in the classic formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1, j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost_of(c: &Mat, a: &[usize]) -> f64 {
        a.iter().enumerate().map(|(i, &j)| c[(i, j)]).sum()
    }

    #[test]
    fn identity_when_diagonal_cheapest() {
        let c = Mat::from_rows(&[
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ])
        .unwrap();
        assert_eq!(hungarian(&c), vec![0, 1, 2]);
    }

    #[test]
    fn classic_example() {
        // Known optimum: 1→2, 2→1, 3→0 variants; min total = 5.
        let c = Mat::from_rows(&[
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ])
        .unwrap();
        let a = hungarian(&c);
        assert!((cost_of(&c, &a) - 5.0).abs() < 1e-12, "{a:?}");
    }

    #[test]
    fn assignment_is_permutation() {
        let c = Mat::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
            vec![4.0, 8.0, 12.0, 16.0],
        ])
        .unwrap();
        let mut a = hungarian(&c);
        a.sort_unstable();
        assert_eq!(a, vec![0, 1, 2, 3]);
    }

    #[test]
    fn negative_costs_ok() {
        let c = Mat::from_rows(&[vec![-10.0, 0.0], vec![0.0, -10.0]]).unwrap();
        let a = hungarian(&c);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn brute_force_agreement_small_random() {
        use rgae_linalg::Rng64;
        let mut rng = Rng64::seed_from_u64(42);
        for _ in 0..50 {
            let n = 4;
            let c = rgae_linalg::uniform(n, n, 0.0, 10.0, &mut rng);
            let got = cost_of(&c, &hungarian(&c));
            // Brute force over all 4! permutations.
            let mut best = f64::INFINITY;
            let perms = [
                [0, 1, 2, 3],
                [0, 1, 3, 2],
                [0, 2, 1, 3],
                [0, 2, 3, 1],
                [0, 3, 1, 2],
                [0, 3, 2, 1],
                [1, 0, 2, 3],
                [1, 0, 3, 2],
                [1, 2, 0, 3],
                [1, 2, 3, 0],
                [1, 3, 0, 2],
                [1, 3, 2, 0],
                [2, 0, 1, 3],
                [2, 0, 3, 1],
                [2, 1, 0, 3],
                [2, 1, 3, 0],
                [2, 3, 0, 1],
                [2, 3, 1, 0],
                [3, 0, 1, 2],
                [3, 0, 2, 1],
                [3, 1, 0, 2],
                [3, 1, 2, 0],
                [3, 2, 0, 1],
                [3, 2, 1, 0],
            ];
            for p in &perms {
                let v: f64 = p.iter().enumerate().map(|(i, &j)| c[(i, j)]).sum();
                best = best.min(v);
            }
            assert!((got - best).abs() < 1e-9, "got {got} best {best}");
        }
    }

    #[test]
    fn empty_matrix() {
        assert!(hungarian(&Mat::zeros(0, 0)).is_empty());
    }
}

//! Diagonal-covariance Gaussian mixture fitted with EM.

use rgae_linalg::{Mat, Rng64};
use rgae_obs::{span, Recorder, NOOP};

use crate::{kmeans_traced, par_point_chunk, Error, Result};

/// A fitted diagonal-covariance Gaussian mixture model.
///
/// GMM-VGAE uses a mixture like this as the latent prior; the Ξ operator's
/// Eq. 15 also evaluates Gaussian responsibilities with a diagonal Σ.
#[derive(Clone, Debug)]
pub struct GaussianMixture {
    /// Mixing weights `π_k` (sum to one).
    pub weights: Vec<f64>,
    /// `K×d` component means.
    pub means: Mat,
    /// `K×d` component variances (diagonal Σ, floored at `var_floor`).
    pub variances: Mat,
    /// Final per-point log-likelihood average.
    pub avg_log_likelihood: f64,
}

const VAR_FLOOR: f64 = 1e-6;

impl GaussianMixture {
    /// Fit by EM, initialised from k-means.
    pub fn fit(points: &Mat, k: usize, max_iter: usize, rng: &mut Rng64) -> Result<Self> {
        Self::fit_traced(points, k, max_iter, rng, &NOOP)
    }

    /// [`GaussianMixture::fit`] reporting into a run-log recorder: a
    /// `gmm_fit` span (with the seeding k-means nested inside), the
    /// `gmm_em_iterations` counter, and the `gmm_avg_log_likelihood` gauge.
    pub fn fit_traced(
        points: &Mat,
        k: usize,
        max_iter: usize,
        rng: &mut Rng64,
        rec: &dyn Recorder,
    ) -> Result<Self> {
        let _gmm = span(rec, "gmm_fit");
        let n = points.rows();
        if k == 0 || n < k {
            return Err(Error::BadClusterCount {
                points: n,
                clusters: k,
            });
        }
        let d = points.cols();
        let km = kmeans_traced(points, k, 50, rng, rec)?;
        let mut means = km.centroids;
        let mut variances = Mat::full(k, d, 1.0);
        // Initial variances from the k-means partition.
        {
            let mut counts = vec![0usize; k];
            let mut acc = Mat::zeros(k, d);
            for i in 0..n {
                let c = km.assignments[i];
                counts[c] += 1;
                for (a, (&p, &m)) in acc
                    .row_mut(c)
                    .iter_mut()
                    .zip(points.row(i).iter().zip(means.row(c)))
                {
                    *a += (p - m) * (p - m);
                }
            }
            for c in 0..k {
                let inv = 1.0 / counts[c].max(1) as f64;
                for (v, &a) in variances.row_mut(c).iter_mut().zip(acc.row(c)) {
                    *v = (a * inv).max(VAR_FLOOR);
                }
            }
        }
        let mut weights = vec![1.0 / k as f64; k];
        let mut avg_ll = f64::NEG_INFINITY;
        let mut em_iterations = 0u64;

        for _ in 0..max_iter {
            em_iterations += 1;
            // E step: responsibilities via log-sum-exp, point-parallel. The
            // log-likelihood is accumulated as one partial per point and
            // folded in index order afterwards, so its bits cannot depend on
            // the thread count.
            let mut resp = Mat::zeros(n, k);
            let mut point_ll = vec![0.0f64; n];
            let chunk = par_point_chunk(n, k * d);
            rgae_par::timed("gmm_estep", || {
                let (weights, means, variances) = (&weights, &means, &variances);
                rgae_par::par_zip_chunks_mut(
                    resp.as_mut_slice(),
                    chunk * k,
                    &mut point_ll,
                    chunk,
                    |ci, resp_w, ll_w| {
                        let i0 = ci * chunk;
                        for (r, (resp_row, ll)) in
                            resp_w.chunks_mut(k).zip(ll_w.iter_mut()).enumerate()
                        {
                            let i = i0 + r;
                            let mut logp = vec![0.0; k];
                            for c in 0..k {
                                logp[c] = weights[c].max(1e-300).ln()
                                    + log_gauss_diag(points.row(i), means.row(c), variances.row(c));
                            }
                            let mx = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                            let mut sum = 0.0;
                            for lp in &mut logp {
                                *lp = (*lp - mx).exp();
                                sum += *lp;
                            }
                            *ll = mx + sum.ln();
                            for c in 0..k {
                                resp_row[c] = logp[c] / sum;
                            }
                        }
                    },
                );
            });
            let ll: f64 = point_ll.iter().sum();
            let new_avg = ll / n as f64;
            let converged = (new_avg - avg_ll).abs() < 1e-7;
            avg_ll = new_avg;

            // M step: cluster-parallel. Each task owns one cluster's stats
            // stripe `[mean(d) | var(d) | weight]`, scanning the points in
            // ascending order exactly as the serial loop did.
            let nk: Vec<f64> = (0..k).map(|c| resp.col(c).iter().sum()).collect();
            let mut stats = vec![0.0f64; k * (2 * d + 1)];
            rgae_par::timed("gmm_mstep", || {
                let (nk, resp) = (&nk, &resp);
                rgae_par::par_chunks_mut(&mut stats, 2 * d + 1, |c, stripe| {
                    let denom = nk[c].max(1e-12);
                    let (mean, rest) = stripe.split_at_mut(d);
                    let (var, weight) = rest.split_at_mut(d);
                    weight[0] = nk[c] / n as f64;
                    for i in 0..n {
                        let r = resp[(i, c)];
                        for (m, &p) in mean.iter_mut().zip(points.row(i)) {
                            *m += r * p;
                        }
                    }
                    for m in mean.iter_mut() {
                        *m /= denom;
                    }
                    for i in 0..n {
                        let r = resp[(i, c)];
                        for (v, (&p, &m)) in var.iter_mut().zip(points.row(i).iter().zip(&*mean)) {
                            *v += r * (p - m) * (p - m);
                        }
                    }
                    for v in var.iter_mut() {
                        *v = (*v / denom).max(VAR_FLOOR);
                    }
                });
            });
            for c in 0..k {
                let stripe = &stats[c * (2 * d + 1)..(c + 1) * (2 * d + 1)];
                means.row_mut(c).copy_from_slice(&stripe[..d]);
                variances.row_mut(c).copy_from_slice(&stripe[d..2 * d]);
                weights[c] = stripe[2 * d];
            }
            if converged {
                break;
            }
        }
        rec.count("gmm_em_iterations", em_iterations);
        if rec.enabled() {
            rec.gauge("gmm_avg_log_likelihood", None, avg_ll);
        }
        Ok(GaussianMixture {
            weights,
            means,
            variances,
            avg_log_likelihood: avg_ll,
        })
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// Posterior responsibilities `p(k | x_i)` → `(n, K)` rows summing to 1.
    pub fn responsibilities(&self, points: &Mat) -> Mat {
        let n = points.rows();
        let k = self.k();
        let mut out = Mat::zeros(n, k);
        if n == 0 {
            return out;
        }
        let chunk = par_point_chunk(n, k * points.cols());
        rgae_par::par_chunks_mut(out.as_mut_slice(), chunk * k, |ci, w| {
            let i0 = ci * chunk;
            for (r, out_row) in w.chunks_mut(k).enumerate() {
                let i = i0 + r;
                let mut logp = vec![0.0; k];
                for c in 0..k {
                    logp[c] = self.weights[c].max(1e-300).ln()
                        + log_gauss_diag(points.row(i), self.means.row(c), self.variances.row(c));
                }
                let mx = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for lp in &mut logp {
                    *lp = (*lp - mx).exp();
                    sum += *lp;
                }
                for c in 0..k {
                    out_row[c] = logp[c] / sum;
                }
            }
        });
        out
    }

    /// Hard assignments (argmax responsibility).
    pub fn predict(&self, points: &Mat) -> Vec<usize> {
        self.responsibilities(points).row_argmax()
    }
}

/// Log-density of a diagonal Gaussian.
fn log_gauss_diag(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let ln2pi = (2.0 * std::f64::consts::PI).ln();
    let mut acc = 0.0;
    for ((&xi, &mi), &vi) in x.iter().zip(mean).zip(var) {
        let v = vi.max(VAR_FLOOR);
        acc += -0.5 * (ln2pi + v.ln() + (xi - mi) * (xi - mi) / v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(rng: &mut Rng64, sep: f64) -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for k in 0..2 {
            for _ in 0..60 {
                rows.push(vec![
                    rng.normal_with(k as f64 * sep, 0.4),
                    rng.normal_with(0.0, 0.4),
                ]);
                labels.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fits_two_separated_blobs() {
        let mut rng = Rng64::seed_from_u64(1);
        let (x, labels) = blobs(&mut rng, 8.0);
        let gmm = GaussianMixture::fit(&x, 2, 100, &mut rng).unwrap();
        let pred = gmm.predict(&x);
        // Up to label permutation the prediction is perfect.
        let agree = pred.iter().zip(&labels).filter(|(&p, &l)| p == l).count();
        let acc = agree.max(pred.len() - agree) as f64 / pred.len() as f64;
        assert!(acc > 0.98, "acc {acc}");
    }

    #[test]
    fn responsibilities_are_distributions() {
        let mut rng = Rng64::seed_from_u64(2);
        let (x, _) = blobs(&mut rng, 5.0);
        let gmm = GaussianMixture::fit(&x, 3, 50, &mut rng).unwrap();
        let r = gmm.responsibilities(&x);
        for i in 0..x.rows() {
            let s: f64 = r.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(r.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let mut rng = Rng64::seed_from_u64(3);
        let (x, _) = blobs(&mut rng, 6.0);
        let gmm = GaussianMixture::fit(&x, 2, 50, &mut rng).unwrap();
        assert!((gmm.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variances_floored_positive() {
        // Duplicate points would produce zero variance without the floor.
        let x = Mat::from_rows(&vec![vec![1.0, 1.0]; 10]).unwrap();
        let mut rng = Rng64::seed_from_u64(4);
        let gmm = GaussianMixture::fit(&x, 1, 20, &mut rng).unwrap();
        assert!(gmm.variances.as_slice().iter().all(|&v| v >= VAR_FLOOR));
    }

    #[test]
    fn likelihood_improves_with_right_k() {
        let mut rng = Rng64::seed_from_u64(5);
        let (x, _) = blobs(&mut rng, 10.0);
        let g1 = GaussianMixture::fit(&x, 1, 100, &mut rng).unwrap();
        let g2 = GaussianMixture::fit(&x, 2, 100, &mut rng).unwrap();
        assert!(g2.avg_log_likelihood > g1.avg_log_likelihood);
    }

    #[test]
    fn rejects_bad_k() {
        let x = Mat::zeros(2, 2);
        let mut rng = Rng64::seed_from_u64(6);
        assert!(GaussianMixture::fit(&x, 0, 10, &mut rng).is_err());
        assert!(GaussianMixture::fit(&x, 5, 10, &mut rng).is_err());
    }
}

//! External clustering metrics: ACC (Hungarian-matched accuracy), NMI, ARI.

use rgae_linalg::Mat;

use crate::hungarian;

/// Contingency table: `table[p][t]` counts points predicted `p` with true
/// label `t`. Both label spaces are padded to a common size.
pub fn confusion_matrix(pred: &[usize], truth: &[usize]) -> Mat {
    assert_eq!(pred.len(), truth.len(), "confusion: length mismatch");
    let kp = pred.iter().copied().max().map_or(0, |m| m + 1);
    let kt = truth.iter().copied().max().map_or(0, |m| m + 1);
    let k = kp.max(kt);
    let mut table = Mat::zeros(k, k);
    for (&p, &t) in pred.iter().zip(truth) {
        table[(p, t)] += 1.0;
    }
    table
}

/// Best mapping from predicted cluster ids to true label ids (the paper's
/// `𝔸_H`): `mapping[pred_cluster] = label`. Computed by Hungarian matching on
/// the negated contingency table.
pub fn best_mapping(pred: &[usize], truth: &[usize]) -> Vec<usize> {
    let table = confusion_matrix(pred, truth);
    let cost = table.scale(-1.0);
    hungarian(&cost)
}

/// Relabel predictions through the optimal mapping, producing the paper's
/// `y(Q') = 𝔸_H(Q, P)` signal: ground truth expressed in the predicted
/// clusters' id space — i.e. predictions replaced by their best-matching
/// label.
pub fn map_predictions_to_labels(pred: &[usize], truth: &[usize]) -> Vec<usize> {
    let mapping = best_mapping(pred, truth);
    pred.iter().map(|&p| mapping[p]).collect()
}

/// Unsupervised clustering accuracy: fraction correct under the best
/// cluster→label mapping.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "accuracy: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let mapped = map_predictions_to_labels(pred, truth);
    let hits = mapped.iter().zip(truth).filter(|(m, t)| m == t).count();
    hits as f64 / pred.len() as f64
}

/// Normalised mutual information with arithmetic-mean normalisation
/// (`sklearn`'s default): `NMI = 2·I(P; T) / (H(P) + H(T))`.
pub fn nmi(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "nmi: length mismatch");
    let n = pred.len();
    if n == 0 {
        return 0.0;
    }
    let table = confusion_matrix(pred, truth);
    let k = table.rows();
    let nf = n as f64;
    let row: Vec<f64> = table.row_sums();
    let col: Vec<f64> = table.col_sums();
    let mut mi = 0.0;
    for i in 0..k {
        for j in 0..k {
            let nij = table[(i, j)];
            if nij > 0.0 {
                mi += (nij / nf) * ((nij * nf) / (row[i] * col[j])).ln();
            }
        }
    }
    let h = |counts: &[f64]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / nf;
                -p * p.ln()
            })
            .sum()
    };
    let hp = h(&row);
    let ht = h(&col);
    if hp + ht <= 0.0 {
        // Both partitions trivial (single cluster): conventionally 1 when
        // identical, here both entropies zero ⇒ define as 1.
        1.0
    } else {
        (2.0 * mi / (hp + ht)).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index.
pub fn ari(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "ari: length mismatch");
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let table = confusion_matrix(pred, truth);
    let k = table.rows();
    let comb2 = |x: f64| x * (x - 1.0) / 2.0;
    let mut sum_ij = 0.0;
    for i in 0..k {
        for j in 0..k {
            sum_ij += comb2(table[(i, j)]);
        }
    }
    let sum_i: f64 = table.row_sums().iter().map(|&r| comb2(r)).sum();
    let sum_j: f64 = table.col_sums().iter().map(|&c| comb2(c)).sum();
    let total = comb2(n as f64);
    let expected = sum_i * sum_j / total;
    let max_index = 0.5 * (sum_i + sum_j);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: identical trivial partitions.
        return if sum_ij == max_index { 1.0 } else { 0.0 };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_up_to_permutation() {
        let truth = [0, 0, 1, 1, 2, 2];
        let pred = [2, 2, 0, 0, 1, 1];
        assert!((accuracy(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!((nmi(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!((ari(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_mislabel() {
        let truth = [0, 0, 0, 1, 1, 1];
        let pred = [1, 1, 1, 0, 0, 1]; // last point wrong after mapping
        assert!((accuracy(&pred, &truth) - 5.0 / 6.0).abs() < 1e-12);
        assert!(nmi(&pred, &truth) < 1.0);
        assert!(ari(&pred, &truth) < 1.0);
    }

    #[test]
    fn random_labels_near_zero_ari() {
        use rgae_linalg::Rng64;
        let mut rng = Rng64::seed_from_u64(1);
        let n = 5000;
        let truth: Vec<usize> = (0..n).map(|_| rng.index(4)).collect();
        let pred: Vec<usize> = (0..n).map(|_| rng.index(4)).collect();
        let a = ari(&pred, &truth);
        assert!(a.abs() < 0.02, "ari {a}");
        assert!(nmi(&pred, &truth) < 0.02);
    }

    #[test]
    fn accuracy_bounded_below_by_chance() {
        // Constant prediction on balanced labels → ACC = 1/K.
        let truth = [0, 1, 2, 0, 1, 2];
        let pred = [0; 6];
        assert!((accuracy(&pred, &truth) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_of_constant_prediction_is_zero() {
        let truth = [0, 1, 0, 1];
        let pred = [0, 0, 0, 0];
        assert_eq!(nmi(&pred, &truth), 0.0);
    }

    #[test]
    fn mapping_translates_pred_space() {
        let truth = [0, 0, 1, 1];
        let pred = [1, 1, 0, 0];
        let mapped = map_predictions_to_labels(&pred, &truth);
        assert_eq!(mapped, vec![0, 0, 1, 1]);
    }

    #[test]
    fn metrics_symmetric_in_label_permutation() {
        let truth = [0, 0, 1, 1, 2, 2, 0, 1];
        let pred = [0, 1, 1, 1, 2, 2, 0, 0];
        let permuted: Vec<usize> = pred.iter().map(|&p| (p + 1) % 3).collect();
        assert!((accuracy(&pred, &truth) - accuracy(&permuted, &truth)).abs() < 1e-12);
        assert!((nmi(&pred, &truth) - nmi(&permuted, &truth)).abs() < 1e-12);
        assert!((ari(&pred, &truth) - ari(&permuted, &truth)).abs() < 1e-12);
    }

    #[test]
    fn unbalanced_cluster_counts() {
        // More predicted clusters than true labels.
        let truth = [0, 0, 0, 1, 1, 1];
        let pred = [0, 0, 1, 2, 2, 2];
        let acc = accuracy(&pred, &truth);
        assert!((acc - 5.0 / 6.0).abs() < 1e-12, "acc {acc}");
    }

    #[test]
    fn confusion_matrix_counts() {
        let truth = [0, 1, 1];
        let pred = [1, 1, 0];
        let t = confusion_matrix(&pred, &truth);
        assert_eq!(t[(1, 0)], 1.0);
        assert_eq!(t[(1, 1)], 1.0);
        assert_eq!(t[(0, 1)], 1.0);
        assert_eq!(t[(0, 0)], 0.0);
    }
}

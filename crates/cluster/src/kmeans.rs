//! k-means with k-means++ seeding.

use rgae_linalg::{Mat, Rng64};
use rgae_obs::{span, Recorder, NOOP};

use crate::{par_point_chunk, Error, Result};

/// Output of [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster index per point.
    pub assignments: Vec<usize>,
    /// `K×d` matrix of centroids.
    pub centroids: Mat,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// k-means++ seeding followed by Lloyd iterations until assignment
/// convergence or `max_iter`.
///
/// Empty clusters are re-seeded with the point farthest from its centroid,
/// so the result always has exactly `k` non-empty clusters when `n ≥ k`.
pub fn kmeans(points: &Mat, k: usize, max_iter: usize, rng: &mut Rng64) -> Result<KMeansResult> {
    kmeans_traced(points, k, max_iter, rng, &NOOP)
}

/// [`kmeans`] reporting into a run-log recorder: a `kmeans` span plus the
/// `kmeans_iterations` counter and `kmeans_inertia` gauge.
pub fn kmeans_traced(
    points: &Mat,
    k: usize,
    max_iter: usize,
    rng: &mut Rng64,
    rec: &dyn Recorder,
) -> Result<KMeansResult> {
    let _kmeans = span(rec, "kmeans");
    let n = points.rows();
    if k == 0 || n < k {
        return Err(Error::BadClusterCount {
            points: n,
            clusters: k,
        });
    }
    let d = points.cols();

    // --- k-means++ seeding ---------------------------------------------
    let mut centroids = Mat::zeros(k, d);
    let first = rng.index(n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut min_sq = vec![f64::INFINITY; n];
    for c in 1..k {
        // Per-point distance refresh is independent per element, so it can
        // chunk freely; the RNG draw below stays serial and in order.
        let chunk = par_point_chunk(n, d);
        let prev = centroids.row(c - 1).to_vec();
        rgae_par::par_chunks_mut(&mut min_sq, chunk, |ci, w| {
            let i0 = ci * chunk;
            for (r, m) in w.iter_mut().enumerate() {
                let dist = points.row_sq_dist(i0 + r, &prev);
                if dist < *m {
                    *m = dist;
                }
            }
        });
        let next = rng.categorical(&min_sq);
        centroids.row_mut(c).copy_from_slice(points.row(next));
    }

    // --- Lloyd iterations ------------------------------------------------
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assignment step: per-point nearest centroid, point-parallel.
        // Each task owns a stripe of `assignments` plus one change flag.
        let chunk = par_point_chunk(n, k * d);
        let n_chunks = n.div_ceil(chunk);
        let mut chunk_changed = vec![0u8; n_chunks];
        rgae_par::timed("kmeans_assign", || {
            rgae_par::par_zip_chunks_mut(
                &mut assignments,
                chunk,
                &mut chunk_changed,
                1,
                |ci, assign_w, flag| {
                    let i0 = ci * chunk;
                    for (r, a) in assign_w.iter_mut().enumerate() {
                        let i = i0 + r;
                        let mut best = 0;
                        let mut best_d = f64::INFINITY;
                        for c in 0..k {
                            let dist = points.row_sq_dist(i, centroids.row(c));
                            if dist < best_d {
                                best_d = dist;
                                best = c;
                            }
                        }
                        if *a != best {
                            *a = best;
                            flag[0] = 1;
                        }
                    }
                },
            );
        });
        let changed = chunk_changed.iter().any(|&f| f != 0);
        if !changed && it > 0 {
            break;
        }
        // Update step.
        let mut counts = vec![0usize; k];
        let mut sums = Mat::zeros(k, d);
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &p) in sums.row_mut(c).iter_mut().zip(points.row(i)) {
                *s += p;
            }
        }
        // Empty-cluster re-seeding is decided *before* any centroid moves:
        // the farthest-point ranking is computed once against the snapshot
        // of assignments and centroids the assignment step produced, so the
        // selection is independent of how that step was chunked (and of any
        // previously re-seeded cluster in the same pass).
        let empties: Vec<usize> = (0..k).filter(|&c| counts[c] == 0).collect();
        let mut reseeds: Vec<(usize, usize)> = Vec::with_capacity(empties.len());
        if !empties.is_empty() {
            let far_chunk = par_point_chunk(n, d);
            let mut far_dist = vec![0.0f64; n];
            rgae_par::par_chunks_mut(&mut far_dist, far_chunk, |ci, w| {
                let i0 = ci * far_chunk;
                for (r, out) in w.iter_mut().enumerate() {
                    let i = i0 + r;
                    *out = points.row_sq_dist(i, centroids.row(assignments[i]));
                }
            });
            let mut taken = vec![false; n];
            for &c in &empties {
                let mut far = 0;
                let mut best = f64::NEG_INFINITY;
                for i in 0..n {
                    // `>=` keeps the last maximum, matching `max_by` ties.
                    if !taken[i] && far_dist[i] >= best {
                        best = far_dist[i];
                        far = i;
                    }
                }
                taken[far] = true;
                reseeds.push((c, far));
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for (ctr, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *ctr = s * inv;
                }
            }
        }
        for &(c, far) in &reseeds {
            centroids.row_mut(c).copy_from_slice(points.row(far));
            assignments[far] = c;
        }
    }

    // Ordered reduction: fixed-width per-point partials folded in index
    // order, identical at any thread count.
    let inertia: f64 = rgae_par::par_sum_by(n, |range| {
        range
            .map(|i| points.row_sq_dist(i, centroids.row(assignments[i])))
            .sum::<f64>()
    });
    rec.count("kmeans_iterations", iterations as u64);
    if rec.enabled() {
        rec.gauge("kmeans_inertia", None, inertia);
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs(rng: &mut Rng64) -> (Mat, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (k, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                rows.push(vec![rng.normal_with(cx, 0.5), rng.normal_with(cy, 0.5)]);
                labels.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = Rng64::seed_from_u64(1);
        let (x, labels) = blobs(&mut rng);
        let res = kmeans(&x, 3, 100, &mut rng).unwrap();
        // Every blob must map to one pure cluster.
        for chunk in 0..3 {
            let first = res.assignments[chunk * 30];
            for i in 0..30 {
                assert_eq!(res.assignments[chunk * 30 + i], first);
            }
        }
        // And different blobs to different clusters.
        let a = res.assignments[0];
        let b = res.assignments[30];
        let c = res.assignments[60];
        assert!(a != b && b != c && a != c);
        let _ = labels;
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut rng = Rng64::seed_from_u64(2);
        let (x, _) = blobs(&mut rng);
        let r1 = kmeans(&x, 1, 50, &mut rng).unwrap();
        let r3 = kmeans(&x, 3, 50, &mut rng).unwrap();
        assert!(r3.inertia < r1.inertia);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let x = Mat::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]]).unwrap();
        let mut rng = Rng64::seed_from_u64(3);
        let res = kmeans(&x, 3, 50, &mut rng).unwrap();
        assert!(res.inertia < 1e-12);
        let mut sorted = res.assignments.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_bad_k() {
        let x = Mat::zeros(2, 2);
        let mut rng = Rng64::seed_from_u64(4);
        assert!(kmeans(&x, 0, 10, &mut rng).is_err());
        assert!(kmeans(&x, 3, 10, &mut rng).is_err());
    }

    #[test]
    fn all_clusters_non_empty() {
        let mut rng = Rng64::seed_from_u64(5);
        let (x, _) = blobs(&mut rng);
        let res = kmeans(&x, 5, 100, &mut rng).unwrap();
        let mut counts = vec![0usize; 5];
        for &a in &res.assignments {
            counts[a] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    /// Regression for the empty-cluster re-seed: the farthest-point draw is
    /// taken from a snapshot *before* any centroid update, so the selection
    /// cannot depend on how the assignment step was chunked. Running k=5 on
    /// 3 blobs across many seeds exercises the re-seed path repeatedly; the
    /// result must be bit-identical at every thread count.
    #[test]
    fn reseed_is_thread_count_invariant() {
        for seed in 0..20 {
            let mut rng = Rng64::seed_from_u64(seed);
            let (x, _) = blobs(&mut rng);
            let reference = rgae_par::with_threads(1, || {
                let mut r = Rng64::seed_from_u64(seed + 100);
                kmeans(&x, 5, 100, &mut r).unwrap()
            });
            let mut counts = vec![0usize; 5];
            for &a in &reference.assignments {
                counts[a] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "empty cluster: {counts:?}");
            for t in [2, 3, 8] {
                let got = rgae_par::with_threads(t, || {
                    let mut r = Rng64::seed_from_u64(seed + 100);
                    kmeans(&x, 5, 100, &mut r).unwrap()
                });
                assert_eq!(got.assignments, reference.assignments, "threads={t}");
                assert_eq!(
                    got.centroids.as_slice(),
                    reference.centroids.as_slice(),
                    "threads={t}"
                );
                assert_eq!(
                    got.inertia.to_bits(),
                    reference.inertia.to_bits(),
                    "threads={t}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng1 = Rng64::seed_from_u64(6);
        let (x, _) = blobs(&mut rng1);
        let mut ra = Rng64::seed_from_u64(7);
        let mut rb = Rng64::seed_from_u64(7);
        let r1 = kmeans(&x, 3, 100, &mut ra).unwrap();
        let r2 = kmeans(&x, 3, 100, &mut rb).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
    }
}

//! Property-based tests of the clustering metrics and soft-assignment
//! kernels: invariances that must hold for *any* input.

use proptest::prelude::*;
use rgae_cluster::{
    accuracy, ari, dec_target_distribution, gaussian_soft_assignments_tempered, hungarian, nmi,
    student_t_assignments,
};
use rgae_linalg::Mat;

/// Strategy: a labelling of `n` points into at most `k` clusters.
fn labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, n)
}

proptest! {
    /// ACC/NMI/ARI are invariant to any relabelling (permutation) of the
    /// predicted cluster ids.
    #[test]
    fn metrics_invariant_to_prediction_relabelling(
        truth in labels(40, 4),
        pred in labels(40, 4),
        shift in 1usize..4,
    ) {
        let permuted: Vec<usize> = pred.iter().map(|&p| (p + shift) % 4).collect();
        prop_assert!((accuracy(&pred, &truth) - accuracy(&permuted, &truth)).abs() < 1e-12);
        prop_assert!((nmi(&pred, &truth) - nmi(&permuted, &truth)).abs() < 1e-12);
        prop_assert!((ari(&pred, &truth) - ari(&permuted, &truth)).abs() < 1e-12);
    }

    /// All three metrics reach their maximum exactly on a perfect (up to
    /// relabelling) prediction.
    #[test]
    fn metrics_maximal_on_perfect_prediction(truth in labels(30, 3), shift in 0usize..3) {
        let pred: Vec<usize> = truth.iter().map(|&t| (t + shift) % 3).collect();
        prop_assert!((accuracy(&pred, &truth) - 1.0).abs() < 1e-12);
        prop_assert!((nmi(&pred, &truth) - 1.0).abs() < 1e-12);
        prop_assert!((ari(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    /// Bounds: ACC ∈ [1/K-ish, 1], NMI ∈ [0, 1], ARI ∈ [-1, 1]; Hungarian
    /// matching guarantees ACC at least the share of the largest class.
    #[test]
    fn metric_bounds(truth in labels(50, 5), pred in labels(50, 5)) {
        let a = accuracy(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&a));
        let n = nmi(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&n));
        let r = ari(&pred, &truth);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
    }

    /// Symmetry of NMI and ARI in their two arguments.
    #[test]
    fn nmi_ari_symmetric(a in labels(35, 4), b in labels(35, 4)) {
        prop_assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-9);
        prop_assert!((ari(&a, &b) - ari(&b, &a)).abs() < 1e-9);
    }

    /// The Hungarian solution never costs more than the identity assignment
    /// or the reversed assignment (any permutation is an upper bound).
    #[test]
    fn hungarian_is_no_worse_than_known_permutations(
        cells in proptest::collection::vec(0.0f64..10.0, 16)
    ) {
        let cost = Mat::from_vec(4, 4, cells).unwrap();
        let assignment = hungarian(&cost);
        let opt: f64 = assignment.iter().enumerate().map(|(i, &j)| cost[(i, j)]).sum();
        let id: f64 = (0..4).map(|i| cost[(i, i)]).sum();
        let rev: f64 = (0..4).map(|i| cost[(i, 3 - i)]).sum();
        prop_assert!(opt <= id + 1e-9);
        prop_assert!(opt <= rev + 1e-9);
    }

    /// Student-t assignments: rows are distributions and the nearest
    /// centroid always gets the highest probability.
    #[test]
    fn student_t_rows_valid_and_monotone(
        zv in proptest::collection::vec(-5.0f64..5.0, 12),
        mv in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        let z = Mat::from_vec(6, 2, zv).unwrap();
        let mu = Mat::from_vec(3, 2, mv).unwrap();
        let p = student_t_assignments(&z, &mu).unwrap();
        for i in 0..6 {
            let s: f64 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            // argmax of p == argmin of distance.
            let dists: Vec<f64> = (0..3).map(|c| z.row_sq_dist(i, mu.row(c))).collect();
            let nearest = dists
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let top = p.row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            // Ties can flip the argmax; only check when strictly nearest.
            let strictly = dists.iter().filter(|&&d| (d - dists[nearest]).abs() < 1e-12).count() == 1;
            if strictly {
                prop_assert_eq!(top, nearest);
            }
        }
    }

    /// DEC target: row-stochastic and never less peaked than P.
    #[test]
    fn dec_target_row_stochastic(pv in proptest::collection::vec(0.01f64..1.0, 12)) {
        let mut p = Mat::from_vec(4, 3, pv).unwrap();
        for i in 0..4 {
            let s: f64 = p.row(i).iter().sum();
            for e in p.row_mut(i) { *e /= s; }
        }
        let q = dec_target_distribution(&p);
        for i in 0..4 {
            let s: f64 = q.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    /// Tempering never changes the argmax of the Eq. 15 kernel.
    #[test]
    fn tempering_preserves_argmax(
        zv in proptest::collection::vec(-3.0f64..3.0, 20),
        hard in proptest::collection::vec(0usize..2, 10),
    ) {
        let z = Mat::from_vec(10, 2, zv).unwrap();
        // Ensure both clusters are inhabited.
        let mut hard = hard;
        hard[0] = 0;
        hard[1] = 1;
        let exact = gaussian_soft_assignments_tempered(&z, &hard, 2, 1.0).unwrap();
        let tempered = gaussian_soft_assignments_tempered(&z, &hard, 2, 16.0).unwrap();
        for i in 0..10 {
            // Only assert when the exact kernel has a clear winner.
            let margin = (exact[(i, 0)] - exact[(i, 1)]).abs();
            if margin > 1e-6 {
                prop_assert_eq!(
                    exact.row_argmax()[i],
                    tempered.row_argmax()[i],
                    "row {} margins exact={:?} tempered={:?}",
                    i, exact.row(i), tempered.row(i)
                );
            }
        }
    }
}

//! Large-N smoke test for the tiled fused decoder.
//!
//! At N = 6000 the legacy dense decoder needs three live N×N buffers in its
//! backward (logits, BCE gradient, transpose) — ~864 MB of transient f64 —
//! which OOMs or crawls on a CI runner. The fused tiled kernel holds one
//! B×N panel plus the N×d gradient accumulator (tens of MB), so a full
//! train step completes comfortably. Run with `--ignored` (CI does, in
//! release); it is too heavy for the default `cargo test` sweep.

use std::rc::Rc;

use rgae_graph::AttributedGraph;
use rgae_linalg::{Mat, Rng64};
use rgae_models::{Gae, GaeModel, StepSpec, TrainData};

const N: usize = 6000;

fn big_graph() -> AttributedGraph {
    let mut rng = Rng64::seed_from_u64(9);
    // Ring + random chords: connected, sparse (avg degree ≈ 6), no dense
    // structure anywhere.
    let mut edges: Vec<(usize, usize)> = (0..N).map(|i| (i, (i + 1) % N)).collect();
    for _ in 0..2 * N {
        let (a, b) = (rng.index(N), rng.index(N));
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    let features = rgae_linalg::standard_normal(N, 8, &mut rng);
    let labels: Vec<usize> = (0..N).map(|i| i % 4).collect();
    AttributedGraph::from_edges("large-n", N, &edges, features, labels, 4).unwrap()
}

#[test]
#[ignore = "heavy: N=6000 full train steps; CI runs it in release"]
fn fused_decoder_trains_at_n_6000() {
    // The dense gram alone would be N²×8 bytes; the fused panel is a small
    // fixed multiple of N. Assert the memory claim before spending time.
    let panel = rgae_linalg::fused_panel_bytes(N);
    assert!(
        panel * 4 < N * N * 8,
        "tiled panel ({panel} B) must be far below a dense gram ({} B)",
        N * N * 8
    );

    let graph = big_graph();
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(9);
    let mut model = Gae::new(data.num_features(), &mut rng);
    let spec = StepSpec::pretrain(Rc::clone(&data.adjacency));
    let mut losses = Vec::new();
    for _ in 0..3 {
        losses.push(model.train_step(&data, &spec, &mut rng).unwrap());
    }
    assert!(
        losses.iter().all(|l| l.is_finite()),
        "losses must stay finite: {losses:?}"
    );
    assert!(
        losses[2] < losses[0],
        "training must make progress: {losses:?}"
    );
    let z: Mat = model.embed(&data);
    assert_eq!(z.rows(), N);
    assert!(z.as_slice().iter().all(|v| v.is_finite()));
}

//! End-to-end training behaviour of every model on a small synthetic
//! benchmark: losses go down, embeddings become cluster-informative, the
//! gradient accessors behave, and misuse is rejected.

use std::rc::Rc;

use rgae_cluster::{accuracy, kmeans};
use rgae_datasets::{citation_like, CitationSpec};
use rgae_graph::AttributedGraph;
use rgae_linalg::{cosine, Csr, Rng64};
use rgae_models::{
    Argae, Arvgae, ClusterStep, Dgae, Gae, GaeModel, GmmVgae, StepSpec, TrainData, Vgae,
};

fn small_graph(seed: u64) -> AttributedGraph {
    citation_like(
        &CitationSpec {
            name: "small".into(),
            num_nodes: 150,
            num_classes: 3,
            num_features: 80,
            avg_degree: 5.0,
            homophily: 0.88,
            degree_power: 2.8,
            words_per_node: 12,
            topic_purity: 0.85,
            class_proportions: vec![],
        },
        seed,
    )
    .unwrap()
}

fn pretrain(
    model: &mut dyn GaeModel,
    data: &TrainData,
    epochs: usize,
    rng: &mut Rng64,
) -> Vec<f64> {
    let spec = StepSpec::pretrain(Rc::clone(&data.adjacency));
    (0..epochs)
        .map(|_| model.train_step(data, &spec, rng).unwrap())
        .collect()
}

fn kmeans_acc(z: &rgae_linalg::Mat, labels: &[usize], k: usize, rng: &mut Rng64) -> f64 {
    let km = kmeans(z, k, 100, rng).unwrap();
    accuracy(&km.assignments, labels)
}

#[test]
fn gae_pretraining_reduces_loss_and_clusters() {
    let g = small_graph(1);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(1);
    let mut model = Gae::new(data.num_features(), &mut rng);
    let losses = pretrain(&mut model, &data, 80, &mut rng);
    assert!(losses.iter().all(|l| l.is_finite()));
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.9),
        "loss did not drop: {} -> {}",
        losses[0],
        losses.last().unwrap()
    );
    let z = model.embed(&data);
    let acc = kmeans_acc(&z, g.labels(), 3, &mut rng);
    assert!(acc > 0.55, "GAE embedding acc {acc}");
}

#[test]
fn vgae_pretraining_reduces_loss() {
    let g = small_graph(2);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(2);
    let mut model = Vgae::new(data.num_features(), &mut rng);
    let losses = pretrain(&mut model, &data, 80, &mut rng);
    assert!(losses.last().unwrap() < &losses[0]);
    let z = model.embed(&data);
    assert!(z.all_finite());
    let acc = kmeans_acc(&z, g.labels(), 3, &mut rng);
    assert!(acc > 0.5, "VGAE embedding acc {acc}");
}

#[test]
fn argae_and_arvgae_train_stably() {
    let g = small_graph(3);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(3);
    let mut a = Argae::new(data.num_features(), &mut rng);
    let mut av = Arvgae::new(data.num_features(), &mut rng);
    let la = pretrain(&mut a, &data, 50, &mut rng);
    let lv = pretrain(&mut av, &data, 50, &mut rng);
    assert!(la.iter().chain(lv.iter()).all(|l| l.is_finite()));
    assert!(a.embed(&data).all_finite());
    assert!(av.embed(&data).all_finite());
    // Latent codes should be pulled towards the prior: bounded scale.
    let z = a.embed(&data);
    let scale = z.frob_norm() / (z.rows() as f64).sqrt();
    assert!(scale < 50.0, "latent scale {scale}");
}

#[test]
fn first_group_rejects_cluster_steps() {
    let g = small_graph(4);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(4);
    let mut model = Gae::new(data.num_features(), &mut rng);
    let spec = StepSpec {
        recon_target: Some(Rc::clone(&data.adjacency)),
        gamma: 1.0,
        cluster: Some(ClusterStep {
            target: rgae_linalg::Mat::full(data.num_nodes, 3, 1.0 / 3.0),
            omega: None,
        }),
    };
    assert!(model.train_step(&data, &spec, &mut rng).is_err());
    assert!(model
        .clustering_grad(&data, &spec.cluster.as_ref().unwrap().target, None)
        .unwrap()
        .is_none());
}

#[test]
fn dgae_requires_init_then_improves() {
    let g = small_graph(5);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(5);
    let mut model = Dgae::new(data.num_features(), 3, &mut rng);

    // Cluster step before init must fail.
    let bad = StepSpec {
        recon_target: None,
        gamma: 0.0,
        cluster: Some(ClusterStep {
            target: rgae_linalg::Mat::full(data.num_nodes, 3, 1.0 / 3.0),
            omega: None,
        }),
    };
    assert!(model.train_step(&data, &bad, &mut rng).is_err());
    assert!(model.soft_assignments(&data).unwrap().is_none());

    pretrain(&mut model, &data, 80, &mut rng);
    model.init_clustering(&data, &mut rng).unwrap();
    let p0 = model.soft_assignments(&data).unwrap().unwrap();
    let acc_before = accuracy(&p0.row_argmax(), g.labels());

    // Joint phase: DEC target + γ-weighted reconstruction (Appendix B:
    // γ = 0.001).
    for _ in 0..60 {
        let target = model.cluster_target(&data).unwrap().unwrap();
        let spec = StepSpec {
            recon_target: Some(Rc::clone(&data.adjacency)),
            gamma: 0.001,
            cluster: Some(ClusterStep {
                target,
                omega: None,
            }),
        };
        model.train_step(&data, &spec, &mut rng).unwrap();
    }
    let p1 = model.soft_assignments(&data).unwrap().unwrap();
    let acc_after = accuracy(&p1.row_argmax(), g.labels());
    assert!(
        acc_after >= acc_before - 0.05,
        "DEC phase degraded: {acc_before} -> {acc_after}"
    );
    assert!(acc_after > 0.55, "DGAE acc {acc_after}");
}

#[test]
fn gmm_vgae_trains_jointly() {
    let g = small_graph(6);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(6);
    let mut model = GmmVgae::new(data.num_features(), 3, &mut rng);
    pretrain(&mut model, &data, 80, &mut rng);
    model.init_clustering(&data, &mut rng).unwrap();
    let acc_before = accuracy(
        &model.soft_assignments(&data).unwrap().unwrap().row_argmax(),
        g.labels(),
    );
    for _ in 0..40 {
        let target = model.cluster_target(&data).unwrap().unwrap();
        let spec = StepSpec {
            recon_target: Some(Rc::clone(&data.adjacency)),
            gamma: 1.0,
            cluster: Some(ClusterStep {
                target,
                omega: None,
            }),
        };
        let loss = model.train_step(&data, &spec, &mut rng).unwrap();
        assert!(loss.is_finite());
    }
    let acc_after = accuracy(
        &model.soft_assignments(&data).unwrap().unwrap().row_argmax(),
        g.labels(),
    );
    assert!(
        acc_after >= acc_before - 0.05,
        "GMM phase degraded: {acc_before} -> {acc_after}"
    );
    assert!(acc_after > 0.55, "GMM-VGAE acc {acc_after}");
}

#[test]
fn omega_restriction_changes_clustering_grad() {
    let g = small_graph(7);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(7);
    let mut model = Dgae::new(data.num_features(), 3, &mut rng);
    pretrain(&mut model, &data, 30, &mut rng);
    model.init_clustering(&data, &mut rng).unwrap();
    let target = model.cluster_target(&data).unwrap().unwrap();
    let full = model
        .clustering_grad(&data, &target, None)
        .unwrap()
        .unwrap();
    let omega: Vec<usize> = (0..30).collect();
    let restricted = model
        .clustering_grad(&data, &target, Some(&omega))
        .unwrap()
        .unwrap();
    assert_eq!(full.len(), restricted.len());
    let c = cosine(&full, &restricted);
    assert!(c < 0.999, "restriction had no effect (cos {c})");
    assert!(full.iter().all(|v| v.is_finite()));
}

#[test]
fn recon_grad_depends_on_target() {
    let g = small_graph(8);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(8);
    let mut model = Dgae::new(data.num_features(), 3, &mut rng);
    pretrain(&mut model, &data, 20, &mut rng);
    let grad_a = model.recon_grad(&data, &data.adjacency).unwrap();
    // Same target → identical gradient (determinism).
    let grad_a2 = model.recon_grad(&data, &data.adjacency).unwrap();
    assert!((cosine(&grad_a, &grad_a2) - 1.0).abs() < 1e-12);
    // A very different target → a different gradient direction.
    let empty = Rc::new(Csr::zeros(data.num_nodes, data.num_nodes));
    let grad_e = model.recon_grad(&data, &empty).unwrap();
    assert!(cosine(&grad_a, &grad_e) < 0.999);
}

#[test]
fn second_group_beats_first_group_on_easy_data() {
    // The paper's headline taxonomy claim, at miniature scale.
    let g = small_graph(9);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(9);

    let mut gae = Gae::new(data.num_features(), &mut rng);
    pretrain(&mut gae, &data, 60, &mut rng);
    let acc_first = kmeans_acc(&gae.embed(&data), g.labels(), 3, &mut rng);

    let mut dgae = Dgae::new(data.num_features(), 3, &mut rng);
    pretrain(&mut dgae, &data, 60, &mut rng);
    dgae.init_clustering(&data, &mut rng).unwrap();
    for _ in 0..50 {
        let target = dgae.cluster_target(&data).unwrap().unwrap();
        let spec = StepSpec {
            recon_target: Some(Rc::clone(&data.adjacency)),
            gamma: 0.001,
            cluster: Some(ClusterStep {
                target,
                omega: None,
            }),
        };
        dgae.train_step(&data, &spec, &mut rng).unwrap();
    }
    let acc_second = accuracy(
        &dgae.soft_assignments(&data).unwrap().unwrap().row_argmax(),
        g.labels(),
    );
    assert!(
        acc_second + 0.03 >= acc_first,
        "joint ({acc_second}) should not trail post-hoc ({acc_first}) badly"
    );
}

#[test]
fn xi_assignments_share_argmax_with_soft_assignments() {
    // The tempering calibration must never change which cluster a node is
    // assigned to — only the confidence landscape Ξ reads.
    let g = small_graph(10);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(10);
    let mut model = GmmVgae::new(data.num_features(), 3, &mut rng);
    pretrain(&mut model, &data, 40, &mut rng);
    model.init_clustering(&data, &mut rng).unwrap();
    let soft = model.soft_assignments(&data).unwrap().unwrap();
    let xi_p = model.xi_assignments(&data).unwrap().unwrap();
    assert_eq!(soft.row_argmax(), xi_p.row_argmax());
    // And the tempered landscape is strictly less saturated on average.
    let mean_top = |m: &rgae_linalg::Mat| -> f64 {
        (0..m.rows())
            .map(|i| m.row(i).iter().cloned().fold(f64::MIN, f64::max))
            .sum::<f64>()
            / m.rows() as f64
    };
    assert!(mean_top(&xi_p) < mean_top(&soft) + 1e-9);
}

#[test]
fn dgae_xi_assignments_default_to_soft() {
    let g = small_graph(11);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(11);
    let mut model = Dgae::new(data.num_features(), 3, &mut rng);
    pretrain(&mut model, &data, 30, &mut rng);
    model.init_clustering(&data, &mut rng).unwrap();
    let a = model.soft_assignments(&data).unwrap().unwrap();
    let b = model.xi_assignments(&data).unwrap().unwrap();
    assert!(a.max_abs_diff(&b) < 1e-12, "DGAE must not be tempered");
}

/// Every model round-trips through export_params/import_params with a
/// bit-identical embedding and bit-identical continued training.
#[test]
fn export_import_round_trip_all_models() {
    let g = small_graph(12);
    let data = TrainData::from_graph(&g);
    type ModelBuilder = Box<dyn Fn(&mut Rng64) -> Box<dyn GaeModel>>;
    let builders: Vec<(&str, ModelBuilder)> = vec![
        (
            "GAE",
            Box::new(|r: &mut Rng64| Box::new(Gae::new(80, r)) as Box<dyn GaeModel>),
        ),
        ("VGAE", Box::new(|r: &mut Rng64| Box::new(Vgae::new(80, r)))),
        (
            "ARGAE",
            Box::new(|r: &mut Rng64| Box::new(Argae::new(80, r))),
        ),
        (
            "ARVGAE",
            Box::new(|r: &mut Rng64| Box::new(Arvgae::new(80, r))),
        ),
        (
            "DGAE",
            Box::new(|r: &mut Rng64| Box::new(Dgae::new(80, 3, r))),
        ),
        (
            "GMM-VGAE",
            Box::new(|r: &mut Rng64| Box::new(GmmVgae::new(80, 3, r))),
        ),
    ];
    for (name, build) in &builders {
        let mut rng = Rng64::seed_from_u64(77);
        let mut model = build(&mut rng);
        pretrain(model.as_mut(), &data, 10, &mut rng);
        if matches!(*name, "DGAE" | "GMM-VGAE") {
            model.init_clustering(&data, &mut rng).unwrap();
        }
        let state = model.export_params();
        assert_eq!(&state.name, name);

        // Import into a model built from a *different* seed: every learned
        // quantity must be replaced.
        let mut other_rng = Rng64::seed_from_u64(999);
        let mut restored = build(&mut other_rng);
        restored.import_params(&state).unwrap();
        let z0 = model.embed(&data);
        let z1 = restored.embed(&data);
        for (a, b) in z0.as_slice().iter().zip(z1.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{name} embed not bit-identical");
        }

        // Continued training from the restored state must also match
        // bit-for-bit (optimiser moments round-tripped too).
        let spec = StepSpec::pretrain(Rc::clone(&data.adjacency));
        let (s0, s1) = rng.state();
        let mut rng_b = Rng64::from_state(s0, s1);
        for _ in 0..3 {
            let la = model.train_step(&data, &spec, &mut rng).unwrap();
            let lb = restored.train_step(&data, &spec, &mut rng_b).unwrap();
            assert_eq!(la.to_bits(), lb.to_bits(), "{name} loss diverged");
        }
    }
}

/// Importing state from a different model family is rejected.
#[test]
fn import_rejects_wrong_model_state() {
    let mut rng = Rng64::seed_from_u64(5);
    let gae = Gae::new(80, &mut rng);
    let mut vgae = Vgae::new(80, &mut rng);
    assert!(vgae.import_params(&gae.export_params()).is_err());

    // Same family, different architecture (feature width) must also fail.
    let mut narrow = Gae::new(40, &mut rng);
    assert!(narrow.import_params(&gae.export_params()).is_err());
}

#[test]
fn scale_lr_and_grad_skip_counter_cover_every_model() {
    let g = small_graph(21);
    let data = TrainData::from_graph(&g);
    type ModelBuilder = Box<dyn Fn(&mut Rng64) -> Box<dyn GaeModel>>;
    let builders: Vec<ModelBuilder> = vec![
        Box::new(|r: &mut Rng64| Box::new(Gae::new(80, r)) as Box<dyn GaeModel>),
        Box::new(|r: &mut Rng64| Box::new(Vgae::new(80, r))),
        Box::new(|r: &mut Rng64| Box::new(Argae::new(80, r))),
        Box::new(|r: &mut Rng64| Box::new(Arvgae::new(80, r))),
        Box::new(|r: &mut Rng64| Box::new(Dgae::new(80, 3, r))),
        Box::new(|r: &mut Rng64| Box::new(GmmVgae::new(80, 3, r))),
    ];
    let spec = StepSpec::pretrain(Rc::clone(&data.adjacency));
    for build in &builders {
        let mut rng = Rng64::seed_from_u64(5);
        let mut scaled = build(&mut rng);
        let mut rng2 = Rng64::seed_from_u64(5);
        let mut plain = build(&mut rng2);
        let name = plain.name();

        // A poisoned step moves nothing and is counted; the twin model
        // trained normally diverges from the frozen one afterwards.
        assert_eq!(scaled.nonfinite_grad_steps(), 0, "{name}");
        rgae_autodiff::arm_grad_poison();
        scaled.train_step(&data, &spec, &mut rng).unwrap();
        rgae_autodiff::disarm_grad_poison();
        assert!(scaled.nonfinite_grad_steps() > 0, "{name} must count skips");
        let z_frozen = scaled.embed(&data);
        let z_init = plain.embed(&data);
        for (a, b) in z_frozen.as_slice().iter().zip(z_init.as_slice()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name} poisoned step moved params"
            );
        }

        // scale_lr(0) freezes training entirely; a positive scale trains.
        scaled.scale_lr(0.0);
        for _ in 0..2 {
            scaled.train_step(&data, &spec, &mut rng).unwrap();
        }
        let z_still = scaled.embed(&data);
        for (a, b) in z_still.as_slice().iter().zip(z_frozen.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{name} lr=0 still moved params");
        }
        for _ in 0..2 {
            plain.train_step(&data, &spec, &mut rng2).unwrap();
        }
        let z_trained = plain.embed(&data);
        assert!(
            z_trained
                .as_slice()
                .iter()
                .zip(z_still.as_slice())
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            "{name} unscaled twin should have trained"
        );
    }
}

//! Precomputed per-dataset training context.

use std::rc::Rc;

use rgae_graph::AttributedGraph;
use rgae_linalg::{Csr, Mat};

/// Everything a training step needs from the dataset, precomputed once:
/// the GCN filter Ã, the features, the default self-supervision target `A`,
/// and the BCE class-balance constants the GAE reference implementation
/// derives from `A`.
#[derive(Clone)]
pub struct TrainData {
    /// The normalised filter `Ã = D̂^{-1/2}(A+I)D̂^{-1/2}`.
    pub filter: Rc<Csr>,
    /// Node features `X` (row-normalised upstream). Shared so every
    /// per-step tape can mount the same buffer as a constant node
    /// ([`rgae_autodiff::Graph::constant_shared`]) without a deep copy.
    pub features: Rc<Mat>,
    /// The original adjacency `A` — the default reconstruction target.
    pub adjacency: Rc<Csr>,
    /// `pos_weight = (N² − ΣA) / ΣA`: up-weights the rare positive entries.
    pub pos_weight: f64,
    /// `norm = N² / (2 (N² − ΣA))`: the GAE global loss rescaling.
    pub norm: f64,
    /// Number of nodes `N`.
    pub num_nodes: usize,
    /// Number of clusters `K` the models should form.
    pub num_classes: usize,
}

impl TrainData {
    /// Build from an attributed graph.
    pub fn from_graph(graph: &AttributedGraph) -> Self {
        let n = graph.num_nodes();
        let sum_a = (2 * graph.num_edges()) as f64;
        let n2 = (n * n) as f64;
        // Guard the degenerate empty graph (benchmarks never produce one,
        // corruption sweeps can).
        let pos_weight = if sum_a > 0.0 {
            (n2 - sum_a) / sum_a
        } else {
            1.0
        };
        let norm = if n2 - sum_a > 0.0 {
            n2 / (2.0 * (n2 - sum_a))
        } else {
            1.0
        };
        TrainData {
            filter: Rc::new(graph.gcn_filter()),
            features: Rc::new(graph.features().clone()),
            adjacency: Rc::new(graph.adjacency().clone()),
            pos_weight,
            norm,
            num_nodes: n,
            num_classes: graph.num_classes(),
        }
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_gae_reference_formulas() {
        let x = Mat::zeros(4, 2);
        let g =
            AttributedGraph::from_edges("t", 4, &[(0, 1), (1, 2)], x, vec![0, 0, 1, 1], 2).unwrap();
        let d = TrainData::from_graph(&g);
        // N=4, ΣA = 4 (two undirected edges), N² = 16.
        assert!((d.pos_weight - 12.0 / 4.0).abs() < 1e-12);
        assert!((d.norm - 16.0 / 24.0).abs() < 1e-12);
        assert_eq!(d.num_nodes, 4);
        assert_eq!(d.num_classes, 2);
    }

    #[test]
    fn empty_graph_guarded() {
        let x = Mat::zeros(3, 2);
        let g = AttributedGraph::from_edges("t", 3, &[], x, vec![0, 1, 0], 2).unwrap();
        let d = TrainData::from_graph(&g);
        assert_eq!(d.pos_weight, 1.0);
        assert!(d.norm.is_finite());
    }
}

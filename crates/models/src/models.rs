//! The six GAE-based clustering models of the paper's protocol.
//!
//! Shared conventions:
//!
//! * every model owns its parameters as plain matrices and an internal Adam
//!   whose slot order matches the canonical parameter order;
//! * the reconstruction loss is the weighted BCE of the inner-product
//!   decoder (`Graph::bce_logits_sparse`) with the class-balance constants
//!   taken from the **original** adjacency — the paper keeps each model's
//!   original settings when the Υ operator swaps the target graph;
//! * deterministic gradient accessors ([`crate::GaeModel::clustering_grad`],
//!   [`crate::GaeModel::recon_grad`]) use the mean embedding for variational
//!   models so the Λ diagnostics are noise-free.

use std::rc::Rc;

use rgae_autodiff::{Adam, Graph, Var};
use rgae_cluster::{dec_target_distribution, kmeans, GaussianMixture};
use rgae_linalg::{standard_normal, Csr, Mat, Rng64};

use crate::encoder::{GcnEncoder, Mlp, VarGcnEncoder};
use crate::{ClusterStep, Error, GaeModel, ModelState, Result, StepSpec, TrainData};

/// Default hidden sizes used by every model (Appendix B / GAE reference).
pub const HIDDEN: usize = 32;
/// Default latent dimensionality.
pub const LATENT: usize = 16;
/// Default learning rate (Appendix B).
pub const LR: f64 = 0.01;

fn flatten(grads: &[Mat]) -> Vec<f64> {
    let mut out = Vec::with_capacity(grads.iter().map(|g| g.as_slice().len()).sum());
    for g in grads {
        out.extend_from_slice(g.as_slice());
    }
    out
}

/// Collect gradients for `leaves`, substituting zeros when a leaf is not
/// reached by the loss (e.g. the log-variance head under a clustering-only
/// loss).
fn grads_or_zero(g: &Graph, leaves: &[Var]) -> Vec<Mat> {
    leaves
        .iter()
        .map(|&l| match g.grad(l) {
            Ok(m) => m.clone(),
            Err(_) => {
                let (r, c) = g.shape(l);
                Mat::zeros(r, c)
            }
        })
        .collect()
}

/// Gather the Ω rows of a target matrix (identity when `omega` is `None`).
fn gather_target(target: &Mat, omega: Option<&[usize]>) -> Mat {
    match omega {
        Some(idx) => target.select_rows(idx),
        None => target.clone(),
    }
}

// --- checkpoint helpers ----------------------------------------------------

/// Export a parameter list under `{prefix}0`, `{prefix}1`, ….
fn export_mats(st: &mut ModelState, prefix: &str, params: &[&Mat]) {
    for (i, p) in params.iter().enumerate() {
        st.push_mat(&format!("{prefix}{i}"), (*p).clone());
    }
}

/// Import a parameter list written by [`export_mats`], shape-checked.
fn import_mats(st: &ModelState, prefix: &str, params: Vec<&mut Mat>) -> Result<()> {
    for (i, p) in params.into_iter().enumerate() {
        let m = st
            .mat(&format!("{prefix}{i}"))
            .ok_or(Error::Invalid("model state is missing a parameter"))?;
        if m.shape() != p.shape() {
            return Err(Error::Invalid("model state parameter shape mismatch"));
        }
        *p = m.clone();
    }
    Ok(())
}

/// Import a single named matrix, shape-checked.
fn import_mat(st: &ModelState, key: &str, dst: &mut Mat) -> Result<()> {
    let m = st
        .mat(key)
        .ok_or(Error::Invalid("model state is missing a matrix"))?;
    if m.shape() != dst.shape() {
        return Err(Error::Invalid("model state matrix shape mismatch"));
    }
    *dst = m.clone();
    Ok(())
}

/// Import a named optimiser state (slot count/shapes checked by Adam).
fn import_adam(st: &ModelState, key: &str, opt: &mut Adam) -> Result<()> {
    let a = st
        .adam(key)
        .ok_or(Error::Invalid("model state is missing optimiser state"))?;
    opt.import_state(a).map_err(Error::Invalid)
}

/// Reject state written by a different model family.
fn check_state_name(st: &ModelState, name: &str) -> Result<()> {
    if st.name == name {
        Ok(())
    } else {
        Err(Error::Invalid("model state belongs to a different model"))
    }
}

// ---------------------------------------------------------------------------
// GAE
// ---------------------------------------------------------------------------

/// The plain Graph Auto-Encoder (Kipf & Welling 2016): a two-layer GCN
/// encoder and an inner-product decoder, trained on reconstruction only.
/// First-group model: clustering is read out post-hoc.
#[derive(Clone)]
pub struct Gae {
    enc: GcnEncoder,
    opt: Adam,
}

impl Gae {
    /// Standard 32→16 architecture.
    pub fn new(num_features: usize, rng: &mut Rng64) -> Self {
        let enc = GcnEncoder::new(&[num_features, HIDDEN, LATENT], rng);
        let mut opt = Adam::new(LR);
        for p in enc.params() {
            opt.register(p.shape());
        }
        Gae { enc, opt }
    }
}

impl GaeModel for Gae {
    fn clone_box(&self) -> Box<dyn GaeModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "GAE"
    }

    fn embed(&self, data: &TrainData) -> Mat {
        self.enc.embed(&data.filter, &data.features)
    }

    fn soft_assignments(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn init_clustering(&mut self, _data: &TrainData, _rng: &mut Rng64) -> Result<()> {
        Ok(())
    }

    fn cluster_target(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn train_step(&mut self, data: &TrainData, spec: &StepSpec, _rng: &mut Rng64) -> Result<f64> {
        if spec.cluster.is_some() {
            return Err(Error::Invalid("GAE has no clustering head"));
        }
        let Some(target) = &spec.recon_target else {
            return Ok(0.0);
        };
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (z, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let recon = g.gram_bce_logits_sparse(z, target, data.pos_weight, data.norm)?;
        let loss = g.scale(recon, spec.gamma);
        let value = g.scalar(loss);
        g.backward(loss)?;
        let grads = grads_or_zero(&g, &leaves);
        self.opt.begin_step();
        for (slot, (p, gr)) in self.enc.params_mut().into_iter().zip(&grads).enumerate() {
            self.opt.update(slot, p, gr);
        }
        Ok(value)
    }

    fn clustering_grad(
        &self,
        _data: &TrainData,
        _target: &Mat,
        _omega: Option<&[usize]>,
    ) -> Result<Option<Vec<f64>>> {
        Ok(None)
    }

    fn recon_grad(&self, data: &TrainData, target: &Rc<Csr>) -> Result<Vec<f64>> {
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (z, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let recon = g.gram_bce_logits_sparse(z, target, data.pos_weight, data.norm)?;
        g.backward(recon)?;
        Ok(flatten(&grads_or_zero(&g, &leaves)))
    }

    fn export_params(&self) -> ModelState {
        let mut st = ModelState::new(self.name());
        export_mats(&mut st, "enc", &self.enc.params());
        st.push_adam("opt", self.opt.export_state());
        st
    }

    fn import_params(&mut self, state: &ModelState) -> Result<()> {
        check_state_name(state, self.name())?;
        import_mats(state, "enc", self.enc.params_mut())?;
        import_adam(state, "opt", &mut self.opt)
    }

    fn scale_lr(&mut self, factor: f64) {
        let lr = self.opt.lr();
        self.opt.set_lr(lr * factor);
    }

    fn nonfinite_grad_steps(&self) -> u64 {
        self.opt.nonfinite_grad_steps()
    }
}

// ---------------------------------------------------------------------------
// VGAE
// ---------------------------------------------------------------------------

/// The Variational Graph Auto-Encoder: Gaussian posterior heads, the VGAE
/// KL regulariser (scaled by 1/N), and reconstruction from a sampled latent.
#[derive(Clone)]
pub struct Vgae {
    enc: VarGcnEncoder,
    opt: Adam,
}

impl Vgae {
    /// Standard 32→16 architecture.
    pub fn new(num_features: usize, rng: &mut Rng64) -> Self {
        let enc = VarGcnEncoder::new(&[num_features, HIDDEN], LATENT, rng);
        let mut opt = Adam::new(LR);
        for p in enc.params() {
            opt.register(p.shape());
        }
        Vgae { enc, opt }
    }

    fn recon_kl_loss(
        &self,
        g: &mut Graph,
        data: &TrainData,
        target: &Rc<Csr>,
        rng: Option<&mut Rng64>,
    ) -> Result<(Var, Vec<Var>)> {
        let x = g.constant_shared(&data.features);
        let (mu, logvar, leaves) = self.enc.forward(g, &data.filter, x)?;
        let z = match rng {
            Some(r) => VarGcnEncoder::sample(g, mu, logvar, r)?,
            None => mu,
        };
        let recon = g.gram_bce_logits_sparse(z, target, data.pos_weight, data.norm)?;
        let kl = g.gaussian_kl(mu, logvar)?;
        let kl_scaled = g.scale(kl, 1.0 / (data.num_nodes as f64).powi(2));
        let loss = g.add(recon, kl_scaled)?;
        Ok((loss, leaves))
    }
}

impl GaeModel for Vgae {
    fn clone_box(&self) -> Box<dyn GaeModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "VGAE"
    }

    fn embed(&self, data: &TrainData) -> Mat {
        self.enc.embed(&data.filter, &data.features)
    }

    fn soft_assignments(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn init_clustering(&mut self, _data: &TrainData, _rng: &mut Rng64) -> Result<()> {
        Ok(())
    }

    fn cluster_target(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn train_step(&mut self, data: &TrainData, spec: &StepSpec, rng: &mut Rng64) -> Result<f64> {
        if spec.cluster.is_some() {
            return Err(Error::Invalid("VGAE has no clustering head"));
        }
        let Some(target) = &spec.recon_target else {
            return Ok(0.0);
        };
        let mut g = Graph::new();
        let (loss, leaves) = self.recon_kl_loss(&mut g, data, target, Some(rng))?;
        let loss = g.scale(loss, spec.gamma);
        let value = g.scalar(loss);
        g.backward(loss)?;
        let grads = grads_or_zero(&g, &leaves);
        self.opt.begin_step();
        for (slot, (p, gr)) in self.enc.params_mut().into_iter().zip(&grads).enumerate() {
            self.opt.update(slot, p, gr);
        }
        Ok(value)
    }

    fn clustering_grad(
        &self,
        _data: &TrainData,
        _target: &Mat,
        _omega: Option<&[usize]>,
    ) -> Result<Option<Vec<f64>>> {
        Ok(None)
    }

    fn recon_grad(&self, data: &TrainData, target: &Rc<Csr>) -> Result<Vec<f64>> {
        let mut g = Graph::new();
        let (loss, leaves) = self.recon_kl_loss(&mut g, data, target, None)?;
        g.backward(loss)?;
        Ok(flatten(&grads_or_zero(&g, &leaves)))
    }

    fn export_params(&self) -> ModelState {
        let mut st = ModelState::new(self.name());
        export_mats(&mut st, "enc", &self.enc.params());
        st.push_adam("opt", self.opt.export_state());
        st
    }

    fn import_params(&mut self, state: &ModelState) -> Result<()> {
        check_state_name(state, self.name())?;
        import_mats(state, "enc", self.enc.params_mut())?;
        import_adam(state, "opt", &mut self.opt)
    }

    fn scale_lr(&mut self, factor: f64) {
        let lr = self.opt.lr();
        self.opt.set_lr(lr * factor);
    }

    fn nonfinite_grad_steps(&self) -> u64 {
        self.opt.nonfinite_grad_steps()
    }
}

// ---------------------------------------------------------------------------
// ARGAE / ARVGAE
// ---------------------------------------------------------------------------

/// Adversarially Regularised GAE (Pan et al. 2018): the GAE encoder doubles
/// as a generator whose latent codes are pushed towards a standard-normal
/// prior by a small MLP discriminator.
#[derive(Clone)]
pub struct Argae {
    enc: GcnEncoder,
    disc: Mlp,
    opt_enc: Adam,
    opt_disc: Adam,
    adv_weight: f64,
}

impl Argae {
    /// Standard architecture with a 16→64→1 discriminator.
    pub fn new(num_features: usize, rng: &mut Rng64) -> Self {
        let enc = GcnEncoder::new(&[num_features, HIDDEN, LATENT], rng);
        let disc = Mlp::new(&[LATENT, 64, 1], rng);
        let mut opt_enc = Adam::new(LR);
        for p in enc.params() {
            opt_enc.register(p.shape());
        }
        let mut opt_disc = Adam::new(0.001);
        for p in disc.params() {
            opt_disc.register(p.shape());
        }
        Argae {
            enc,
            disc,
            opt_enc,
            opt_disc,
            adv_weight: 1.0,
        }
    }
}

/// One discriminator update: real ~ N(0, I) vs fake = current embeddings.
fn disc_step(disc: &mut Mlp, opt: &mut Adam, z: &Mat, rng: &mut Rng64) -> Result<f64> {
    let (n, d) = z.shape();
    // A single leaf pass over the stacked batch [real; fake] trains on both
    // halves without double-registering the discriminator weights.
    let mut g = Graph::new();
    let real = standard_normal(n, d, rng);
    let mut both = Mat::zeros(2 * n, d);
    for i in 0..n {
        both.row_mut(i).copy_from_slice(real.row(i));
        both.row_mut(n + i).copy_from_slice(z.row(i));
    }
    let mut target = Mat::zeros(2 * n, 1);
    for i in 0..n {
        target[(i, 0)] = 1.0;
    }
    let target = Rc::new(target);
    let bv = g.constant(both);
    let (logits, leaves) = disc.forward(&mut g, bv)?;
    let loss = g.bce_logits_dense(logits, &target)?;
    let value = g.scalar(loss);
    g.backward(loss)?;
    let grads = grads_or_zero(&g, &leaves);
    opt.begin_step();
    for (slot, (p, gr)) in disc.params_mut().into_iter().zip(&grads).enumerate() {
        opt.update(slot, p, gr);
    }
    Ok(value)
}

impl GaeModel for Argae {
    fn clone_box(&self) -> Box<dyn GaeModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "ARGAE"
    }

    fn embed(&self, data: &TrainData) -> Mat {
        self.enc.embed(&data.filter, &data.features)
    }

    fn soft_assignments(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn init_clustering(&mut self, _data: &TrainData, _rng: &mut Rng64) -> Result<()> {
        Ok(())
    }

    fn cluster_target(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn train_step(&mut self, data: &TrainData, spec: &StepSpec, rng: &mut Rng64) -> Result<f64> {
        if spec.cluster.is_some() {
            return Err(Error::Invalid("ARGAE has no clustering head"));
        }
        let Some(target) = &spec.recon_target else {
            return Ok(0.0);
        };
        // 1. Discriminator step on the current embeddings.
        let z = self.embed(data);
        disc_step(&mut self.disc, &mut self.opt_disc, &z, rng)?;

        // 2. Encoder step: reconstruction + fool-the-discriminator.
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (zv, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let recon = g.gram_bce_logits_sparse(zv, target, data.pos_weight, data.norm)?;
        let recon = g.scale(recon, spec.gamma);
        let d_fake = self.disc.forward_frozen(&mut g, zv)?;
        let ones = Rc::new(Mat::full(data.num_nodes, 1, 1.0));
        let gen = g.bce_logits_dense(d_fake, &ones)?;
        let gen = g.scale(gen, self.adv_weight);
        let loss = g.add(recon, gen)?;
        let value = g.scalar(loss);
        g.backward(loss)?;
        let grads = grads_or_zero(&g, &leaves);
        self.opt_enc.begin_step();
        for (slot, (p, gr)) in self.enc.params_mut().into_iter().zip(&grads).enumerate() {
            self.opt_enc.update(slot, p, gr);
        }
        Ok(value)
    }

    fn clustering_grad(
        &self,
        _data: &TrainData,
        _target: &Mat,
        _omega: Option<&[usize]>,
    ) -> Result<Option<Vec<f64>>> {
        Ok(None)
    }

    fn recon_grad(&self, data: &TrainData, target: &Rc<Csr>) -> Result<Vec<f64>> {
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (z, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let recon = g.gram_bce_logits_sparse(z, target, data.pos_weight, data.norm)?;
        g.backward(recon)?;
        Ok(flatten(&grads_or_zero(&g, &leaves)))
    }

    fn export_params(&self) -> ModelState {
        let mut st = ModelState::new(self.name());
        export_mats(&mut st, "enc", &self.enc.params());
        export_mats(&mut st, "disc", &self.disc.params());
        st.push_adam("opt_enc", self.opt_enc.export_state());
        st.push_adam("opt_disc", self.opt_disc.export_state());
        st.push_num("adv_weight", self.adv_weight);
        st
    }

    fn import_params(&mut self, state: &ModelState) -> Result<()> {
        check_state_name(state, self.name())?;
        import_mats(state, "enc", self.enc.params_mut())?;
        import_mats(state, "disc", self.disc.params_mut())?;
        import_adam(state, "opt_enc", &mut self.opt_enc)?;
        import_adam(state, "opt_disc", &mut self.opt_disc)?;
        self.adv_weight = state
            .num("adv_weight")
            .ok_or(Error::Invalid("model state is missing adv_weight"))?;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f64) {
        let enc_lr = self.opt_enc.lr();
        self.opt_enc.set_lr(enc_lr * factor);
        let disc_lr = self.opt_disc.lr();
        self.opt_disc.set_lr(disc_lr * factor);
    }

    fn nonfinite_grad_steps(&self) -> u64 {
        self.opt_enc.nonfinite_grad_steps() + self.opt_disc.nonfinite_grad_steps()
    }
}

/// Adversarially Regularised *Variational* GAE.
#[derive(Clone)]
pub struct Arvgae {
    enc: VarGcnEncoder,
    disc: Mlp,
    opt_enc: Adam,
    opt_disc: Adam,
    adv_weight: f64,
}

impl Arvgae {
    /// Standard architecture with a 16→64→1 discriminator.
    pub fn new(num_features: usize, rng: &mut Rng64) -> Self {
        let enc = VarGcnEncoder::new(&[num_features, HIDDEN], LATENT, rng);
        let disc = Mlp::new(&[LATENT, 64, 1], rng);
        let mut opt_enc = Adam::new(LR);
        for p in enc.params() {
            opt_enc.register(p.shape());
        }
        let mut opt_disc = Adam::new(0.001);
        for p in disc.params() {
            opt_disc.register(p.shape());
        }
        Arvgae {
            enc,
            disc,
            opt_enc,
            opt_disc,
            adv_weight: 1.0,
        }
    }
}

impl GaeModel for Arvgae {
    fn clone_box(&self) -> Box<dyn GaeModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "ARVGAE"
    }

    fn embed(&self, data: &TrainData) -> Mat {
        self.enc.embed(&data.filter, &data.features)
    }

    fn soft_assignments(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn init_clustering(&mut self, _data: &TrainData, _rng: &mut Rng64) -> Result<()> {
        Ok(())
    }

    fn cluster_target(&self, _data: &TrainData) -> Result<Option<Mat>> {
        Ok(None)
    }

    fn train_step(&mut self, data: &TrainData, spec: &StepSpec, rng: &mut Rng64) -> Result<f64> {
        if spec.cluster.is_some() {
            return Err(Error::Invalid("ARVGAE has no clustering head"));
        }
        let Some(target) = &spec.recon_target else {
            return Ok(0.0);
        };
        let z = self.embed(data);
        disc_step(&mut self.disc, &mut self.opt_disc, &z, rng)?;

        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (mu, logvar, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let zv = VarGcnEncoder::sample(&mut g, mu, logvar, rng)?;
        let recon = g.gram_bce_logits_sparse(zv, target, data.pos_weight, data.norm)?;
        let recon = g.scale(recon, spec.gamma);
        let kl = g.gaussian_kl(mu, logvar)?;
        let kl = g.scale(kl, 1.0 / (data.num_nodes as f64).powi(2));
        let d_fake = self.disc.forward_frozen(&mut g, zv)?;
        let ones = Rc::new(Mat::full(data.num_nodes, 1, 1.0));
        let gen = g.bce_logits_dense(d_fake, &ones)?;
        let gen = g.scale(gen, self.adv_weight);
        let partial = g.add(recon, kl)?;
        let loss = g.add(partial, gen)?;
        let value = g.scalar(loss);
        g.backward(loss)?;
        let grads = grads_or_zero(&g, &leaves);
        self.opt_enc.begin_step();
        for (slot, (p, gr)) in self.enc.params_mut().into_iter().zip(&grads).enumerate() {
            self.opt_enc.update(slot, p, gr);
        }
        Ok(value)
    }

    fn clustering_grad(
        &self,
        _data: &TrainData,
        _target: &Mat,
        _omega: Option<&[usize]>,
    ) -> Result<Option<Vec<f64>>> {
        Ok(None)
    }

    fn recon_grad(&self, data: &TrainData, target: &Rc<Csr>) -> Result<Vec<f64>> {
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (mu, _logvar, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let recon = g.gram_bce_logits_sparse(mu, target, data.pos_weight, data.norm)?;
        g.backward(recon)?;
        Ok(flatten(&grads_or_zero(&g, &leaves)))
    }

    fn export_params(&self) -> ModelState {
        let mut st = ModelState::new(self.name());
        export_mats(&mut st, "enc", &self.enc.params());
        export_mats(&mut st, "disc", &self.disc.params());
        st.push_adam("opt_enc", self.opt_enc.export_state());
        st.push_adam("opt_disc", self.opt_disc.export_state());
        st.push_num("adv_weight", self.adv_weight);
        st
    }

    fn import_params(&mut self, state: &ModelState) -> Result<()> {
        check_state_name(state, self.name())?;
        import_mats(state, "enc", self.enc.params_mut())?;
        import_mats(state, "disc", self.disc.params_mut())?;
        import_adam(state, "opt_enc", &mut self.opt_enc)?;
        import_adam(state, "opt_disc", &mut self.opt_disc)?;
        self.adv_weight = state
            .num("adv_weight")
            .ok_or(Error::Invalid("model state is missing adv_weight"))?;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f64) {
        let enc_lr = self.opt_enc.lr();
        self.opt_enc.set_lr(enc_lr * factor);
        let disc_lr = self.opt_disc.lr();
        self.opt_disc.set_lr(disc_lr * factor);
    }

    fn nonfinite_grad_steps(&self) -> u64 {
        self.opt_enc.nonfinite_grad_steps() + self.opt_disc.nonfinite_grad_steps()
    }
}

// ---------------------------------------------------------------------------
// DGAE (Appendix B)
// ---------------------------------------------------------------------------

/// The paper's Discriminative GAE (Appendix B): two GCN layers (32 → 16),
/// Student-t soft assignments around learnable centroids, the DEC
/// `KL(Q ‖ P)` clustering loss, and reconstruction with γ = 0.001.
#[derive(Clone)]
pub struct Dgae {
    enc: GcnEncoder,
    centroids: Mat,
    centroids_ready: bool,
    opt: Adam,
}

impl Dgae {
    /// Appendix-B architecture for `k` clusters.
    pub fn new(num_features: usize, k: usize, rng: &mut Rng64) -> Self {
        let enc = GcnEncoder::new(&[num_features, HIDDEN, LATENT], rng);
        let centroids = Mat::zeros(k, LATENT);
        let mut opt = Adam::new(LR);
        for p in enc.params() {
            opt.register(p.shape());
        }
        opt.register(centroids.shape());
        Dgae {
            enc,
            centroids,
            centroids_ready: false,
            opt,
        }
    }

    /// Build `P` differentiably; optionally restricted to Ω rows.
    fn soft_p(&self, g: &mut Graph, z: Var, mu: Var, omega: Option<&[usize]>) -> Result<Var> {
        let z = match omega {
            Some(idx) => g.gather_rows(z, idx)?,
            None => z,
        };
        let d = g.pairwise_sq_dists(z, mu)?;
        let num = g.recip_one_plus(d);
        Ok(g.row_normalize(num))
    }
}

impl GaeModel for Dgae {
    fn clone_box(&self) -> Box<dyn GaeModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "DGAE"
    }

    fn embed(&self, data: &TrainData) -> Mat {
        self.enc.embed(&data.filter, &data.features)
    }

    fn soft_assignments(&self, data: &TrainData) -> Result<Option<Mat>> {
        if !self.centroids_ready {
            return Ok(None);
        }
        let z = self.embed(data);
        Ok(Some(rgae_cluster::student_t_assignments(
            &z,
            &self.centroids,
        )?))
    }

    fn init_clustering(&mut self, data: &TrainData, rng: &mut Rng64) -> Result<()> {
        let z = self.embed(data);
        let km = kmeans(&z, data.num_classes, 100, rng)?;
        self.centroids = km.centroids;
        self.centroids_ready = true;
        Ok(())
    }

    fn cluster_target(&self, data: &TrainData) -> Result<Option<Mat>> {
        Ok(self
            .soft_assignments(data)?
            .map(|p| dec_target_distribution(&p)))
    }

    fn train_step(&mut self, data: &TrainData, spec: &StepSpec, _rng: &mut Rng64) -> Result<f64> {
        if spec.cluster.is_some() && !self.centroids_ready {
            return Err(Error::Invalid("DGAE clustering not initialised"));
        }
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (z, mut leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let mut loss: Option<Var> = None;
        if let Some(ClusterStep { target, omega }) = &spec.cluster {
            let mu = g.leaf(self.centroids.clone());
            leaves.push(mu);
            let p = self.soft_p(&mut g, z, mu, omega.as_deref())?;
            let q = Rc::new(gather_target(target, omega.as_deref()));
            let kl = g.kl_div_const_q(p, &q)?;
            // Mean over the participating rows keeps γ comparable across Ω
            // sizes.
            let rows = q.rows().max(1) as f64;
            let kl = g.scale(kl, 1.0 / rows);
            loss = Some(kl);
        }
        if let Some(target) = &spec.recon_target {
            let recon = g.gram_bce_logits_sparse(z, target, data.pos_weight, data.norm)?;
            let recon = g.scale(recon, spec.gamma);
            loss = Some(match loss {
                Some(l) => g.add(l, recon)?,
                None => recon,
            });
        }
        let Some(loss) = loss else {
            return Ok(0.0);
        };
        let value = g.scalar(loss);
        g.backward(loss)?;
        let grads = grads_or_zero(&g, &leaves);
        self.opt.begin_step();
        let mut params = self.enc.params_mut();
        params.push(&mut self.centroids);
        // When no clustering term ran, `leaves` lacks the centroid leaf; pad
        // with a zero gradient so slot order stays aligned.
        let mut padded = grads;
        while padded.len() < params.len() {
            let p = &params[padded.len()];
            padded.push(Mat::zeros(p.shape().0, p.shape().1));
        }
        for (slot, (p, gr)) in params.into_iter().zip(&padded).enumerate() {
            self.opt.update(slot, p, gr);
        }
        Ok(value)
    }

    fn clustering_grad(
        &self,
        data: &TrainData,
        target: &Mat,
        omega: Option<&[usize]>,
    ) -> Result<Option<Vec<f64>>> {
        if !self.centroids_ready {
            return Ok(None);
        }
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (z, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let mu = g.constant(self.centroids.clone());
        let p = self.soft_p(&mut g, z, mu, omega)?;
        let q = Rc::new(gather_target(target, omega));
        let kl = g.kl_div_const_q(p, &q)?;
        let rows = q.rows().max(1) as f64;
        let kl = g.scale(kl, 1.0 / rows);
        g.backward(kl)?;
        Ok(Some(flatten(&grads_or_zero(&g, &leaves))))
    }

    fn recon_grad(&self, data: &TrainData, target: &Rc<Csr>) -> Result<Vec<f64>> {
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (z, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let recon = g.gram_bce_logits_sparse(z, target, data.pos_weight, data.norm)?;
        g.backward(recon)?;
        Ok(flatten(&grads_or_zero(&g, &leaves)))
    }

    fn export_params(&self) -> ModelState {
        let mut st = ModelState::new(self.name());
        export_mats(&mut st, "enc", &self.enc.params());
        st.push_mat("centroids", self.centroids.clone());
        st.push_flag("centroids_ready", self.centroids_ready);
        st.push_adam("opt", self.opt.export_state());
        st
    }

    fn import_params(&mut self, state: &ModelState) -> Result<()> {
        check_state_name(state, self.name())?;
        import_mats(state, "enc", self.enc.params_mut())?;
        import_mat(state, "centroids", &mut self.centroids)?;
        self.centroids_ready = state
            .flag("centroids_ready")
            .ok_or(Error::Invalid("model state is missing centroids_ready"))?;
        import_adam(state, "opt", &mut self.opt)
    }

    fn scale_lr(&mut self, factor: f64) {
        let lr = self.opt.lr();
        self.opt.set_lr(lr * factor);
    }

    fn nonfinite_grad_steps(&self) -> u64 {
        self.opt.nonfinite_grad_steps()
    }
}

// ---------------------------------------------------------------------------
// GMM-VGAE
// ---------------------------------------------------------------------------

/// A VGAE whose latent space carries a Gaussian-mixture clustering head
/// (Hui et al. 2020, VaDE-style simplification documented in DESIGN.md):
/// mixture means/variances are trainable, mixing weights are updated in
/// closed form from the responsibilities.
#[derive(Clone)]
pub struct GmmVgae {
    enc: VarGcnEncoder,
    mix_weights: Vec<f64>,
    mix_means: Mat,
    mix_logvars: Mat,
    heads_ready: bool,
    opt: Adam,
    /// Weight of the clustering (mixture log-likelihood) term.
    pub cluster_weight: f64,
}

impl GmmVgae {
    /// Standard architecture for `k` clusters.
    pub fn new(num_features: usize, k: usize, rng: &mut Rng64) -> Self {
        let enc = VarGcnEncoder::new(&[num_features, HIDDEN], LATENT, rng);
        let mix_means = Mat::zeros(k, LATENT);
        let mix_logvars = Mat::zeros(k, LATENT);
        let mut opt = Adam::new(LR);
        for p in enc.params() {
            opt.register(p.shape());
        }
        opt.register(mix_means.shape());
        opt.register(mix_logvars.shape());
        GmmVgae {
            enc,
            mix_weights: vec![1.0 / k as f64; k],
            mix_means,
            mix_logvars,
            heads_ready: false,
            opt,
            cluster_weight: 0.1,
        }
    }

    /// Plain-matrix responsibilities under the current mixture, with a
    /// likelihood temperature (1.0 = exact posterior).
    fn responsibilities_tempered(&self, z: &Mat, temperature: f64) -> Mat {
        let (n, k) = (z.rows(), self.mix_weights.len());
        let d = z.cols();
        let ln2pi = (2.0 * std::f64::consts::PI).ln();
        let mut out = Mat::zeros(n, k);
        for i in 0..n {
            let mut logp = vec![0.0; k];
            for c in 0..k {
                let mut acc = self.mix_weights[c].max(1e-300).ln();
                for di in 0..d {
                    let lv = self.mix_logvars[(c, di)];
                    let diff = z[(i, di)] - self.mix_means[(c, di)];
                    acc += -0.5 * (ln2pi + lv + diff * diff * (-lv).exp());
                }
                logp[c] = acc / temperature.max(1e-9);
            }
            let mx = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for lp in &mut logp {
                *lp = (*lp - mx).exp();
                sum += *lp;
            }
            for c in 0..k {
                out[(i, c)] = logp[c] / sum;
            }
        }
        out
    }

    /// Plain-matrix responsibilities under the current mixture.
    fn responsibilities(&self, z: &Mat) -> Mat {
        self.responsibilities_tempered(z, 1.0)
    }

    /// Differentiable clustering loss: negative responsibility-weighted
    /// mixture log-density, mean over participating rows.
    fn cluster_loss(
        &self,
        g: &mut Graph,
        z: Var,
        means: Var,
        logvars: Var,
        target: &Mat,
        omega: Option<&[usize]>,
    ) -> Result<Var> {
        let z = match omega {
            Some(idx) => g.gather_rows(z, idx)?,
            None => z,
        };
        let r = Rc::new(gather_target(target, omega));
        let lp = g.gauss_log_pdf(z, means, logvars)?;
        let rv = g.constant((*r).clone());
        let weighted = g.hadamard(lp, rv)?;
        let s = g.sum(weighted);
        let rows = r.rows().max(1) as f64;
        Ok(g.scale(s, -self.cluster_weight / rows))
    }
}

impl GaeModel for GmmVgae {
    fn clone_box(&self) -> Box<dyn GaeModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "GMM-VGAE"
    }

    fn embed(&self, data: &TrainData) -> Mat {
        self.enc.embed(&data.filter, &data.features)
    }

    fn soft_assignments(&self, data: &TrainData) -> Result<Option<Mat>> {
        if !self.heads_ready {
            return Ok(None);
        }
        let z = self.embed(data);
        Ok(Some(self.responsibilities(&z)))
    }

    fn xi_assignments(&self, data: &TrainData) -> Result<Option<Mat>> {
        if !self.heads_ready {
            return Ok(None);
        }
        // Temperature = latent dimension: exact responsibilities saturate
        // when the mixture components are well separated, which would hand
        // Ξ a degenerate (all-ones) confidence landscape.
        let z = self.embed(data);
        Ok(Some(self.responsibilities_tempered(&z, z.cols() as f64)))
    }

    fn init_clustering(&mut self, data: &TrainData, rng: &mut Rng64) -> Result<()> {
        let z = self.embed(data);
        let gmm = GaussianMixture::fit(&z, data.num_classes, 100, rng)?;
        self.mix_weights = gmm.weights;
        self.mix_means = gmm.means;
        self.mix_logvars = gmm.variances.map(f64::ln);
        self.heads_ready = true;
        Ok(())
    }

    fn cluster_target(&self, data: &TrainData) -> Result<Option<Mat>> {
        self.soft_assignments(data)
    }

    fn train_step(&mut self, data: &TrainData, spec: &StepSpec, rng: &mut Rng64) -> Result<f64> {
        if spec.cluster.is_some() && !self.heads_ready {
            return Err(Error::Invalid("GMM-VGAE clustering not initialised"));
        }
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (mu, logvar, mut leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let z = VarGcnEncoder::sample(&mut g, mu, logvar, rng)?;
        let kl = g.gaussian_kl(mu, logvar)?;
        let mut loss = g.scale(kl, 1.0 / (data.num_nodes as f64).powi(2));
        if let Some(target) = &spec.recon_target {
            let recon = g.gram_bce_logits_sparse(z, target, data.pos_weight, data.norm)?;
            let recon = g.scale(recon, spec.gamma);
            loss = g.add(loss, recon)?;
        }
        let mut with_heads = false;
        if let Some(ClusterStep { target, omega }) = &spec.cluster {
            let means = g.leaf(self.mix_means.clone());
            let logvars = g.leaf(self.mix_logvars.clone());
            leaves.push(means);
            leaves.push(logvars);
            with_heads = true;
            let cl = self.cluster_loss(&mut g, z, means, logvars, target, omega.as_deref())?;
            loss = g.add(loss, cl)?;
            // Closed-form mixing-weight refresh from the target
            // responsibilities.
            let k = self.mix_weights.len();
            let sums = target.col_sums();
            let total: f64 = sums.iter().sum();
            if total > 0.0 {
                for c in 0..k {
                    self.mix_weights[c] = (sums[c] / total).max(1e-6);
                }
            }
        }
        let value = g.scalar(loss);
        g.backward(loss)?;
        let grads = grads_or_zero(&g, &leaves);
        self.opt.begin_step();
        let mut params = self.enc.params_mut();
        if with_heads {
            params.push(&mut self.mix_means);
            params.push(&mut self.mix_logvars);
        }
        for (slot, (p, gr)) in params.into_iter().zip(&grads).enumerate() {
            self.opt.update(slot, p, gr);
        }
        if with_heads {
            // Variance floor/ceiling (sklearn's `reg_covar` idea): without
            // it the mixture log-likelihood is unbounded above — components
            // collapse onto single points and take the embedding with them.
            for lv in self.mix_logvars.as_mut_slice() {
                *lv = lv.clamp(-6.0, 3.0);
            }
        }
        Ok(value)
    }

    fn clustering_grad(
        &self,
        data: &TrainData,
        target: &Mat,
        omega: Option<&[usize]>,
    ) -> Result<Option<Vec<f64>>> {
        if !self.heads_ready {
            return Ok(None);
        }
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (mu, _logvar, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let means = g.constant(self.mix_means.clone());
        let logvars = g.constant(self.mix_logvars.clone());
        let cl = self.cluster_loss(&mut g, mu, means, logvars, target, omega)?;
        g.backward(cl)?;
        Ok(Some(flatten(&grads_or_zero(&g, &leaves))))
    }

    fn recon_grad(&self, data: &TrainData, target: &Rc<Csr>) -> Result<Vec<f64>> {
        let mut g = Graph::new();
        let x = g.constant_shared(&data.features);
        let (mu, _logvar, leaves) = self.enc.forward(&mut g, &data.filter, x)?;
        let recon = g.gram_bce_logits_sparse(mu, target, data.pos_weight, data.norm)?;
        g.backward(recon)?;
        Ok(flatten(&grads_or_zero(&g, &leaves)))
    }

    fn export_params(&self) -> ModelState {
        let mut st = ModelState::new(self.name());
        export_mats(&mut st, "enc", &self.enc.params());
        st.push_mat("mix_means", self.mix_means.clone());
        st.push_mat("mix_logvars", self.mix_logvars.clone());
        st.push_vec("mix_weights", self.mix_weights.clone());
        st.push_flag("heads_ready", self.heads_ready);
        st.push_num("cluster_weight", self.cluster_weight);
        st.push_adam("opt", self.opt.export_state());
        st
    }

    fn import_params(&mut self, state: &ModelState) -> Result<()> {
        check_state_name(state, self.name())?;
        import_mats(state, "enc", self.enc.params_mut())?;
        import_mat(state, "mix_means", &mut self.mix_means)?;
        import_mat(state, "mix_logvars", &mut self.mix_logvars)?;
        let weights = state
            .vec("mix_weights")
            .ok_or(Error::Invalid("model state is missing mix_weights"))?;
        if weights.len() != self.mix_weights.len() {
            return Err(Error::Invalid("model state mixture size mismatch"));
        }
        self.mix_weights = weights.clone();
        self.heads_ready = state
            .flag("heads_ready")
            .ok_or(Error::Invalid("model state is missing heads_ready"))?;
        self.cluster_weight = state
            .num("cluster_weight")
            .ok_or(Error::Invalid("model state is missing cluster_weight"))?;
        import_adam(state, "opt", &mut self.opt)
    }

    fn scale_lr(&mut self, factor: f64) {
        let lr = self.opt.lr();
        self.opt.set_lr(lr * factor);
    }

    fn nonfinite_grad_steps(&self) -> u64 {
        self.opt.nonfinite_grad_steps()
    }
}

//! Lightweight baselines for the paper's Table 17 comparison.
//!
//! These are deliberately compact re-implementations of the published
//! methods' cores (the "-lite" suffix marks documented simplifications, see
//! DESIGN.md):
//!
//! * [`mgae_lite`] — Marginalised Graph Auto-Encoder (Wang et al. 2017):
//!   stacked single-layer graph auto-encoders with marginalised-denoising
//!   closed-form weights, clusters by k-means on the last layer.
//! * [`agc_lite`] — Adaptive Graph Convolution (Zhang et al. 2019): k-order
//!   low-pass filtering `((I + Ã)/2)^k X` followed by k-means.
//! * [`spectral_lite`] — a spectral baseline standing in for the
//!   matrix-factorisation family (TADW): top-d eigenvectors of the
//!   normalised adjacency by orthogonal (subspace) iteration + k-means.
//! * [`daegc_lite_data`] — DAEGC's attention is approximated by a fixed
//!   2-hop proximity filter `(Ã + Ã²)/2`; training then reuses [`crate::Dgae`]
//!   (GCN + DEC head + reconstruction), which matches DAEGC's loss.

use std::rc::Rc;

use rgae_cluster::kmeans;
use rgae_graph::AttributedGraph;
use rgae_linalg::{Csr, Mat, Rng64};

use crate::{Result, TrainData};

/// Marginalised denoising graph auto-encoder (MGAE-lite).
///
/// Each layer computes `H ← Ã H W` where `W` is the marginalised-denoising
/// ridge solution of reconstructing `H` from its corrupted filtered version
/// with feature-dropout probability `corruption`.
/// Returns `(assignments, final_representation)`.
pub fn mgae_lite(
    graph: &AttributedGraph,
    layers: usize,
    corruption: f64,
    lambda: f64,
    rng: &mut Rng64,
) -> Result<(Vec<usize>, Mat)> {
    let filt = graph.gcn_filter();
    let mut h = graph.features().clone();
    let q = 1.0 - corruption;
    for _ in 0..layers.max(1) {
        let s = filt.spmm(&h).expect("filter applies");
        // Marginalised mDA: E[S̃ᵀS̃] scales off-diagonal entries by q² and
        // the diagonal by q; E[S̃ᵀH] scales by q.
        let sts = s.t_matmul(&s).expect("gram");
        let j = sts.rows();
        let mut lhs = sts.scale(q * q);
        for i in 0..j {
            lhs[(i, i)] = q * sts[(i, i)] + lambda;
        }
        let rhs = s.t_matmul(&h).expect("cross").scale(q);
        let w = lhs
            .solve_spd(&rhs)
            .map_err(|_| crate::Error::Invalid("mgae: ridge system not SPD"))?;
        h = s.matmul(&w).expect("layer shapes");
        // MGAE re-normalises layer outputs to keep the stack stable.
        h = h.row_l2_normalized();
    }
    let km = kmeans(&h, graph.num_classes(), 100, rng)?;
    Ok((km.assignments, h))
}

/// Adaptive graph convolution (AGC-lite): `((I + Ã)/2)^k X`, then k-means.
pub fn agc_lite(graph: &AttributedGraph, k_order: usize, rng: &mut Rng64) -> Result<Vec<usize>> {
    let filt = graph.gcn_filter();
    let mut h = graph.features().clone();
    for _ in 0..k_order.max(1) {
        let fh = filt.spmm(&h).expect("filter applies");
        h = h.add(&fh).expect("same shape").scale(0.5);
    }
    let km = kmeans(&h, graph.num_classes(), 100, rng)?;
    Ok(km.assignments)
}

/// Spectral baseline: top-`d` eigenvectors of Ã via orthogonal iteration,
/// then k-means on the (row-wise) spectral embedding.
pub fn spectral_lite(graph: &AttributedGraph, d: usize, rng: &mut Rng64) -> Result<Vec<usize>> {
    let filt = graph.gcn_filter();
    let n = graph.num_nodes();
    let d = d.min(n);
    let mut q = rgae_linalg::standard_normal(n, d, rng);
    gram_schmidt(&mut q);
    for _ in 0..60 {
        let aq = filt.spmm(&q).expect("square filter");
        q = aq;
        gram_schmidt(&mut q);
    }
    let km = kmeans(&q, graph.num_classes(), 100, rng)?;
    Ok(km.assignments)
}

/// Column-wise modified Gram–Schmidt orthonormalisation (in place).
fn gram_schmidt(q: &mut Mat) {
    let (n, d) = q.shape();
    for j in 0..d {
        for prev in 0..j {
            let mut dot = 0.0;
            for i in 0..n {
                dot += q[(i, j)] * q[(i, prev)];
            }
            for i in 0..n {
                q[(i, j)] -= dot * q[(i, prev)];
            }
        }
        let norm: f64 = (0..n).map(|i| q[(i, j)] * q[(i, j)]).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for i in 0..n {
                q[(i, j)] /= norm;
            }
        }
    }
}

/// Training data for DAEGC-lite: identical to [`TrainData::from_graph`] but
/// with the 2-hop proximity filter `(Ã + Ã²)/2` standing in for DAEGC's
/// learned attention. Feed the result to [`crate::Dgae`].
pub fn daegc_lite_data(graph: &AttributedGraph) -> TrainData {
    let mut data = TrainData::from_graph(graph);
    let a1 = data.filter.to_dense();
    let a2 = a1.matmul(&a1).expect("square");
    let mixed = a1.add(&a2).expect("same shape").scale(0.5);
    // Sparsify: keep entries that carry real propagation weight.
    let n = mixed.rows();
    let mut triplets = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let v = mixed[(i, j)];
            if v > 1e-6 {
                triplets.push((i, j, v));
            }
        }
    }
    data.filter = Rc::new(Csr::from_triplets(n, n, &triplets).expect("in range"));
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgae_cluster::accuracy;
    use rgae_datasets::{citation_like, CitationSpec};

    fn easy_graph(seed: u64) -> AttributedGraph {
        citation_like(
            &CitationSpec {
                name: "easy".into(),
                num_nodes: 180,
                num_classes: 3,
                num_features: 90,
                avg_degree: 6.0,
                homophily: 0.92,
                degree_power: 3.0,
                words_per_node: 14,
                topic_purity: 0.9,
                class_proportions: vec![],
            },
            seed,
        )
        .unwrap()
    }

    #[test]
    fn mgae_lite_beats_chance_clearly() {
        let g = easy_graph(1);
        let mut rng = Rng64::seed_from_u64(10);
        let (pred, h) = mgae_lite(&g, 3, 0.2, 1e-2, &mut rng).unwrap();
        let acc = accuracy(&pred, g.labels());
        assert!(acc > 0.6, "mgae acc {acc}");
        assert_eq!(h.rows(), g.num_nodes());
    }

    #[test]
    fn agc_lite_beats_chance_clearly() {
        let g = easy_graph(2);
        let mut rng = Rng64::seed_from_u64(11);
        let pred = agc_lite(&g, 4, &mut rng).unwrap();
        let acc = accuracy(&pred, g.labels());
        assert!(acc > 0.6, "agc acc {acc}");
    }

    #[test]
    fn spectral_lite_beats_chance() {
        let g = easy_graph(3);
        let mut rng = Rng64::seed_from_u64(12);
        let pred = spectral_lite(&g, 6, &mut rng).unwrap();
        let acc = accuracy(&pred, g.labels());
        assert!(acc > 0.5, "spectral acc {acc}");
    }

    #[test]
    fn daegc_lite_filter_is_denser_than_one_hop() {
        let g = easy_graph(4);
        let one_hop = TrainData::from_graph(&g);
        let two_hop = daegc_lite_data(&g);
        assert!(two_hop.filter.nnz() > one_hop.filter.nnz());
        // Still a proper propagation operator: rows non-negative and finite.
        for (_, _, v) in two_hop.filter.iter() {
            assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn gram_schmidt_orthonormal() {
        let mut rng = Rng64::seed_from_u64(13);
        let mut q = rgae_linalg::standard_normal(30, 5, &mut rng);
        gram_schmidt(&mut q);
        let gram = q.t_matmul(&q).unwrap();
        assert!(gram.max_abs_diff(&Mat::eye(5)) < 1e-9);
    }
}

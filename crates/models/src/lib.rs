//! GAE-family attributed-graph clustering models.
//!
//! The paper's experimental protocol covers six models. Following its §2
//! taxonomy:
//!
//! * **First group** (embedding learnt separately from clustering):
//!   [`Gae`], [`Vgae`], [`Argae`], [`Arvgae`]. These optimise only
//!   self-supervision (reconstruction, optionally adversarially
//!   regularised); clusters are read out post-hoc with k-means.
//! * **Second group** (joint clustering + embedding): [`Dgae`]
//!   (Appendix B's Discriminative GAE, a DEC-style Student-t head) and
//!   [`GmmVgae`] (a VGAE with a Gaussian-mixture latent head).
//!
//! All models implement [`GaeModel`], the surface the R-trainer
//! (`rgae-core`) drives: deterministic embedding, soft assignments, a
//! configurable training step whose reconstruction target and clustering
//! scope can be overridden (that is exactly where Ξ and Υ plug in), and raw
//! encoder-gradient accessors for the Λ_FR / Λ_FD diagnostics.
//!
//! [`baselines`] adds the simpler comparison methods used in the paper's
//! Table 17.

// Indexed loops over parallel buffers are the idiom throughout this
// numeric codebase; iterator rewrites obscure the index coupling.
#![allow(clippy::needless_range_loop)]

pub mod baselines;
mod data;
mod encoder;
mod models;

pub use data::TrainData;
pub use encoder::{GcnEncoder, Mlp, VarGcnEncoder};
pub use models::{Argae, Arvgae, Dgae, Gae, GmmVgae, Vgae};
pub use rgae_ckpt::ModelState;

use rgae_linalg::{Mat, Rng64};
use std::rc::Rc;

/// Errors surfaced by model construction or training.
#[derive(Debug)]
pub enum Error {
    /// Autodiff/tape failure (shape or invariant).
    Autodiff(rgae_autodiff::Error),
    /// Clustering subroutine failure.
    Cluster(rgae_cluster::Error),
    /// Model-specific invariant violated.
    Invalid(&'static str),
}

impl From<rgae_autodiff::Error> for Error {
    fn from(e: rgae_autodiff::Error) -> Self {
        Error::Autodiff(e)
    }
}

impl From<rgae_cluster::Error> for Error {
    fn from(e: rgae_cluster::Error) -> Self {
        Error::Cluster(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Autodiff(e) => write!(f, "autodiff: {e}"),
            Error::Cluster(e) => write!(f, "cluster: {e}"),
            Error::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Clustering part of a [`StepSpec`].
#[derive(Clone, Debug)]
pub struct ClusterStep {
    /// Row-stochastic `N×K` target the model's clustering loss trains
    /// towards (DEC target `Q`, GMM responsibilities, or a one-hot
    /// supervised signal for diagnostics).
    pub target: Mat,
    /// Restrict the clustering loss to these rows (the Ξ operator's Ω).
    /// `None` means all nodes.
    pub omega: Option<Vec<usize>>,
}

/// Everything one optimisation step needs.
#[derive(Clone, Debug)]
pub struct StepSpec {
    /// Self-supervision target. `None` skips the reconstruction term
    /// entirely (the paper's "abrupt elimination" ablation).
    pub recon_target: Option<Rc<rgae_linalg::Csr>>,
    /// Weight γ on the reconstruction term (relative to clustering).
    pub gamma: f64,
    /// Optional clustering term.
    pub cluster: Option<ClusterStep>,
}

impl StepSpec {
    /// Pure reconstruction against the given target with weight one.
    pub fn pretrain(target: Rc<rgae_linalg::Csr>) -> Self {
        StepSpec {
            recon_target: Some(target),
            gamma: 1.0,
            cluster: None,
        }
    }
}

/// The model surface the R-trainer drives.
pub trait GaeModel {
    /// Model name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Clone into a boxed trait object (every model is `Clone`; this makes
    /// the paper's shared-pretraining protocol work through `dyn GaeModel`).
    fn clone_box(&self) -> Box<dyn GaeModel>;

    /// Deterministic embedding `Z` (variational models return the mean).
    fn embed(&self, data: &TrainData) -> Mat;

    /// Soft clustering assignments `P` from the model's own clustering head,
    /// or `None` for first-group models (which have no head).
    fn soft_assignments(&self, data: &TrainData) -> Result<Option<Mat>>;

    /// The soft assignments the Ξ operator should read. Defaults to
    /// [`GaeModel::soft_assignments`]; models whose heads produce saturated
    /// probabilities (GMM responsibilities in a well-separated latent space)
    /// override this with a dimension-tempered variant so the λ scores keep
    /// their discriminative spread. Row-wise argmax is always identical to
    /// `soft_assignments`.
    fn xi_assignments(&self, data: &TrainData) -> Result<Option<Mat>> {
        self.soft_assignments(data)
    }

    /// Initialise the clustering head from the current embeddings (k-means
    /// centroids for DGAE, a fitted GMM for GMM-VGAE). No-op for the first
    /// group.
    fn init_clustering(&mut self, data: &TrainData, rng: &mut Rng64) -> Result<()>;

    /// The model's own pseudo-supervised clustering target (e.g. the DEC
    /// target distribution), or `None` for the first group.
    fn cluster_target(&self, data: &TrainData) -> Result<Option<Mat>>;

    /// One optimisation step; returns the scalar loss before the update.
    fn train_step(&mut self, data: &TrainData, spec: &StepSpec, rng: &mut Rng64) -> Result<f64>;

    /// Flattened gradient of the model's clustering loss (with an explicit
    /// target and optional Ω restriction) w.r.t. the *encoder* parameters θ,
    /// evaluated at the current parameters without updating them. `None` for
    /// first-group models. Used by the Λ_FR diagnostic.
    fn clustering_grad(
        &self,
        data: &TrainData,
        target: &Mat,
        omega: Option<&[usize]>,
    ) -> Result<Option<Vec<f64>>>;

    /// Flattened gradient of the reconstruction loss against an explicit
    /// target w.r.t. the encoder parameters θ. Used by the Λ_FD diagnostic.
    fn recon_grad(&self, data: &TrainData, target: &Rc<rgae_linalg::Csr>) -> Result<Vec<f64>>;

    /// Export every learned quantity (weights, clustering heads, optimiser
    /// moments) into a [`ModelState`] for checkpointing.
    fn export_params(&self) -> ModelState;

    /// Restore a [`ModelState`] produced by [`GaeModel::export_params`] on a
    /// freshly constructed model of the same architecture. Rejects state
    /// saved by a different model or shape with [`Error::Invalid`].
    fn import_params(&mut self, state: &ModelState) -> Result<()>;

    /// Scale every internal optimiser's learning rate by `factor`. The guard
    /// recovery policy uses this for its backoff after a rollback; scales
    /// compound across retries. Adversarial models scale the discriminator's
    /// optimiser too, keeping the GAN balance.
    fn scale_lr(&mut self, factor: f64);

    /// Total optimiser updates skipped because a non-finite gradient reached
    /// `Adam::update`, summed over every internal optimiser. Monotone per
    /// model instance; not persisted across checkpoints.
    fn nonfinite_grad_steps(&self) -> u64;
}

impl Clone for Box<dyn GaeModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

//! Encoders and small dense networks: the GCN encoder shared by all models,
//! its variational variant, and a plain MLP (discriminators).

use std::rc::Rc;

use rgae_autodiff::{Graph, Var};
use rgae_linalg::{glorot_uniform, Csr, Mat, Rng64};

use crate::Result;

/// A stack of graph-convolution layers `H^{l+1} = φ(Ã H^l W_l)` with ReLU on
/// every layer except the last (linear output, as in the GAE reference).
#[derive(Clone)]
pub struct GcnEncoder {
    weights: Vec<Mat>,
}

impl GcnEncoder {
    /// Glorot-initialised encoder with the given layer dimensions
    /// (`dims[0]` = input features, `dims.last()` = latent d).
    pub fn new(dims: &[usize], rng: &mut Rng64) -> Self {
        assert!(dims.len() >= 2, "encoder needs at least one layer");
        let weights = dims
            .windows(2)
            .map(|w| glorot_uniform(w[0], w[1], rng))
            .collect();
        GcnEncoder { weights }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Immutable parameter views, in canonical order.
    pub fn params(&self) -> Vec<&Mat> {
        self.weights.iter().collect()
    }

    /// Mutable parameter views, in canonical order.
    pub fn params_mut(&mut self) -> Vec<&mut Mat> {
        self.weights.iter_mut().collect()
    }

    /// Differentiable forward pass. Returns the latent node and the leaf
    /// handles of each weight (same order as [`GcnEncoder::params`]).
    pub fn forward(&self, g: &mut Graph, filter: &Rc<Csr>, x: Var) -> Result<(Var, Vec<Var>)> {
        let mut leaves = Vec::with_capacity(self.weights.len());
        let mut h = x;
        let last = self.weights.len() - 1;
        for (l, w) in self.weights.iter().enumerate() {
            let wv = g.leaf(w.clone());
            leaves.push(wv);
            h = g.spmm(filter, h)?;
            h = g.matmul(h, wv)?;
            if l != last {
                h = g.relu(h);
            }
        }
        Ok((h, leaves))
    }

    /// Non-differentiable forward pass (plain matrices).
    pub fn embed(&self, filter: &Csr, x: &Mat) -> Mat {
        let mut h = x.clone();
        let last = self.weights.len() - 1;
        for (l, w) in self.weights.iter().enumerate() {
            h = filter.spmm(&h).expect("filter/features shapes agree");
            h = h.matmul(w).expect("layer shapes agree");
            if l != last {
                h = h.map(|v| v.max(0.0));
            }
        }
        h
    }
}

/// Variational GCN encoder: shared trunk, then two linear graph-conv heads
/// producing `μ` and `log σ²` (the VGAE parameterisation).
#[derive(Clone)]
pub struct VarGcnEncoder {
    trunk: GcnEncoder,
    w_mu: Mat,
    w_logvar: Mat,
}

impl VarGcnEncoder {
    /// `dims` covers input → trunk output; `latent` is d.
    pub fn new(dims: &[usize], latent: usize, rng: &mut Rng64) -> Self {
        assert!(dims.len() >= 2, "trunk needs at least one layer");
        let hidden = *dims.last().expect("non-empty dims");
        VarGcnEncoder {
            trunk: GcnEncoder::new(dims, rng),
            w_mu: glorot_uniform(hidden, latent, rng),
            w_logvar: glorot_uniform(hidden, latent, rng),
        }
    }

    /// Immutable parameters: trunk layers, then `w_mu`, then `w_logvar`.
    pub fn params(&self) -> Vec<&Mat> {
        let mut p = self.trunk.params();
        p.push(&self.w_mu);
        p.push(&self.w_logvar);
        p
    }

    /// Mutable parameters in the same canonical order.
    pub fn params_mut(&mut self) -> Vec<&mut Mat> {
        let mut p: Vec<&mut Mat> = self.trunk.weights.iter_mut().collect();
        p.push(&mut self.w_mu);
        p.push(&mut self.w_logvar);
        p
    }

    /// Differentiable forward: `(μ, log σ², leaves)`. The trunk output gets
    /// a ReLU before the heads (it is an intermediate layer here).
    pub fn forward(&self, g: &mut Graph, filter: &Rc<Csr>, x: Var) -> Result<(Var, Var, Vec<Var>)> {
        let (h, mut leaves) = self.trunk.forward(g, filter, x)?;
        let h = g.relu(h);
        let wm = g.leaf(self.w_mu.clone());
        let wl = g.leaf(self.w_logvar.clone());
        let hm = g.spmm(filter, h)?;
        let mu = g.matmul(hm, wm)?;
        let logvar = g.matmul(hm, wl)?;
        leaves.push(wm);
        leaves.push(wl);
        Ok((mu, logvar, leaves))
    }

    /// Reparameterised sample `z = μ + ε ⊙ exp(½ log σ²)`.
    pub fn sample(g: &mut Graph, mu: Var, logvar: Var, rng: &mut Rng64) -> Result<Var> {
        let (r, c) = g.shape(mu);
        let eps = g.constant(rgae_linalg::standard_normal(r, c, rng));
        let half = g.scale(logvar, 0.5);
        let std = g.exp(half);
        let noise = g.hadamard(eps, std)?;
        Ok(g.add(mu, noise)?)
    }

    /// Deterministic embedding: the mean `μ`.
    pub fn embed(&self, filter: &Csr, x: &Mat) -> Mat {
        let h = self.trunk.embed(filter, x).map(|v| v.max(0.0));
        let h = filter.spmm(&h).expect("shapes agree");
        h.matmul(&self.w_mu).expect("shapes agree")
    }
}

/// A plain fully-connected network with ReLU hidden layers and a linear
/// output (ARGAE's discriminator).
#[derive(Clone)]
pub struct Mlp {
    weights: Vec<Mat>,
    biases: Vec<Mat>,
}

impl Mlp {
    /// Glorot-initialised MLP with the given layer dimensions.
    pub fn new(dims: &[usize], rng: &mut Rng64) -> Self {
        assert!(dims.len() >= 2, "mlp needs at least one layer");
        let weights: Vec<Mat> = dims
            .windows(2)
            .map(|w| glorot_uniform(w[0], w[1], rng))
            .collect();
        let biases = dims[1..].iter().map(|&d| Mat::zeros(1, d)).collect();
        Mlp { weights, biases }
    }

    /// Immutable parameters: `w_0, b_0, w_1, b_1, …`.
    pub fn params(&self) -> Vec<&Mat> {
        self.weights
            .iter()
            .zip(self.biases.iter())
            .flat_map(|(w, b)| [w, b])
            .collect()
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Mat> {
        self.weights
            .iter_mut()
            .zip(self.biases.iter_mut())
            .flat_map(|(w, b)| [w as &mut Mat, b as &mut Mat])
            .collect()
    }

    /// Differentiable forward (logits out). Returns output and leaf handles
    /// in the parameter order.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Result<(Var, Vec<Var>)> {
        self.forward_impl(g, x, false)
    }

    /// Forward pass with the MLP's own weights frozen (inserted as
    /// constants). Used when training a generator against a fixed
    /// discriminator.
    pub fn forward_frozen(&self, g: &mut Graph, x: Var) -> Result<Var> {
        Ok(self.forward_impl(g, x, true)?.0)
    }

    fn forward_impl(&self, g: &mut Graph, x: Var, frozen: bool) -> Result<(Var, Vec<Var>)> {
        let mut leaves = Vec::new();
        let mut h = x;
        let last = self.weights.len() - 1;
        for (l, (w, b)) in self.weights.iter().zip(self.biases.iter()).enumerate() {
            let (wv, bv) = if frozen {
                (g.constant(w.clone()), g.constant(b.clone()))
            } else {
                (g.leaf(w.clone()), g.leaf(b.clone()))
            };
            if !frozen {
                leaves.push(wv);
                leaves.push(bv);
            }
            h = g.matmul(h, wv)?;
            h = g.add_bias(h, bv)?;
            if l != last {
                h = g.relu(h);
            }
        }
        Ok((h, leaves))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter3() -> Rc<Csr> {
        Rc::new(
            Csr::adjacency_from_edges(3, &[(0, 1), (1, 2)])
                .unwrap()
                .gcn_normalized()
                .unwrap(),
        )
    }

    #[test]
    fn gcn_forward_matches_embed() {
        let mut rng = Rng64::seed_from_u64(1);
        let enc = GcnEncoder::new(&[4, 3, 2], &mut rng);
        let f = filter3();
        let x = rgae_linalg::standard_normal(3, 4, &mut rng);
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let (z, leaves) = enc.forward(&mut g, &f, xv).unwrap();
        assert_eq!(leaves.len(), 2);
        let z_plain = enc.embed(&f, &x);
        assert!(g.value(z).max_abs_diff(&z_plain) < 1e-12);
        assert_eq!(z_plain.shape(), (3, 2));
    }

    #[test]
    fn var_encoder_shapes_and_determinism() {
        let mut rng = Rng64::seed_from_u64(2);
        let enc = VarGcnEncoder::new(&[4, 3], 2, &mut rng);
        let f = filter3();
        let x = rgae_linalg::standard_normal(3, 4, &mut rng);
        let mu = enc.embed(&f, &x);
        assert_eq!(mu.shape(), (3, 2));
        assert_eq!(enc.params().len(), 3);
        // Differentiable mean equals plain mean.
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let (mv, _, leaves) = enc.forward(&mut g, &f, xv).unwrap();
        assert_eq!(leaves.len(), 3);
        assert!(g.value(mv).max_abs_diff(&mu) < 1e-12);
    }

    #[test]
    fn sample_differs_from_mean_but_tracks_it() {
        let mut rng = Rng64::seed_from_u64(3);
        let enc = VarGcnEncoder::new(&[4, 3], 2, &mut rng);
        let f = filter3();
        let x = rgae_linalg::standard_normal(3, 4, &mut rng);
        let mut g = Graph::new();
        let xv = g.constant(x);
        let (mu, lv, _) = enc.forward(&mut g, &f, xv).unwrap();
        let z = VarGcnEncoder::sample(&mut g, mu, lv, &mut rng).unwrap();
        let diff = g.value(z).sub(g.value(mu)).unwrap().frob_norm();
        assert!(diff > 0.0);
    }

    #[test]
    fn mlp_forward_shapes_and_param_order() {
        let mut rng = Rng64::seed_from_u64(4);
        let mlp = Mlp::new(&[2, 8, 1], &mut rng);
        assert_eq!(mlp.params().len(), 4);
        let mut g = Graph::new();
        let x = g.constant(rgae_linalg::standard_normal(5, 2, &mut rng));
        let (out, leaves) = mlp.forward(&mut g, x).unwrap();
        assert_eq!(g.shape(out), (5, 1));
        assert_eq!(leaves.len(), 4);
    }

    #[test]
    fn mlp_trains_xor() {
        // The classic sanity check that forward + backward + Adam compose.
        use rgae_autodiff::Adam;
        let mut rng = Rng64::seed_from_u64(5);
        let mut mlp = Mlp::new(&[2, 8, 1], &mut rng);
        let x = Mat::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        let t = Rc::new(Mat::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]).unwrap());
        let mut adam = Adam::new(0.05);
        for p in mlp.params() {
            adam.register(p.shape());
        }
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let (out, leaves) = mlp.forward(&mut g, xv).unwrap();
            let loss = g.bce_logits_dense(out, &t).unwrap();
            last = g.scalar(loss);
            g.backward(loss).unwrap();
            let grads: Vec<Mat> = leaves.iter().map(|&l| g.grad(l).unwrap().clone()).collect();
            adam.begin_step();
            for (slot, (p, gr)) in mlp.params_mut().into_iter().zip(&grads).enumerate() {
                adam.update(slot, p, gr);
            }
        }
        assert!(last < 0.05, "xor loss {last}");
    }
}

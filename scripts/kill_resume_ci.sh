#!/bin/bash
# Kill-and-resume smoke test for the checkpoint/resume path, run by CI.
#
# 1. Run a quick fig9 experiment uninterrupted (the reference).
# 2. Run the same experiment with checkpointing on and SIGKILL it partway.
# 3. Rerun with --resume, which restores the latest checkpoint.
# 4. Diff the per-epoch losses and final metrics in the JSONL run logs:
#    the resumed run must be bit-identical to the reference.
#
# Timing-only fields (train_seconds, span events, run_id) are excluded from
# the diff; everything numeric about the training trajectory is compared
# exactly, as printed. If the kill happens to land after the run finished,
# --resume fast-forwards from the final checkpoint and replays the full
# event log, so the diff still must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cargo build --release -p rgae-xp --bin fig9

BIN=target/release/fig9
COMMON=(--quick --seed 5)

echo "== reference run (uninterrupted) =="
start=$(date +%s%N)
"$BIN" "${COMMON[@]}" --out "$WORK/ref" --trace-out "$WORK/ref.jsonl" > /dev/null
elapsed_ms=$(( ($(date +%s%N) - start) / 1000000 ))
echo "reference took ${elapsed_ms}ms"

# Kill the checkpointed run at ~40% of the reference wall time so it dies
# mid-training (floor of 1s keeps `timeout` happy on very fast machines).
kill_after_ms=$(( elapsed_ms * 2 / 5 ))
[ "$kill_after_ms" -lt 1000 ] && kill_after_ms=1000
CKPT=(--checkpoint-dir "$WORK/ckpt" --checkpoint-every 3)

kill_after=$(printf '%d.%03ds' $(( kill_after_ms / 1000 )) $(( kill_after_ms % 1000 )))

echo "== checkpointed run, killed after ${kill_after} =="
if timeout -s KILL "$kill_after" \
    "$BIN" "${COMMON[@]}" "${CKPT[@]}" --out "$WORK/int" --trace-out "$WORK/int.jsonl" > /dev/null; then
  echo "(run finished before the kill; resume will fast-forward)"
else
  echo "(killed as intended)"
fi

echo "== resumed run =="
"$BIN" "${COMMON[@]}" "${CKPT[@]}" --resume \
  --out "$WORK/res" --trace-out "$WORK/res.jsonl" > /dev/null

echo "== diffing run logs =="
python3 - "$WORK/ref.jsonl" "$WORK/res.jsonl" <<'EOF'
import json, sys

def trajectory(path):
    epochs, run_end = [], None
    with open(path) as fh:
        for line in fh:
            ev = json.loads(line)
            if ev["type"] == "epoch":
                # Everything except the type tag is deterministic data.
                epochs.append({k: v for k, v in ev.items() if k != "type"})
            elif ev["type"] == "run_end":
                run_end = {k: v for k, v in ev.items()
                           if k not in ("type", "train_seconds")}
    assert run_end is not None, f"{path}: no run_end event"
    return epochs, run_end

ref_epochs, ref_end = trajectory(sys.argv[1])
res_epochs, res_end = trajectory(sys.argv[2])

assert len(ref_epochs) == len(res_epochs), \
    f"epoch count differs: {len(ref_epochs)} vs {len(res_epochs)}"
for i, (a, b) in enumerate(zip(ref_epochs, res_epochs)):
    assert a == b, f"epoch {i} differs:\n  ref: {a}\n  res: {b}"
assert ref_end == res_end, f"run_end differs:\n  ref: {ref_end}\n  res: {res_end}"
print(f"OK: {len(ref_epochs)} epochs and final metrics are identical "
      f"(acc={ref_end['final_acc']}, nmi={ref_end['final_nmi']}, "
      f"ari={ref_end['final_ari']})")
EOF

echo "kill-and-resume check passed"

#!/bin/bash
# Chaos smoke test for the rgae-guard layer, run by CI.
#
# 1. Run a quick fig9 experiment with guards off (the reference).
# 2. Run it again with --guard and no faults: the run log's training
#    trajectory must be bit-identical to the reference — the monitor
#    observes, it never perturbs.
# 3. Run it with RGAE_FAULT=nan_grad@epoch:3 and checkpointing on: the
#    poisoned step must trip the guard, roll back to the last healthy
#    checkpoint, retry with a backed-off learning rate, and still finish —
#    not degraded, with finite final metrics within tolerance of the
#    reference.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cargo build --release -p rgae-xp --bin fig9

BIN=target/release/fig9
COMMON=(--quick --seed 5)

echo "== reference run (guards off) =="
"$BIN" "${COMMON[@]}" --out "$WORK/ref" --trace-out "$WORK/ref.jsonl" > /dev/null

echo "== guarded run, no faults (must be bit-identical) =="
"$BIN" "${COMMON[@]}" --guard --out "$WORK/clean" --trace-out "$WORK/clean.jsonl" > /dev/null

echo "== chaos run: RGAE_FAULT=nan_grad@epoch:3 =="
RGAE_FAULT=nan_grad@epoch:3 \
  "$BIN" "${COMMON[@]}" --checkpoint-dir "$WORK/ckpt" --checkpoint-every 2 \
  --out "$WORK/chaos" --trace-out "$WORK/chaos.jsonl" > /dev/null

echo "== checking run logs =="
python3 - "$WORK/ref.jsonl" "$WORK/clean.jsonl" "$WORK/chaos.jsonl" <<'EOF'
import json, sys

def load(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh]

def trajectory(events):
    epochs = [{k: v for k, v in ev.items() if k != "type"}
              for ev in events if ev["type"] == "epoch"]
    ends = [ev for ev in events if ev["type"] == "run_end"]
    assert len(ends) == 1, f"expected one run_end, got {len(ends)}"
    end = {k: v for k, v in ends[0].items() if k not in ("type", "train_seconds")}
    return epochs, end

ref = load(sys.argv[1])
clean = load(sys.argv[2])
chaos = load(sys.argv[3])

# -- Differential: a fault-free guarded run changes nothing. ---------------
ref_epochs, ref_end = trajectory(ref)
clean_epochs, clean_end = trajectory(clean)
assert len(ref_epochs) == len(clean_epochs), \
    f"epoch count differs: {len(ref_epochs)} vs {len(clean_epochs)}"
for i, (a, b) in enumerate(zip(ref_epochs, clean_epochs)):
    assert a == b, f"guards-on epoch {i} differs:\n  ref: {a}\n  on:  {b}"
assert ref_end == clean_end, \
    f"guards-on run_end differs:\n  ref: {ref_end}\n  on:  {clean_end}"
print(f"OK: fault-free guarded run is bit-identical over {len(ref_epochs)} epochs")

# -- Chaos: the injected fault must be caught and recovered from. ----------
guard_kinds = [(ev["kind"], ev["severity"])
               for ev in chaos if ev["type"] == "guard"]
assert ("fault_injected", "info") in guard_kinds, \
    f"injection not logged: {guard_kinds}"
assert any(sev == "trip" for _, sev in guard_kinds), \
    f"no guard tripped: {guard_kinds}"

recovery = [ev["action"] for ev in chaos if ev["type"] == "recovery"]
assert "rollback" in recovery and "retry" in recovery, \
    f"rollback/retry missing from the log: {recovery}"

chaos_epochs, chaos_end = trajectory(chaos)
assert not chaos_end.get("degraded", False), \
    "one fault within the retry budget must not degrade the run"
# The log keeps the epoch records that were later rolled back (it is a
# faithful history); the retry re-emits them, so keep the last record per
# epoch index to recover the surviving trajectory.
survived = {e["epoch"]: e for e in chaos_epochs}
rolled_back = len(chaos_epochs) - len(survived)
assert rolled_back >= 1, "the rollback must have discarded at least one epoch"
assert sorted(survived) == [e["epoch"] for e in ref_epochs], \
    f"recovered run must cover the full schedule: " \
    f"{len(survived)} distinct epochs vs {len(ref_epochs)}"
for key in ("final_acc", "final_nmi", "final_ari"):
    v = chaos_end[key]
    assert v == v and abs(v) != float("inf"), f"{key} is not finite: {v}"
# The retry resumes with a halved LR and a reseeded RNG, so the trajectory
# legitimately diverges from the reference — but not by much on this graph.
drift = abs(chaos_end["final_acc"] - ref_end["final_acc"])
assert drift <= 0.20, \
    f"recovered accuracy drifted too far: {chaos_end['final_acc']} vs " \
    f"{ref_end['final_acc']} (|Δ| = {drift:.3f})"
print(f"OK: fault tripped ({[k for k, s in guard_kinds if s == 'trip']}), "
      f"recovered via {recovery} ({rolled_back} epoch(s) rolled back), "
      f"final_acc drift {drift:.3f} <= 0.20")
EOF

echo "chaos check passed"

//! The paper's directional claims, checked at miniature scale. These are
//! the "shape" assertions EXPERIMENTS.md reports at full scale; here they
//! run in seconds as regression guards.

use rgae_core::{train_plain, FdMode, RTrainer};
use rgae_linalg::Rng64;
use rgae_models::TrainData;
use rgae_xp::{rconfig_for, DatasetKind, ModelKind};

fn setup_at(
    model: ModelKind,
    seed: u64,
    scale: f64,
    epochs: usize,
) -> (
    rgae_graph::AttributedGraph,
    TrainData,
    Box<dyn rgae_models::GaeModel>,
    rgae_core::RConfig,
) {
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(scale, seed);
    let data = TrainData::from_graph(&graph);
    let mut cfg = rconfig_for(model, dataset, false);
    cfg.pretrain_epochs = epochs;
    cfg.max_epochs = epochs;
    let mut rng = Rng64::seed_from_u64(seed);
    let mut m = model.build(data.num_features(), graph.num_classes(), &mut rng);
    RTrainer::new(cfg.clone())
        .pretrain(m.as_mut(), &data, &mut rng)
        .unwrap();
    (graph, data, m, cfg)
}

fn setup(
    model: ModelKind,
    seed: u64,
) -> (
    rgae_graph::AttributedGraph,
    TrainData,
    Box<dyn rgae_models::GaeModel>,
    rgae_core::RConfig,
) {
    let (graph, data, m, mut cfg) = setup_at(model, seed, 0.15, 60);
    cfg.m1 = cfg.m1.min(10);
    cfg.m2 = cfg.m2.min(5);
    cfg.min_epochs = 10;
    (graph, data, m, cfg)
}

/// Tables 1–2 shape: averaged over the second-group models and seeds, the
/// R-variants do not lose to their counterparts. (Run at a moderate scale
/// and aggregated — at miniature N a single pairing is noise, partly
/// because R runs faithfully stop at the |Ω| ≥ 0.9N criterion while the
/// plain run spends its full epoch budget.)
#[test]
fn claim_r_variant_not_worse() {
    let mut diff = 0.0;
    let mut runs = 0;
    for model in [ModelKind::Dgae, ModelKind::GmmVgae] {
        for seed in 0..3 {
            let (graph, data, base, cfg) = setup_at(model, 20 + seed, 0.25, 100);
            let mut plain = base.clone_box();
            let mut cfg_p = cfg.clone();
            cfg_p.pretrain_epochs = 0;
            let mut rng_p = Rng64::seed_from_u64(1);
            let p = train_plain(plain.as_mut(), &graph, &cfg_p, &mut rng_p).unwrap();
            let mut r_model = base;
            let mut rng_r = Rng64::seed_from_u64(1);
            let r = RTrainer::new(cfg)
                .train_clustering_phase(r_model.as_mut(), &graph, &data, &mut rng_r)
                .unwrap();
            diff += r.final_metrics.acc - p.final_metrics.acc;
            runs += 1;
        }
    }
    let mean = diff / runs as f64;
    assert!(mean > -0.02, "mean ACC delta {mean}");
}

/// Table 6 shape: protection (no delay) does not lose to a long correction
/// delay. Averaged over seeds — at miniature scale a single pairing swings
/// by ±0.1 ACC, so the single-seed form of this test was a knife edge.
#[test]
fn claim_protection_beats_long_delay() {
    let mut diff = 0.0;
    let mut runs = 0;
    for seed in 31..36 {
        let (graph, data, base, cfg) = setup(ModelKind::Dgae, seed);
        let run = |delay: usize, base: &dyn rgae_models::GaeModel| {
            let mut cfg = cfg.clone();
            cfg.delay_xi = delay;
            cfg.min_epochs = cfg.max_epochs.max(delay + 15);
            cfg.max_epochs = cfg.min_epochs;
            let mut m = base.clone_box();
            let mut rng = Rng64::seed_from_u64(2);
            RTrainer::new(cfg)
                .train_clustering_phase(m.as_mut(), &graph, &data, &mut rng)
                .unwrap()
                .final_metrics
                .acc
        };
        diff += run(0, base.as_ref()) - run(40, base.as_ref());
        runs += 1;
    }
    let mean = diff / runs as f64;
    assert!(mean > -0.04, "mean protection − delayed ACC delta {mean}");
}

/// Table 7 shape: for FD, gradual correction beats single-step protection.
#[test]
fn claim_gradual_fd_not_worse_than_single_step() {
    let mut diff = 0.0;
    for seed in 0..2 {
        let (graph, data, base, cfg) = setup(ModelKind::Dgae, 40 + seed);
        let run = |mode: FdMode, base: &dyn rgae_models::GaeModel| {
            let mut cfg = cfg.clone();
            cfg.fd_mode = mode;
            let mut m = base.clone_box();
            let mut rng = Rng64::seed_from_u64(3);
            RTrainer::new(cfg)
                .train_clustering_phase(m.as_mut(), &graph, &data, &mut rng)
                .unwrap()
                .final_metrics
                .acc
        };
        diff += run(FdMode::GradualCorrection, base.as_ref())
            - run(FdMode::SingleStepProtection, base.as_ref());
    }
    assert!(diff / 2.0 > -0.04, "mean delta {}", diff / 2.0);
}

/// Tables 8–9 shape: full operators beat ablating both of either operator.
#[test]
fn claim_full_operators_not_worse_than_double_ablation() {
    let (graph, data, base, cfg) = setup(ModelKind::Dgae, 51);
    let run = |use_xi: bool, use_upsilon: bool, base: &dyn rgae_models::GaeModel| {
        let mut cfg = cfg.clone();
        cfg.use_xi = use_xi;
        cfg.use_upsilon = use_upsilon;
        let mut m = base.clone_box();
        let mut rng = Rng64::seed_from_u64(4);
        RTrainer::new(cfg)
            .train_clustering_phase(m.as_mut(), &graph, &data, &mut rng)
            .unwrap()
            .final_metrics
            .acc
    };
    let full = run(true, true, base.as_ref());
    let no_xi = run(false, true, base.as_ref());
    let no_upsilon = run(true, false, base.as_ref());
    assert!(full + 0.06 >= no_xi, "full {full} vs no-xi {no_xi}");
    assert!(
        full + 0.06 >= no_upsilon,
        "full {full} vs no-upsilon {no_upsilon}"
    );
}

/// Figure 6 / Fig. 4 shape: by the end of training the Υ-rewritten
/// self-supervision graph is structurally closer to the supervised
/// clustering-oriented graph Υ(A, Q′, 𝒱) than the vanilla graph A is —
/// the mechanism the Λ_FD gradient cosine is a proxy for. (The raw
/// gradient-cosine tail is too noisy to assert at miniature scale; the
/// full-scale curves are produced by `fig5_6`.)
#[test]
fn claim_upsilon_graph_reduces_fd() {
    use rgae_core::{one_hot_targets, q_prime, upsilon, UpsilonConfig};
    // Scale 0.25, not the usual 0.15: below ~400 nodes the Ξ-restricted Υ
    // rewrite has too few confident nodes for the homophily gain to clear
    // the noise floor on every seed.
    let (graph, data, mut model, mut cfg) = setup_at(ModelKind::GmmVgae, 61, 0.25, 60);
    cfg.m1 = cfg.m1.min(10);
    cfg.m2 = cfg.m2.min(5);
    cfg.track_diagnostics = true;
    cfg.min_epochs = cfg.max_epochs;
    let mut rng = Rng64::seed_from_u64(5);
    let report = RTrainer::new(cfg)
        .train_clustering_phase(model.as_mut(), &graph, &data, &mut rng)
        .unwrap();
    // The supervised clustering-oriented graph must itself be valid (the
    // reference point of Eq. 7).
    let z = model.embed(&data);
    let p = model.soft_assignments(&data).unwrap().unwrap();
    let qp = q_prime(&p.row_argmax(), graph.labels());
    let one_hot = one_hot_targets(&qp, p.cols());
    let all: Vec<usize> = (0..data.num_nodes).collect();
    let sup = upsilon(
        &data.adjacency,
        &one_hot,
        &z,
        &all,
        &UpsilonConfig::default(),
    )
    .unwrap()
    .graph;
    assert!(rgae_graph::edge_homophily(&sup, graph.labels()) > 0.95);

    // Fig. 9d–f content: the rewritten self-supervision graph is more
    // clustering-oriented than A — its homophily rises and the links Υ
    // added are mostly true links.
    let h_before = rgae_graph::edge_homophily(&data.adjacency, graph.labels());
    let h_after = rgae_graph::edge_homophily(&report.final_graph, graph.labels());
    assert!(
        h_after >= h_before,
        "self-supervision homophily {h_before} -> {h_after}"
    );
    let last = report.epochs.last().unwrap();
    // The final epoch is always a forced-eval epoch, so the link split is
    // present whatever `eval_every` says.
    let (added_true, added_false) = last.added_links.expect("final epoch carries link stats");
    if added_true + added_false > 10 {
        assert!(
            added_true > added_false,
            "added links: {added_true} true vs {added_false} false"
        );
    }
    // And the gradient proxy must not be catastrophically worse.
    let tail = &report.epochs[report.epochs.len() * 2 / 3..];
    let mean = |f: &dyn Fn(&rgae_core::EpochRecord) -> Option<f64>| {
        let vals: Vec<f64> = tail.iter().filter_map(f).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let fd_r = mean(&|e| e.lambda_fd_current);
    let fd_vanilla = mean(&|e| e.lambda_fd_vanilla);
    assert!(
        fd_r > fd_vanilla - 0.05,
        "late-training Λ_FD: rewritten {fd_r} vs vanilla {fd_vanilla}"
    );
}

/// Figure 5 shape: restricting the clustering loss to Ω raises Λ_FR early
/// in training (the decidable nodes' pseudo-labels agree with truth more).
#[test]
fn claim_xi_restriction_raises_lambda_fr_early() {
    let (graph, data, mut model, mut cfg) = setup(ModelKind::GmmVgae, 71);
    cfg.track_diagnostics = true;
    cfg.min_epochs = cfg.max_epochs;
    let mut rng = Rng64::seed_from_u64(6);
    let report = RTrainer::new(cfg)
        .train_clustering_phase(model.as_mut(), &graph, &data, &mut rng)
        .unwrap();
    let head = &report.epochs[..report.epochs.len() / 2];
    let mut restricted = Vec::new();
    let mut full = Vec::new();
    for e in head {
        if let (Some(r), Some(f)) = (e.lambda_fr_restricted, e.lambda_fr_full) {
            if e.omega_size < graph.num_nodes() {
                restricted.push(r);
                full.push(f);
            }
        }
    }
    if restricted.len() >= 3 {
        let mr = restricted.iter().sum::<f64>() / restricted.len() as f64;
        let mf = full.iter().sum::<f64>() / full.len() as f64;
        assert!(mr + 0.02 >= mf, "early Λ_FR restricted {mr} vs full {mf}");
    }
}

/// Timing shape (Table 5): the R overhead is bounded — the clustering phase
/// of R-𝒟 costs at most ~2.5× the plain phase at this scale (the paper
/// reports ~1.1–1.5× at full scale where the N² loss dominates).
#[test]
fn claim_r_overhead_is_bounded() {
    let (graph, data, base, cfg) = setup(ModelKind::Dgae, 81);
    let mut plain = base.clone_box();
    let mut cfg_p = cfg.clone();
    cfg_p.pretrain_epochs = 0;
    let mut rng_p = Rng64::seed_from_u64(7);
    let p = train_plain(plain.as_mut(), &graph, &cfg_p, &mut rng_p).unwrap();
    let mut r_model = base;
    let mut rng_r = Rng64::seed_from_u64(7);
    let r = RTrainer::new(cfg)
        .train_clustering_phase(r_model.as_mut(), &graph, &data, &mut rng_r)
        .unwrap();
    // Normalise per epoch (the R run may stop early on convergence).
    let per_epoch_p = p.train_seconds / p.epochs.len().max(1) as f64;
    let per_epoch_r = r.train_seconds / r.epochs.len().max(1) as f64;
    assert!(
        per_epoch_r < per_epoch_p * 3.0,
        "per-epoch: plain {per_epoch_p:.4}s vs R {per_epoch_r:.4}s"
    );
}

//! Cross-crate integration: dataset generation → training data → models →
//! R-trainer → metrics → figure tooling, exercised end to end.

use rgae_core::{evaluate, upsilon, xi, RConfig, RTrainer, UpsilonConfig, XiConfig};
use rgae_graph::{edge_homophily, GraphStats};
use rgae_linalg::Rng64;
use rgae_models::baselines::{agc_lite, mgae_lite};
use rgae_models::TrainData;
use rgae_viz::{pca_2d, tsne, TsneConfig};
use rgae_xp::{rconfig_for, run_pair, DatasetKind, ModelKind};

#[test]
fn full_pipeline_on_every_dataset_preset() {
    // Every preset builds, produces consistent TrainData, and supports a
    // couple of pretraining steps of the cheapest model.
    for dataset in DatasetKind::citation()
        .into_iter()
        .chain(DatasetKind::air())
    {
        let graph = dataset.build(0.12, 3);
        let data = TrainData::from_graph(&graph);
        assert_eq!(data.num_nodes, graph.num_nodes());
        assert!(data.pos_weight >= 1.0, "{}: sparse graphs", dataset.name());
        let mut rng = Rng64::seed_from_u64(1);
        let mut model = ModelKind::Gae.build(data.num_features(), graph.num_classes(), &mut rng);
        let spec = rgae_models::StepSpec::pretrain(std::rc::Rc::clone(&data.adjacency));
        for _ in 0..3 {
            let loss = model.train_step(&data, &spec, &mut rng).unwrap();
            assert!(loss.is_finite(), "{}", dataset.name());
        }
        let m = evaluate(model.as_ref(), &data, graph.labels(), &mut rng).unwrap();
        assert!(m.acc > 0.0 && m.acc <= 1.0);
    }
}

#[test]
fn operators_compose_on_real_embeddings() {
    let graph = DatasetKind::CoraLike.build(0.15, 5);
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(2);
    let mut model = ModelKind::Dgae.build(data.num_features(), graph.num_classes(), &mut rng);
    let trainer = RTrainer::new(RConfig::for_dataset("cora-like").quick());
    trainer.pretrain(model.as_mut(), &data, &mut rng).unwrap();

    let p = model.soft_assignments(&data).unwrap().unwrap();
    let omega = xi(&p, &XiConfig::new(0.3)).unwrap();
    assert!(
        !omega.is_empty(),
        "pretrained model should have confident nodes"
    );

    let z = model.embed(&data);
    let out = upsilon(
        &data.adjacency,
        &p,
        &z,
        &omega.indices,
        &UpsilonConfig::default(),
    )
    .unwrap();
    let before = GraphStats::compute(&data.adjacency, graph.labels());
    let after = GraphStats::compute(&out.graph, graph.labels());
    // The rewrite must keep the graph usable and not destroy homophily.
    assert!(after.num_edges > 0);
    let h_before = before.true_links as f64 / before.num_edges.max(1) as f64;
    let h_after = after.true_links as f64 / after.num_edges.max(1) as f64;
    assert!(h_after >= h_before - 0.05, "{h_before} -> {h_after}");
}

#[test]
fn run_pair_protocol_is_consistent() {
    let dataset = DatasetKind::BrazilAir;
    let graph = dataset.build(1.0, 4);
    let cfg = rconfig_for(ModelKind::GmmVgae, dataset, true);
    let out = run_pair(
        ModelKind::GmmVgae,
        dataset,
        &graph,
        &cfg,
        9,
        &rgae_obs::NOOP,
        &rgae_xp::HarnessOpts::default(),
    );
    // Shared pretraining: both phases start from the same place.
    assert!(
        (out.plain.pretrain_metrics.acc - out.r.pretrain_metrics.acc).abs() < 0.1,
        "pretrain {} vs {}",
        out.plain.pretrain_metrics.acc,
        out.r.pretrain_metrics.acc
    );
    assert!(out.plain.final_metrics.acc > 0.25);
    assert!(out.r.final_metrics.acc > 0.25);
}

#[test]
fn baselines_run_on_presets() {
    let graph = DatasetKind::CiteseerLike.build(0.12, 6);
    let mut rng = Rng64::seed_from_u64(3);
    let (pred, _) = mgae_lite(&graph, 2, 0.2, 1e-2, &mut rng).unwrap();
    assert_eq!(pred.len(), graph.num_nodes());
    let pred2 = agc_lite(&graph, 3, &mut rng).unwrap();
    assert_eq!(pred2.len(), graph.num_nodes());
}

#[test]
fn figure_tooling_consumes_model_embeddings() {
    let graph = DatasetKind::CoraLike.build(0.08, 7);
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(4);
    let mut model = ModelKind::Vgae.build(data.num_features(), graph.num_classes(), &mut rng);
    let spec = rgae_models::StepSpec::pretrain(std::rc::Rc::clone(&data.adjacency));
    for _ in 0..10 {
        model.train_step(&data, &spec, &mut rng).unwrap();
    }
    let z = model.embed(&data);
    let y = tsne(
        &z,
        &TsneConfig {
            iterations: 30,
            ..TsneConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    assert_eq!(y.shape(), (graph.num_nodes(), 2));
    assert!(y.all_finite());
    let y2 = pca_2d(&z, &mut rng).unwrap();
    assert_eq!(y2.shape(), (graph.num_nodes(), 2));
}

#[test]
fn homophily_survives_training_data_roundtrip() {
    // Sanity: the GCN filter preserves the graph's structure enough that
    // filter-propagated features are label-informative.
    let graph = DatasetKind::CoraLike.build(0.15, 8);
    let h = edge_homophily(graph.adjacency(), graph.labels());
    assert!(h > 0.7, "homophily {h}");
    let data = TrainData::from_graph(&graph);
    let smoothed = data.filter.spmm(&data.features).unwrap();
    // Mean cosine similarity of smoothed features: intra > inter.
    let mut rng = Rng64::seed_from_u64(5);
    let (mut intra, mut ni) = (0.0, 0);
    let (mut inter, mut nj) = (0.0, 0);
    for _ in 0..3000 {
        let a = rng.index(graph.num_nodes());
        let b = rng.index(graph.num_nodes());
        if a == b {
            continue;
        }
        let c = rgae_linalg::cosine(smoothed.row(a), smoothed.row(b));
        if graph.labels()[a] == graph.labels()[b] {
            intra += c;
            ni += 1;
        } else {
            inter += c;
            nj += 1;
        }
    }
    assert!(intra / ni as f64 > inter / nj as f64 + 0.03);
}

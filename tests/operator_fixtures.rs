//! Golden-fixture tests for the paper's two operators: Ξ (sampling) and
//! Υ (graph transformation).
//!
//! The fixture under `tests/fixtures/` holds a small hand-checked scene —
//! soft assignments, embeddings, and an edge list — together with the exact
//! expected outputs: the decidable set Ω, the λ¹/λ² confidence scores, the
//! centroid-node list Π, and the edited edge list. Everything integral is
//! compared exactly; the λ scores are copies of input entries, so they are
//! compared bitwise too. Any behavioural drift in either operator (tie
//! breaking, scan order, edit bookkeeping) trips these tests.

use rgae_core::{upsilon, xi, UpsilonConfig, XiConfig};
use rgae_linalg::{Csr, Mat};
use rgae_obs::Json;

fn fixture() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/xi_upsilon_golden.json"
    );
    let text = std::fs::read_to_string(path).expect("fixture file readable");
    Json::parse(&text).expect("fixture is valid JSON")
}

fn mat_field(j: &Json, key: &str) -> Mat {
    let rows: Vec<Vec<f64>> = j
        .get(key)
        .and_then(Json::as_arr)
        .expect("matrix field")
        .iter()
        .map(|row| {
            row.as_arr()
                .expect("matrix row")
                .iter()
                .map(|v| v.as_f64().expect("matrix entry"))
                .collect()
        })
        .collect();
    Mat::from_rows(&rows).expect("rectangular matrix")
}

fn usize_list(j: &Json) -> Vec<usize> {
    j.as_arr()
        .expect("index list")
        .iter()
        .map(|v| v.as_usize().expect("index"))
        .collect()
}

fn f64_list(j: &Json) -> Vec<f64> {
    j.as_arr()
        .expect("float list")
        .iter()
        .map(|v| v.as_f64().expect("float"))
        .collect()
}

fn edge_list(j: &Json) -> Vec<(usize, usize)> {
    j.as_arr()
        .expect("edge list")
        .iter()
        .map(|e| {
            let pair = usize_list(e);
            assert_eq!(pair.len(), 2, "edge has two endpoints");
            (pair[0], pair[1])
        })
        .collect()
}

/// Undirected upper-triangle edge list of a symmetric CSR, ascending.
fn graph_edges(g: &Csr) -> Vec<(usize, usize)> {
    g.iter()
        .filter(|&(i, j, _)| i < j)
        .map(|(i, j, _)| (i, j))
        .collect()
}

fn inputs(fx: &Json) -> (Csr, Mat, Mat) {
    let n = fx.get("n").and_then(Json::as_usize).expect("n");
    let a = Csr::adjacency_from_edges(n, &edge_list(fx.get("edges").expect("edges")))
        .expect("valid edges");
    (a, mat_field(fx, "p_soft"), mat_field(fx, "z"))
}

#[test]
fn xi_matches_golden_fixture_exactly() {
    let fx = fixture();
    let (_, p_soft, _) = inputs(&fx);
    let alpha1 = fx.get("alpha1").and_then(Json::as_f64).expect("alpha1");
    let alpha2 = fx.get("alpha2").and_then(Json::as_f64).expect("alpha2");
    let cfg = XiConfig::new(alpha1);
    assert_eq!(
        cfg.alpha2.to_bits(),
        alpha2.to_bits(),
        "paper parameterisation α₂ = α₁/2"
    );

    let omega = xi(&p_soft, &cfg).expect("xi applies");
    let want = fx.get("expected_xi").expect("expected_xi");
    assert_eq!(omega.indices, usize_list(want.get("omega").expect("omega")));

    // λ scores are copies of input entries → exact bit equality is fair.
    let want_l1 = f64_list(want.get("lambda1").expect("lambda1"));
    let want_l2 = f64_list(want.get("lambda2").expect("lambda2"));
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&omega.lambda1), bits(&want_l1), "lambda1");
    assert_eq!(bits(&omega.lambda2), bits(&want_l2), "lambda2");
}

#[test]
fn upsilon_matches_golden_fixture_exactly() {
    let fx = fixture();
    let (a, p_soft, z) = inputs(&fx);
    let alpha1 = fx.get("alpha1").and_then(Json::as_f64).expect("alpha1");
    let omega = xi(&p_soft, &XiConfig::new(alpha1)).expect("xi applies");

    let out = upsilon(&a, &p_soft, &z, &omega.indices, &UpsilonConfig::default())
        .expect("upsilon applies");
    let want = fx.get("expected_upsilon").expect("expected_upsilon");

    let centroids: Vec<Option<usize>> = usize_list(want.get("centroids").expect("centroids"))
        .into_iter()
        .map(Some)
        .collect();
    assert_eq!(out.centroids, centroids, "Π centroid nodes");
    assert_eq!(out.added, edge_list(want.get("added").expect("added")));
    assert_eq!(
        out.dropped,
        edge_list(want.get("dropped").expect("dropped"))
    );
    assert_eq!(
        graph_edges(&out.graph),
        edge_list(want.get("graph_edges").expect("graph_edges")),
        "edited edge list"
    );
}

#[test]
fn upsilon_add_only_ablation_matches_golden_fixture() {
    let fx = fixture();
    let (a, p_soft, z) = inputs(&fx);
    let alpha1 = fx.get("alpha1").and_then(Json::as_f64).expect("alpha1");
    let omega = xi(&p_soft, &XiConfig::new(alpha1)).expect("xi applies");

    let cfg = UpsilonConfig {
        add_edges: true,
        drop_edges: false,
    };
    let out = upsilon(&a, &p_soft, &z, &omega.indices, &cfg).expect("upsilon applies");
    let want = fx
        .get("expected_upsilon_add_only")
        .expect("expected_upsilon_add_only");
    assert_eq!(out.added, edge_list(want.get("added").expect("added")));
    assert!(out.dropped.is_empty());
    assert_eq!(
        graph_edges(&out.graph),
        edge_list(want.get("graph_edges").expect("graph_edges")),
        "edited edge list (add-only)"
    );
}

/// The operator outputs are thread-count invariant: Ξ and Υ are serial, but
/// they consume embeddings and assignments produced by parallel kernels, so
/// lock the whole fixture path at several thread counts too.
#[test]
fn fixture_outputs_are_thread_count_invariant() {
    let fx = fixture();
    let (a, p_soft, z) = inputs(&fx);
    let alpha1 = fx.get("alpha1").and_then(Json::as_f64).expect("alpha1");
    for t in [1usize, 2, 3, 8] {
        rgae_par::with_threads(t, || {
            let omega = xi(&p_soft, &XiConfig::new(alpha1)).expect("xi applies");
            let out = upsilon(&a, &p_soft, &z, &omega.indices, &UpsilonConfig::default())
                .expect("upsilon applies");
            let want = fx.get("expected_upsilon").expect("expected_upsilon");
            assert_eq!(
                graph_edges(&out.graph),
                edge_list(want.get("graph_edges").expect("graph_edges")),
                "threads={t}"
            );
        });
    }
}

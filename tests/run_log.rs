//! End-to-end run-log test: a quick R-run recorded through a [`MemorySink`]
//! must produce a well-formed event stream — one manifest, monotonically
//! increasing epoch records, a convergence event exactly when the report
//! says the run converged, and a timing table consistent with the reported
//! wall-clock time.

use rgae_core::{RConfig, RTrainer};
use rgae_datasets::{citation_like, CitationSpec};
use rgae_graph::AttributedGraph;
use rgae_linalg::Rng64;
use rgae_models::{Dgae, TrainData};
use rgae_obs::{Event, MemorySink};
use rgae_xp::emit_run_start;

fn test_graph(seed: u64) -> AttributedGraph {
    citation_like(
        &CitationSpec {
            name: "cora-like".into(),
            num_nodes: 160,
            num_classes: 3,
            num_features: 80,
            avg_degree: 5.0,
            homophily: 0.82,
            degree_power: 2.6,
            words_per_node: 12,
            topic_purity: 0.8,
            class_proportions: vec![],
        },
        seed,
    )
    .unwrap()
}

#[test]
fn quick_r_run_emits_a_coherent_event_stream() {
    let g = test_graph(1);
    let data = TrainData::from_graph(&g);
    let mut rng = Rng64::seed_from_u64(1);
    let mut cfg = RConfig::for_dataset("cora-like").quick();
    cfg.pretrain_epochs = 40;
    cfg.max_epochs = 40;

    let sink = MemorySink::new();
    emit_run_start(&sink, "run_log_test", "DGAE", "cora-like", "r", 1, &cfg);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let report = RTrainer::with_recorder(cfg, &sink)
        .train(&mut model, &g, &mut rng)
        .unwrap();

    // Exactly one manifest, carrying the full config.
    let starts = sink.of_kind("run_start");
    assert_eq!(starts.len(), 1);
    let Event::RunStart(manifest) = &starts[0] else {
        unreachable!()
    };
    assert_eq!(manifest.variant, "r");
    assert!(
        manifest.config.get("gamma").is_some(),
        "config not embedded"
    );

    // One epoch event per recorded epoch, indices strictly increasing.
    let epochs = sink.of_kind("epoch");
    assert_eq!(epochs.len(), report.epochs.len());
    let indices: Vec<usize> = epochs
        .iter()
        .map(|e| match e {
            Event::Epoch(ev) => ev.epoch,
            _ => unreachable!(),
        })
        .collect();
    assert!(
        indices.windows(2).all(|w| w[0] < w[1]),
        "epoch indices not strictly increasing: {indices:?}"
    );

    // Convergence event exactly when the report converged, same epoch.
    let convergences = sink.of_kind("convergence");
    match report.converged_at {
        Some(at) => {
            assert_eq!(convergences.len(), 1);
            assert_eq!(convergences[0], Event::Convergence { epoch: at });
        }
        None => assert!(convergences.is_empty()),
    }

    // One closing summary whose numbers match the report.
    let ends = sink.of_kind("run_end");
    assert_eq!(ends.len(), 1);
    let Event::RunEnd(summary) = &ends[0] else {
        unreachable!()
    };
    assert_eq!(summary.converged_at, report.converged_at);
    assert_eq!(summary.epochs_run, report.epochs.len());
    assert!((summary.train_seconds - report.train_seconds).abs() < 1e-9);
    assert!((summary.final_acc - report.final_metrics.acc).abs() < 1e-12);

    // The timing table precedes the run end and its clustering total is the
    // reported training time; the phase sub-spans account for most of it.
    let summaries = sink.of_kind("timing_summary");
    assert_eq!(summaries.len(), 1);
    let Event::TimingSummary(entries) = &summaries[0] else {
        unreachable!()
    };
    let clustering = entries
        .iter()
        .find(|e| e.path == "clustering")
        .expect("clustering span missing from timing table");
    assert!((clustering.total_seconds - report.train_seconds).abs() < 1e-9);
    // Direct children only — deeper descendants are already inside them.
    let sub_total: f64 = entries
        .iter()
        .filter(|e| {
            e.path.starts_with("clustering/") && !e.path["clustering/".len()..].contains('/')
        })
        .map(|e| e.total_seconds)
        .sum();
    assert!(
        sub_total <= clustering.total_seconds * 1.001,
        "sub-spans exceed the phase: {sub_total} vs {}",
        clustering.total_seconds
    );
    assert!(
        sub_total >= clustering.total_seconds * 0.9,
        "sub-spans cover too little of the phase: {sub_total} vs {}",
        clustering.total_seconds
    );
}

#[test]
fn plain_run_emits_epochs_and_summary() {
    let g = test_graph(2);
    let mut rng = Rng64::seed_from_u64(2);
    let data = TrainData::from_graph(&g);
    let mut cfg = RConfig::for_dataset("cora-like").quick();
    cfg.pretrain_epochs = 20;
    cfg.max_epochs = 15;

    let sink = MemorySink::new();
    emit_run_start(&sink, "run_log_test", "DGAE", "cora-like", "plain", 2, &cfg);
    let mut model = Dgae::new(data.num_features(), g.num_classes(), &mut rng);
    let report = rgae_core::train_plain_traced(&mut model, &g, &cfg, &mut rng, &sink).unwrap();

    assert_eq!(sink.of_kind("run_start").len(), 1);
    assert_eq!(sink.of_kind("epoch").len(), report.epochs.len());
    let ends = sink.of_kind("run_end");
    assert_eq!(ends.len(), 1);
    let Event::RunEnd(summary) = &ends[0] else {
        unreachable!()
    };
    assert_eq!(summary.converged_at, None);
    assert_eq!(summary.epochs_run, report.epochs.len());
}

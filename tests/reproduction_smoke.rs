//! Smoke coverage of the experiment-harness pathways: every table/figure
//! binary's core routine must run end to end at tiny scale. (The binaries
//! themselves are exercised by `cargo run`; these tests cover the library
//! plumbing they share.)

use rgae_core::{train_plain, Metrics, RTrainer};
use rgae_linalg::Rng64;
use rgae_models::baselines::{daegc_lite_data, spectral_lite};
use rgae_models::{Dgae, GaeModel, StepSpec, TrainData};
use rgae_viz::{ascii_lines, ascii_scatter, CsvWriter};
use rgae_xp::{
    best_metrics, metric_stats, pct, pct_pm, rconfig_for, run_pair, stats, DatasetKind,
    HarnessOpts, ModelKind,
};

#[test]
fn harness_defaults_are_sane() {
    let opts = HarnessOpts::default();
    assert!(opts.scale > 0.0 && opts.scale <= 1.0);
    assert!(opts.trials >= 1);
}

#[test]
fn tables_1_to_4_pathway() {
    // One model × one dataset of each family, 2 trials.
    for (model, dataset) in [
        (ModelKind::Dgae, DatasetKind::CoraLike),
        (ModelKind::GmmVgae, DatasetKind::BrazilAir),
    ] {
        let graph = dataset.build(0.12, 1);
        let cfg = rconfig_for(model, dataset, true);
        let mut plain_ms: Vec<Metrics> = Vec::new();
        let mut r_ms: Vec<Metrics> = Vec::new();
        for trial in 0..2 {
            let out = run_pair(
                model,
                dataset,
                &graph,
                &cfg,
                100 + trial,
                &rgae_obs::NOOP,
                &rgae_xp::HarnessOpts::default(),
            );
            plain_ms.push(out.plain.final_metrics);
            r_ms.push(out.r.final_metrics);
        }
        let b = best_metrics(&r_ms);
        assert!(b.acc > 0.2, "{} on {}", model.name(), dataset.name());
        let (a, n, r) = metric_stats(&plain_ms);
        assert!(a.mean > 0.0 && n.mean >= 0.0 && r.mean > -1.0);
        // Formatting used by the table printers.
        assert!(!pct(b.acc).is_empty());
        assert!(pct_pm(a).contains('±'));
    }
}

#[test]
fn table5_pathway_times_are_positive() {
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(0.1, 2);
    let cfg = rconfig_for(ModelKind::Dgae, dataset, true);
    let out = run_pair(
        ModelKind::Dgae,
        dataset,
        &graph,
        &cfg,
        5,
        &rgae_obs::NOOP,
        &rgae_xp::HarnessOpts::default(),
    );
    assert!(out.plain.train_seconds > 0.0);
    assert!(out.r.train_seconds > 0.0);
    let s = stats(&[out.plain.train_seconds, out.r.train_seconds]);
    assert!(s.mean > 0.0);
}

#[test]
fn table17_pathway_daegc_lite() {
    let graph = DatasetKind::CoraLike.build(0.1, 3);
    let data = daegc_lite_data(&graph);
    let mut rng = Rng64::seed_from_u64(1);
    let mut model = Dgae::new(data.num_features(), graph.num_classes(), &mut rng);
    let spec = StepSpec::pretrain(std::rc::Rc::clone(&data.adjacency));
    for _ in 0..20 {
        model.train_step(&data, &spec, &mut rng).unwrap();
    }
    model.init_clustering(&data, &mut rng).unwrap();
    let p = model.soft_assignments(&data).unwrap().unwrap();
    assert_eq!(p.rows(), graph.num_nodes());
    let pred = spectral_lite(&graph, 8, &mut rng).unwrap();
    assert_eq!(pred.len(), graph.num_nodes());
}

#[test]
fn fig4_and_fig10_snapshot_pathway() {
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(0.08, 4);
    let data = TrainData::from_graph(&graph);
    let mut cfg = rconfig_for(ModelKind::GmmVgae, dataset, true);
    cfg.snapshot_epochs = vec![0, 5, 10];
    cfg.max_epochs = 12;
    cfg.min_epochs = 12;
    let mut rng = Rng64::seed_from_u64(5);
    let mut model = ModelKind::GmmVgae.build(data.num_features(), graph.num_classes(), &mut rng);
    let report = RTrainer::new(cfg.clone())
        .train(model.as_mut(), &graph, &mut rng)
        .unwrap();
    assert_eq!(report.snapshots.len(), 3);
    for (epoch, z, a) in &report.snapshots {
        assert!(cfg.snapshot_epochs.contains(epoch));
        assert_eq!(z.rows(), graph.num_nodes());
        assert_eq!(a.rows(), graph.num_nodes());
    }
    // Plain side too.
    let mut model2 = ModelKind::GmmVgae.build(data.num_features(), graph.num_classes(), &mut rng);
    let plain = train_plain(model2.as_mut(), &graph, &cfg, &mut rng).unwrap();
    assert_eq!(plain.snapshots.len(), 3);
}

#[test]
fn fig5_6_diagnostic_series_pathway() {
    let dataset = DatasetKind::CoraLike;
    let graph = dataset.build(0.08, 6);
    let data = TrainData::from_graph(&graph);
    let mut cfg = rconfig_for(ModelKind::Dgae, dataset, true);
    cfg.track_diagnostics = true;
    cfg.max_epochs = 8;
    cfg.min_epochs = 8;
    let mut rng = Rng64::seed_from_u64(6);
    let mut model = ModelKind::Dgae.build(data.num_features(), graph.num_classes(), &mut rng);
    let report = RTrainer::new(cfg)
        .train(model.as_mut(), &graph, &mut rng)
        .unwrap();
    assert_eq!(report.epochs.len(), 8);
    assert!(report
        .epochs
        .iter()
        .all(|e| e.lambda_fd_current.is_some() && e.lambda_fd_vanilla.is_some()));
}

#[test]
fn csv_and_ascii_outputs_compose() {
    let dir = std::env::temp_dir().join("rgae_smoke_csv");
    let mut w = CsvWriter::create(dir.join("x.csv"), &["a", "b"]).unwrap();
    w.row(&[1.0, 2.0]).unwrap();
    w.finish().unwrap();
    assert!(dir.join("x.csv").exists());
    std::fs::remove_dir_all(&dir).ok();

    let chart = ascii_lines(&[("acc", &[0.1, 0.5, 0.9])], 40, 8);
    assert!(chart.contains("acc"));
    let scatter = ascii_scatter(&[(0.0, 0.0), (1.0, 1.0)], &[0, 1], 20, 8);
    assert!(scatter.contains('0') && scatter.contains('1'));
}

#[test]
fn clone_box_preserves_trained_state() {
    let graph = DatasetKind::CoraLike.build(0.08, 7);
    let data = TrainData::from_graph(&graph);
    let mut rng = Rng64::seed_from_u64(7);
    let mut model: Box<dyn GaeModel> =
        ModelKind::Dgae.build(data.num_features(), graph.num_classes(), &mut rng);
    let spec = StepSpec::pretrain(std::rc::Rc::clone(&data.adjacency));
    for _ in 0..10 {
        model.train_step(&data, &spec, &mut rng).unwrap();
    }
    let twin = model.clone_box();
    assert!(model.embed(&data).max_abs_diff(&twin.embed(&data)) < 1e-12);
}
